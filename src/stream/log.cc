#include "stream/log.h"
#include <set>

#include <algorithm>

namespace arbd::stream {

namespace {

std::size_t RecordBytes(const Record& r) { return r.key.size() + r.payload.size(); }

// Modeled cost of one broker append on the causal-trace time axis.
constexpr Duration kProduceCost = Duration::Micros(2);

}  // namespace

void Partition::UpdateMirrors() {
  start_mirror_.store(start_offset_, std::memory_order_release);
  end_mirror_.store(start_offset_ + static_cast<Offset>(records_.size()),
                    std::memory_order_release);
  bytes_mirror_.store(bytes_, std::memory_order_release);
  max_event_ns_mirror_.store(max_event_time_.nanos(), std::memory_order_release);
}

Offset Partition::Append(Record record, TimePoint ingest_time) {
  std::lock_guard<std::mutex> lk(mu_);
  record.ingest_time = ingest_time;
  max_event_time_ = std::max(max_event_time_, record.event_time);
  bytes_ += RecordBytes(record);
  records_.push_back(std::move(record));
  UpdateMirrors();
  return start_offset_ + static_cast<Offset>(records_.size()) - 1;
}

Expected<std::vector<StoredRecord>> Partition::Fetch(Offset from,
                                                     std::size_t max_records) const {
  std::lock_guard<std::mutex> lk(mu_);
  const Offset end = start_offset_ + static_cast<Offset>(records_.size());
  if (from < start_offset_) {
    // Carry the valid [log_start, end) window as structured payload so
    // consumers can reposition without parsing the message text.
    return Status::OutOfRange("offset " + std::to_string(from) +
                              " below log start " + std::to_string(start_offset_))
        .WithRange(start_offset_, end);
  }
  if (from > end) {
    return Status::OutOfRange("offset " + std::to_string(from) + " beyond log end " +
                              std::to_string(end))
        .WithRange(start_offset_, end);
  }
  std::vector<StoredRecord> out;
  const auto begin = static_cast<std::size_t>(from - start_offset_);
  const std::size_t n = std::min(max_records, records_.size() - begin);
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    StoredRecord sr;
    sr.offset = from + static_cast<Offset>(i);
    sr.record = records_[begin + i];
    out.push_back(std::move(sr));
  }
  return out;
}

std::size_t Partition::EnforceRetention(const TopicConfig& cfg, TimePoint now) {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t dropped = 0;
  if (cfg.retention_records > 0) {
    while (records_.size() > cfg.retention_records) {
      bytes_ -= RecordBytes(records_.front());
      records_.pop_front();
      ++start_offset_;
      ++dropped;
    }
  }
  if (cfg.retention_time > Duration::Zero()) {
    const TimePoint cutoff = now - cfg.retention_time;
    while (!records_.empty() && records_.front().ingest_time < cutoff) {
      bytes_ -= RecordBytes(records_.front());
      records_.pop_front();
      ++start_offset_;
      ++dropped;
    }
  }
  if (dropped > 0) UpdateMirrors();
  return dropped;
}

std::size_t Partition::TruncateBefore(Offset offset) {
  std::lock_guard<std::mutex> lk(mu_);
  offset = std::min(offset, start_offset_ + static_cast<Offset>(records_.size()));
  std::size_t dropped = 0;
  while (start_offset_ < offset) {
    bytes_ -= RecordBytes(records_.front());
    records_.pop_front();
    ++start_offset_;
    ++dropped;
  }
  if (dropped > 0) UpdateMirrors();
  return dropped;
}

std::size_t Partition::CompactKeepLatest() {
  std::lock_guard<std::mutex> lk(mu_);
  // Walk from the tail keeping the first (i.e. newest) record per key;
  // tombstones mark their key as dead without being retained themselves.
  std::set<std::string> seen;
  std::deque<Record> kept;
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (seen.contains(it->key)) continue;
    seen.insert(it->key);
    if (it->payload.empty()) continue;  // tombstone: key deleted
    kept.push_front(std::move(*it));
  }
  const std::size_t removed = records_.size() - kept.size();
  records_ = std::move(kept);
  bytes_ = 0;
  for (const auto& r : records_) bytes_ += RecordBytes(r);
  UpdateMirrors();
  return removed;
}

Topic::Topic(std::string name, TopicConfig cfg)
    : name_(std::move(name)), cfg_(cfg) {
  if (cfg_.partitions == 0) cfg_.partitions = 1;
  if (cfg_.replication_factor == 0) cfg_.replication_factor = ReplicationFactorFromEnv();
  parts_.reserve(cfg_.partitions);
  repl_.reserve(cfg_.partitions);
  for (std::uint32_t i = 0; i < cfg_.partitions; ++i) {
    parts_.push_back(std::make_unique<Partition>());
    // Mix the partition id into the failover seed so sibling partitions
    // elect independently under the same crash schedule.
    repl_.push_back(std::make_unique<ReplicatedPartition>(
        cfg_.replication_factor, cfg_.replication_seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)),
        *parts_.back()));
  }
}

PartitionId Topic::PartitionFor(const std::string& key) {
  if (key.empty()) {
    return static_cast<PartitionId>(
        round_robin_.fetch_add(1, std::memory_order_relaxed) % parts_.size());
  }
  return static_cast<PartitionId>(Fnv1a(key) % parts_.size());
}

std::size_t Topic::TotalRecords() const {
  std::size_t n = 0;
  for (const auto& p : parts_) n += p->size();
  return n;
}

std::size_t Topic::TotalBytes() const {
  std::size_t n = 0;
  for (const auto& p : parts_) n += p->bytes();
  return n;
}

double Topic::Pressure() const {
  double pressure = 0.0;
  if (cfg_.max_records > 0) {
    pressure = static_cast<double>(TotalRecords()) / static_cast<double>(cfg_.max_records);
  }
  if (cfg_.max_bytes > 0) {
    pressure = std::max(pressure, static_cast<double>(TotalBytes()) /
                                      static_cast<double>(cfg_.max_bytes));
  }
  return pressure;
}

std::size_t Topic::EnforceRetention(TimePoint now) {
  std::size_t dropped = 0;
  for (auto& p : parts_) dropped += p->EnforceRetention(cfg_, now);
  return dropped;
}

Status Broker::CreateTopic(const std::string& name, TopicConfig cfg) {
  if (name.empty()) return Status::InvalidArgument("topic name must not be empty");
  std::unique_lock<std::shared_mutex> lk(topics_mu_);
  if (topics_.contains(name)) return Status::AlreadyExists("topic '" + name + "'");
  topics_[name] = std::make_unique<Topic>(name, cfg);
  return Status::Ok();
}

Status Broker::DeleteTopic(const std::string& name) {
  std::unique_lock<std::shared_mutex> lk(topics_mu_);
  if (topics_.erase(name) == 0) return Status::NotFound("topic '" + name + "'");
  return Status::Ok();
}

bool Broker::HasTopic(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lk(topics_mu_);
  return topics_.contains(name);
}

Expected<Topic*> Broker::GetTopic(const std::string& name) {
  std::shared_lock<std::shared_mutex> lk(topics_mu_);
  auto it = topics_.find(name);
  if (it == topics_.end()) return Status::NotFound("topic '" + name + "'");
  return it->second.get();
}

Expected<std::pair<PartitionId, Offset>> Broker::Produce(const std::string& topic,
                                                         Record record) {
  auto t = GetTopic(topic);
  if (!t.ok()) return t.status();
  const PartitionId p = (*t)->PartitionFor(record.key);
  auto off = ProduceImpl(topic, *t, p, std::move(record));
  if (!off.ok()) return off.status();
  return std::make_pair(p, *off);
}

Expected<Offset> Broker::ProduceToPartition(const std::string& topic,
                                            PartitionId partition, Record record) {
  auto t = GetTopic(topic);
  if (!t.ok()) return t.status();
  if (partition >= (*t)->partition_count()) {
    return Status::OutOfRange("partition " + std::to_string(partition) + " of topic '" +
                              topic + "'");
  }
  return ProduceImpl(topic, *t, partition, std::move(record));
}

Expected<Offset> Broker::ProduceIdempotent(const std::string& topic, PartitionId partition,
                                           ProducerId pid, std::uint64_t seq,
                                           Record record) {
  auto t = GetTopic(topic);
  if (!t.ok()) return t.status();
  if (partition >= (*t)->partition_count()) {
    return Status::OutOfRange("partition " + std::to_string(partition) + " of topic '" +
                              topic + "'");
  }
  return ProduceImpl(topic, *t, partition, std::move(record), pid, seq);
}

Expected<ReplicatedPartition*> Broker::Replication(const std::string& topic,
                                                   PartitionId partition) {
  auto t = GetTopic(topic);
  if (!t.ok()) return t.status();
  if (partition >= (*t)->partition_count()) {
    return Status::OutOfRange("partition " + std::to_string(partition) + " of topic '" +
                              topic + "'");
  }
  return &(*t)->replication(partition);
}

Status Broker::CrashLeader(const std::string& topic, PartitionId partition,
                           std::size_t restore_after_ops) {
  auto rp = Replication(topic, partition);
  if (!rp.ok()) return rp.status();
  return (*rp)->CrashLeader(restore_after_ops);
}

Expected<Offset> Broker::ProduceImpl(const std::string& topic, Topic* t,
                                     PartitionId p, Record record, ProducerId pid,
                                     std::uint64_t seq) {
  // Budget check first: backpressure is a flow-control decision, not a
  // fault, so it must not consume injector randomness.
  const TopicConfig& cfg = t->config();
  const bool over_records = cfg.max_records > 0 && t->TotalRecords() >= cfg.max_records;
  const bool over_bytes = cfg.max_bytes > 0 && t->TotalBytes() >= cfg.max_bytes;
  if (over_records || over_bytes) {
    backpressure_rejects_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_ != nullptr) metrics_->Add("qos.backpressure." + topic);
    return Status::ResourceExhausted("topic '" + topic + "' over " +
                                     (over_records ? "record" : "byte") + " budget");
  }
  bool torn = false;
  InjectedCrash crash;
  if (fault_ != nullptr) {
    // FaultInjector's RNG is single-threaded; serialize draws.
    std::lock_guard<std::mutex> flk(fault_mu_);
    if (fault_->Fire(fault::FaultKind::kAppendError, fault::InjectionPoint::kBrokerAppend)) {
      return Status::Unavailable("injected append error on topic '" + topic + "'");
    }
    torn = fault_->Fire(fault::FaultKind::kTornAppend, fault::InjectionPoint::kBrokerAppend);
    if (fault_->Fire(fault::FaultKind::kNodeCrash, fault::InjectionPoint::kReplicaAppend)) {
      crash.crash_leader = true;
      // The rule's `x=` is the restore window in produce attempts; 0 keeps
      // the replication layer's default.
      const fault::FaultRule* rule = fault_->plan().Find(fault::FaultKind::kNodeCrash);
      if (rule != nullptr && rule->magnitude > 0.0) {
        crash.restore_after_ops = static_cast<std::size_t>(rule->magnitude);
      }
    }
  }
  if (tracer_ != nullptr && tracer_->enabled() && record.trace_ctx.valid()) {
    // Stamp the child context before the append so fetchers see the
    // produce span as their causal parent. Salted with the record's key
    // and event time: many records of one trace may produce at the same
    // cursor.
    record.trace_ctx = tracer_->Record(
        "broker.produce", record.trace_ctx, kProduceCost,
        {{"topic", topic}, {"partition", std::to_string(p)}},
        Fnv1a(record.key) ^ static_cast<std::uint64_t>(record.event_time.nanos()));
  }
  auto off = t->replication(p).Produce(std::move(record), clock_.Now(), pid, seq, crash);
  if (!off.ok()) return off.status();
  total_produced_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_ != nullptr) {
    metrics_->Set("qos.depth." + topic + ".p" + std::to_string(p),
                  static_cast<double>(t->partition(p).size()));
    metrics_->Set("qos.bytes." + topic, static_cast<double>(t->TotalBytes()));
  }
  if (torn) {
    // The record landed but the ack is lost; the producer sees a failure.
    return Status::Unavailable("injected torn append on topic '" + topic + "'");
  }
  return *off;
}

Expected<std::vector<StoredRecord>> Broker::Fetch(const std::string& topic,
                                                  PartitionId partition, Offset from,
                                                  std::size_t max_records) {
  auto t = GetTopic(topic);
  if (!t.ok()) return t.status();
  if (partition >= (*t)->partition_count()) {
    return Status::OutOfRange("partition " + std::to_string(partition) + " of topic '" +
                              topic + "'");
  }
  if (fault_ != nullptr) {
    std::lock_guard<std::mutex> flk(fault_mu_);
    if (fault_->Fire(fault::FaultKind::kFetchError, fault::InjectionPoint::kBrokerFetch)) {
      return Status::Unavailable("injected fetch error on topic '" + topic + "'");
    }
  }
  auto fetched = (*t)->partition(partition).Fetch(from, max_records);
  if (metrics_ != nullptr && fetched.ok() && !fetched->empty()) {
    // Ingest-to-fetch lag of the newest record handed out: how far behind
    // the head this consumer is running, in wall-clock terms.
    const Duration lag = clock_.Now() - fetched->back().record.ingest_time;
    metrics_->Set("qos.lag_ms." + topic + ".p" + std::to_string(partition),
                  lag.seconds() * 1e3);
  }
  return fetched;
}

Expected<std::size_t> Broker::TruncateBefore(const std::string& topic,
                                             PartitionId partition, Offset offset) {
  auto t = GetTopic(topic);
  if (!t.ok()) return t.status();
  if (partition >= (*t)->partition_count()) {
    return Status::OutOfRange("partition " + std::to_string(partition) + " of topic '" +
                              topic + "'");
  }
  const std::size_t dropped = (*t)->partition(partition).TruncateBefore(offset);
  if (metrics_ != nullptr && dropped > 0) {
    metrics_->Set("qos.depth." + topic + ".p" + std::to_string(partition),
                  static_cast<double>((*t)->partition(partition).size()));
    metrics_->Set("qos.bytes." + topic, static_cast<double>((*t)->TotalBytes()));
  }
  return dropped;
}

std::size_t Broker::Credit(const std::string& topic) const {
  const Topic* t = nullptr;
  {
    std::shared_lock<std::shared_mutex> lk(topics_mu_);
    auto it = topics_.find(topic);
    if (it == topics_.end()) return 0;
    t = it->second.get();
  }
  const TopicConfig& cfg = t->config();
  std::size_t credit = static_cast<std::size_t>(-1);
  if (cfg.max_records > 0) {
    const std::size_t held = t->TotalRecords();
    credit = held >= cfg.max_records ? 0 : cfg.max_records - held;
  }
  if (cfg.max_bytes > 0) {
    const std::size_t held = t->TotalBytes();
    std::size_t byte_credit = 0;
    if (held < cfg.max_bytes) {
      // Convert byte headroom to records conservatively via the mean
      // retained record size (or count bytes 1:1 on an empty topic).
      const std::size_t n = t->TotalRecords();
      const std::size_t mean = n > 0 ? std::max<std::size_t>(1, held / n) : 1;
      byte_credit = (cfg.max_bytes - held) / mean;
    }
    credit = std::min(credit, byte_credit);
  }
  return credit;
}

double Broker::Pressure(const std::string& topic) const {
  std::shared_lock<std::shared_mutex> lk(topics_mu_);
  auto it = topics_.find(topic);
  if (it == topics_.end()) return 0.0;
  return it->second->Pressure();
}

std::size_t Broker::RunRetention() {
  std::shared_lock<std::shared_mutex> lk(topics_mu_);
  std::size_t dropped = 0;
  for (auto& [name, topic] : topics_) dropped += topic->EnforceRetention(clock_.Now());
  return dropped;
}

std::vector<std::string> Broker::TopicNames() const {
  std::shared_lock<std::shared_mutex> lk(topics_mu_);
  std::vector<std::string> names;
  names.reserve(topics_.size());
  for (const auto& [name, _] : topics_) names.push_back(name);
  return names;
}

Expected<std::pair<PartitionId, Offset>> Producer::Send(Record record) {
  auto r = broker_.Produce(topic_, std::move(record));
  if (r.ok()) ++sent_;
  return r;
}

Status Producer::SendBatch(std::vector<Record> records) {
  for (auto& r : records) {
    auto s = Send(std::move(r));
    if (!s.ok()) return s.status();
  }
  return Status::Ok();
}

}  // namespace arbd::stream
