#include "stream/table.h"

#include <set>

namespace arbd::stream {

void TableView::Apply(const Record& record) {
  if (record.payload.empty()) {
    rows_.erase(record.key);
    ++tombstones_;
  } else {
    rows_[record.key] = record.payload;
    ++updates_;
  }
}

std::optional<Bytes> TableView::Get(const std::string& key) const {
  auto it = rows_.find(key);
  if (it == rows_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> TableView::GetText(const std::string& key) const {
  auto bytes = Get(key);
  if (!bytes) return std::nullopt;
  return std::string(bytes->begin(), bytes->end());
}

std::size_t CompactTopic(Topic& topic) {
  std::size_t removed = 0;
  for (PartitionId p = 0; p < topic.partition_count(); ++p) {
    removed += topic.partition(p).CompactKeepLatest();
  }
  return removed;
}

Expected<TableView> MaterializeTable(Broker& broker, const std::string& topic_name) {
  auto topic = broker.GetTopic(topic_name);
  if (!topic.ok()) return topic.status();
  TableView view;
  for (PartitionId p = 0; p < (*topic)->partition_count(); ++p) {
    const Partition& part = (*topic)->partition(p);
    Offset at = part.log_start_offset();
    while (at < part.end_offset()) {
      auto batch = part.Fetch(at, 1024);
      if (!batch.ok()) return batch.status();
      if (batch->empty()) break;
      for (const auto& sr : *batch) {
        view.Apply(sr.record);
        at = sr.offset + 1;
      }
    }
  }
  return view;
}

}  // namespace arbd::stream
