// Columnar record batches — the Arrow-style unit of the broker hot path.
//
// A RecordBatch stores N records as contiguous columns instead of N
// row-structs: event/ingest timestamps and checksums in flat int arrays,
// keys and payloads as two flat byte buffers addressed by prefix-offset
// arrays (Arrow's variable-width layout). Rows are read through
// RecordView — string_view / pointer+length slices into the columns, no
// per-row allocation — and only materialized into Record structs at the
// legacy per-record boundaries.
//
// The batch is both the transfer unit (produce, replication, fetch,
// pipeline hand-off) and the Partition's backing store, so a batched
// fetch is a handful of contiguous column-range copies under the
// partition lock rather than N string/vector constructions, and views
// returned by a batch are zero-copy into those buffers.
//
// Gating: the batch hot path is enabled by ARBD_BATCH (BatchingEnabled
// below). With the flag off every caller keeps the per-record code path
// byte-for-byte; with it on, the differential harness
// (batch_determinism_test, bench_batch E23) proves all scenario digests
// are bit-identical to the per-record path — batching is a pure
// optimization, never a semantic change. See docs/batching.md for the
// wire layout and the zero-copy invariants.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/serialize.h"
#include "common/status.h"
#include "stream/record.h"
#include "trace/tracer.h"

namespace arbd::stream {

// ARBD_BATCH: route produce/fetch/pipeline work through the columnar
// batch path. Unset/"0" -> off (the per-record path, byte-identical to
// the pre-batch system). The value is cached on first read.
bool BatchingEnabled();
// Test/bench override (the differential harness flips modes in-process).
void SetBatchingEnabled(bool on);

// Zero-copy view of one row. Valid only while the owning RecordBatch is
// alive and un-mutated — treat it like an iterator.
struct RecordView {
  std::string_view key;
  const std::uint8_t* payload = nullptr;
  std::size_t payload_size = 0;
  TimePoint event_time;
  TimePoint ingest_time;
  std::uint64_t checksum = 0;
  Offset offset = 0;  // absolute partition offset (base_offset + row)
};

class RecordBatch {
 public:
  RecordBatch() { key_offsets_.push_back(0); payload_offsets_.push_back(0); }

  std::size_t size() const { return event_ns_.size(); }
  bool empty() const { return event_ns_.empty(); }
  // Retained key+payload bytes — the unit topic byte budgets meter,
  // matching the per-record accounting in the partition.
  std::size_t byte_size() const { return keys_.size() + payloads_.size(); }

  void Reserve(std::size_t rows, std::size_t key_bytes, std::size_t payload_bytes);
  void Clear();

  // --- row append ------------------------------------------------------
  void Append(const Record& r);
  void AppendRow(std::string_view key, const std::uint8_t* payload,
                 std::size_t payload_size, TimePoint event_time,
                 TimePoint ingest_time, std::uint64_t checksum,
                 const trace::SpanContext& ctx = {});
  // Bulk-append rows [from, from + n) of `src`: contiguous column-range
  // copies (the batched-fetch fast path).
  void AppendRange(const RecordBatch& src, std::size_t from, std::size_t n);

  // Overwrite the ingest timestamp of rows [first_row, size): the
  // partition stamps ingest time at append, exactly like the per-record
  // path does on each Record.
  void StampIngest(std::size_t first_row, TimePoint ingest);

  // --- row access ------------------------------------------------------
  RecordView row(std::size_t i) const;
  std::string_view key(std::size_t i) const {
    return std::string_view(keys_.data() + key_offsets_[i],
                            key_offsets_[i + 1] - key_offsets_[i]);
  }
  const std::uint8_t* payload_data(std::size_t i) const {
    return payloads_.data() + payload_offsets_[i];
  }
  std::size_t payload_size(std::size_t i) const {
    return payload_offsets_[i + 1] - payload_offsets_[i];
  }
  TimePoint event_time(std::size_t i) const { return TimePoint::FromNanos(event_ns_[i]); }
  TimePoint ingest_time(std::size_t i) const { return TimePoint::FromNanos(ingest_ns_[i]); }
  std::uint64_t checksum(std::size_t i) const { return checksums_[i]; }
  // Key + payload bytes of one row (per-row retention/budget accounting).
  std::size_t row_bytes(std::size_t i) const {
    return (key_offsets_[i + 1] - key_offsets_[i]) +
           (payload_offsets_[i + 1] - payload_offsets_[i]);
  }

  // Causal-trace headers ride in a side column, in-memory only — exactly
  // like Record::trace_ctx, they are never serialized, so batched bytes
  // and digests are identical with tracing on or off.
  const trace::SpanContext& trace_ctx(std::size_t i) const { return trace_[i]; }
  void set_trace_ctx(std::size_t i, const trace::SpanContext& ctx);
  // True if any row carries a valid trace context (the broker's bulk fast
  // path defers to the per-record path for traced rows).
  bool has_traced_rows() const { return has_traced_rows_; }

  // Raw column accessors for batch-aware operators (analytics/columnar.h
  // kernels aggregate straight over these).
  const std::int64_t* event_ns_data() const { return event_ns_.data(); }
  const std::int64_t* ingest_ns_data() const { return ingest_ns_.data(); }
  const std::uint64_t* checksums_data() const { return checksums_.data(); }

  // --- materialization (legacy per-record boundaries) -------------------
  Record MaterializeRecord(std::size_t i) const;
  StoredRecord MaterializeStored(std::size_t i) const;

  // Position metadata stamped by the fetch path: the absolute offset of
  // row 0 and the partition the batch was read from.
  Offset base_offset() const { return base_offset_; }
  void set_base_offset(Offset o) { base_offset_ = o; }
  PartitionId partition() const { return partition_; }
  void set_partition(PartitionId p) { partition_ = p; }

  // --- wire format ------------------------------------------------------
  // Columnar serialization (docs/batching.md): magic + version + row
  // count, fixed-width columns, offset arrays, flat key/payload buffers,
  // and one batch-level FNV-1a checksum over everything after the header
  // — integrity is verified once per batch instead of once per record.
  // Trace contexts are not serialized.
  Bytes Serialize() const;
  static Expected<RecordBatch> Deserialize(const Bytes& buf);

 private:
  // Columns; all row-indexed vectors hold exactly size() entries, the
  // offset arrays size() + 1 (prefix offsets, Arrow layout).
  std::vector<std::int64_t> event_ns_;
  std::vector<std::int64_t> ingest_ns_;
  std::vector<std::uint64_t> checksums_;
  std::vector<std::uint32_t> key_offsets_;
  std::vector<std::uint32_t> payload_offsets_;
  std::string keys_;
  Bytes payloads_;
  std::vector<trace::SpanContext> trace_;
  bool has_traced_rows_ = false;

  Offset base_offset_ = 0;
  PartitionId partition_ = 0;
};

}  // namespace arbd::stream
