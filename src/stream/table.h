// Compacted table topics: the latest-value-per-key view of a changelog
// stream (Kafka's log compaction). Profile stores — EHRs, customer
// records, POI metadata — live on exactly this shape: every update is an
// event in the log, the table is its materialization, and a new consumer
// can rebuild the table from the compacted log without replaying history.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "common/status.h"
#include "stream/log.h"

namespace arbd::stream {

// Materialized latest-value view over a topic. Feed it records (usually
// from a consumer loop); empty payloads are tombstones that delete keys.
class TableView {
 public:
  void Apply(const Record& record);

  std::optional<Bytes> Get(const std::string& key) const;
  std::optional<std::string> GetText(const std::string& key) const;
  bool Contains(const std::string& key) const { return rows_.contains(key); }
  std::size_t size() const { return rows_.size(); }
  std::uint64_t updates_applied() const { return updates_; }
  std::uint64_t tombstones_applied() const { return tombstones_; }

  const std::map<std::string, Bytes>& rows() const { return rows_; }

 private:
  std::map<std::string, Bytes> rows_;
  std::uint64_t updates_ = 0;
  std::uint64_t tombstones_ = 0;
};

// Log compaction for a topic: keeps only the newest record per key and
// drops tombstoned keys entirely, like Kafka's cleaner. Returns records
// removed.
//
// Divergence from Kafka, by design: this library's log is dense, so
// compaction renumbers the retained records (relative order preserved,
// end offset shrinks). Consumers should re-materialize after compaction
// rather than resume mid-log — `MaterializeTable` is that bootstrap path.
std::size_t CompactTopic(Topic& topic);

// Convenience: rebuild a table by scanning a whole topic from the log
// start (what a booting consumer does).
Expected<TableView> MaterializeTable(Broker& broker, const std::string& topic);

}  // namespace arbd::stream
