// Fault tolerance for dataflow jobs: a consumer-driven job that
// checkpoints operator state and commits its input offsets together, so
// that after a crash the pipeline resumes from the snapshot and replays
// only the uncommitted suffix (at-least-once, with the replay window
// bounded by the checkpoint interval). This is the recovery half of the
// §4.1 timeliness story — results must survive the components dying.
//
// With SetTransactionalSink the job upgrades to end-to-end exactly-once:
// window results emitted since the last checkpoint are buffered, and the
// buffer is published downstream only when the checkpoint (snapshot +
// offset commit) succeeds — the two-phase-commit shape. A crash discards
// the uncommitted buffer; the replayed inputs regenerate the same windows
// from the restored state, so each result reaches the sink exactly once.
// Paired with IdempotentProducer on the input side (which dedups retries
// into the replicated log), the path from produce to sink delivers every
// record's effect once, crashes or not.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "fault/injector.h"
#include "stream/consumer.h"
#include "stream/dataflow.h"

namespace arbd::stream {

// Builds a fresh, empty pipeline with the job's topology. Called at start
// and after every crash; the topology must match the checkpoint.
using PipelineFactory = std::function<std::unique_ptr<Pipeline>()>;

struct RecoveryStats {
  std::uint64_t records_processed = 0;   // total pushes, including replays
  std::uint64_t records_replayed = 0;    // pushes that were re-deliveries
  std::uint64_t checkpoints = 0;
  std::uint64_t crashes = 0;
  std::uint64_t decode_failures = 0;
  // Chaos-mode counters (zero unless a FaultInjector is attached).
  std::uint64_t checkpoint_failures = 0;      // torn snapshot writes, retried
  std::uint64_t snapshot_decode_retries = 0;  // corrupt reads healed by re-read
  Duration stalled = Duration::Zero();        // simulated worker stall time
  // Transactional-sink counters (zero unless SetTransactionalSink is used).
  std::uint64_t outputs_committed = 0;  // window results delivered downstream
  std::uint64_t outputs_discarded = 0;  // buffered results dropped by a crash

  bool operator==(const RecoveryStats&) const = default;
};

class CheckpointedJob {
 public:
  // `checkpoint_every` counts records between checkpoints.
  CheckpointedJob(Broker& broker, std::string topic, std::string group_id,
                  PipelineFactory factory, std::size_t checkpoint_every = 1000);

  // Pull up to `max_records` from the topic through the pipeline. Returns
  // records processed this call.
  Expected<std::size_t> Pump(std::size_t max_records = 1024);

  // Snapshot pipeline state and commit consumed offsets atomically.
  Status Checkpoint();

  // Simulate a process crash: all in-memory state (pipeline, uncommitted
  // consumer progress) is discarded.
  void InjectCrash();

  // Rebuild from the last checkpoint. Called automatically by Pump after a
  // crash; exposed for tests.
  Status Recover();

  // Upgrade to exactly-once delivery: results flow into an internal buffer
  // and `deliver` is invoked for each only after the checkpoint that
  // covers them commits. Call before the first Pump (the buffer must
  // cover every emitted result). Survives crashes: the sink re-attaches
  // to every rebuilt pipeline.
  void SetTransactionalSink(std::function<void(const WindowResult&)> deliver);

  // Drain to a clean end: recover if crashed, flush remaining windows, and
  // checkpoint (retrying torn writes) so every buffered result is
  // delivered. The terminal step of an exactly-once run.
  Status Finish();

  Pipeline* pipeline() { return pipeline_.get(); }
  const RecoveryStats& stats() const { return stats_; }
  bool crashed() const { return pipeline_ == nullptr; }

  // Records produced but not yet committed by this job's group — the
  // drain condition chaos harnesses use (a single empty Pump can just be
  // an injected fetch error, not completion).
  std::int64_t Lag() const { return group_->TotalLag(); }

  // Optional chaos hook (not owned). Injects `crash` per record pumped,
  // `stall` pauses per record, `ckptfail` torn checkpoint writes (the
  // previous snapshot and offsets are kept, so the write is retried at the
  // next batch boundary), and `snapcorrupt` snapshot-decode failures on
  // recovery (healed by re-reading — stable storage is checksummed).
  void set_fault_injector(fault::FaultInjector* injector) { fault_ = injector; }

 private:
  void AttachTxnSink();

  Broker& broker_;
  std::string topic_;
  std::string group_id_;
  PipelineFactory factory_;
  std::size_t checkpoint_every_;

  std::unique_ptr<ConsumerGroup> group_;
  Consumer* consumer_ = nullptr;
  std::unique_ptr<Pipeline> pipeline_;
  Bytes snapshot_;
  bool has_snapshot_ = false;
  std::size_t since_checkpoint_ = 0;

  // High-water mark per partition of offsets ever processed, to classify
  // replayed deliveries.
  std::map<PartitionId, Offset> processed_hwm_;

  // Exactly-once output buffer: results since the last committed
  // checkpoint. Delivered on checkpoint success, discarded on crash, kept
  // across a torn checkpoint write (the retry delivers them once).
  std::function<void(const WindowResult&)> txn_deliver_;
  std::vector<WindowResult> txn_buffer_;

  fault::FaultInjector* fault_ = nullptr;
  RecoveryStats stats_;
};

}  // namespace arbd::stream
