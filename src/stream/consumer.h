// Consumer groups over the partitioned log: cooperative partition
// assignment, committed offsets, and rebalancing when members join or
// leave. Mirrors the Kafka consumer-group contract closely enough that the
// platform's readers (analytics jobs, scenario pipelines) behave like
// their production counterparts.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "stream/log.h"

namespace arbd::stream {

class ConsumerGroup;

// A single member of a consumer group. Poll() only returns records from
// partitions currently assigned to this member.
class Consumer {
 public:
  // Fetches up to max_records across assigned partitions (round-robin so
  // one hot partition cannot starve the others). With ARBD_BATCH on, the
  // fetches go through the broker's columnar FetchBatch and rows are
  // materialized at the return boundary — same records, same auto-reset
  // behaviour, one batched fetch per partition.
  //
  // The optional deadline (ISSUE 10) bounds the poll to a budget: each
  // partition fetch charges the cluster gate's modeled per-op cost
  // (zero without a cluster), and once the budget is spent the poll
  // stops visiting further partitions and returns what it has — a
  // frame-deadline consumer degrades to partial progress instead of
  // blowing the frame. Null = the original unbounded poll, byte for
  // byte.
  std::vector<StoredRecord> Poll(std::size_t max_records, Deadline* deadline = nullptr);

  // Columnar poll: the same partition rotation, positions, and auto-reset
  // semantics as Poll, but rows stay in per-partition RecordBatches (one
  // per non-empty partition visited) for zero-copy downstream processing.
  // Unlike Poll this never materializes Records; it is the platform's
  // batch-mode ingest surface.
  std::vector<RecordBatch> PollBatches(std::size_t max_records);

  // Reposition every assigned partition to the smallest retained offset
  // whose event time is >= t (the log end when the partition has nothing
  // that late) — Kafka's offsetsForTimes + seek, driven by the sealed
  // segments' sparse time indexes. Polled-but-uncommitted progress on the
  // seeked partitions is abandoned, exactly like a rebalance rewind; the
  // next Commit covers positions from the seek point forward. Rejected
  // with kFailedPrecondition for fenced members.
  Status SeekToTimestamp(TimePoint t);

  // Commit consumed offsets back to the group (next offsets to read).
  // Generation-fenced: the commit is rejected with kFailedPrecondition when
  // this member was evicted (a zombie whose host broker died) or when the
  // group rebalanced since this member's last Poll — its polled-but-
  // uncommitted progress was rewound to the committed offsets and belongs
  // to a dead generation, exactly the stale commit that would silently
  // skip records for the members now owning those partitions.
  Status Commit();

  const std::string& id() const { return id_; }
  std::vector<PartitionId> Assignment() const;
  // The group generation this member last synced with (at rebalance or
  // poll time). A commit is valid only while this matches the group's.
  std::uint64_t generation() const { return observed_generation_; }
  bool fenced() const { return fenced_; }

 private:
  friend class ConsumerGroup;
  Consumer(ConsumerGroup& group, std::string id) : group_(group), id_(std::move(id)) {}

  ConsumerGroup& group_;
  std::string id_;
  // Position per assigned partition (next offset to fetch); seeded from the
  // group's committed offsets at (re)assignment.
  std::map<PartitionId, Offset> positions_;
  std::uint64_t rr_cursor_ = 0;
  std::uint64_t observed_generation_ = 0;
  bool fenced_ = false;
};

// Where a fresh group (no committed offset) starts reading.
enum class ResetPolicy { kEarliest, kLatest };

class ConsumerGroup {
 public:
  ConsumerGroup(Broker& broker, std::string group_id, std::string topic,
                ResetPolicy reset = ResetPolicy::kEarliest);

  // Adding/removing a member triggers an immediate rebalance. Uncommitted
  // progress on reassigned partitions is rewound to the committed offset —
  // i.e. at-least-once delivery, like the real thing.
  Expected<Consumer*> Join(const std::string& consumer_id);
  // A graceful leave commits the member's progress first; a crash
  // (commit_progress = false) loses everything since the last commit.
  Status Leave(const std::string& consumer_id, bool commit_progress = true);

  // Fence a member without destroying it — the cluster layer's model of a
  // consumer whose host broker died. The member keeps its handle but polls
  // nothing and its commits are rejected (stale generation); its
  // partitions are rebalanced to the survivors, who resume from the
  // committed offsets. Rejoin() re-admits it after the broker restarts.
  Status Evict(const std::string& consumer_id);
  Status Rejoin(const std::string& consumer_id);

  // Monotone rebalance counter used to fence stale commits: bumped on
  // every membership change, synced to members at rebalance and poll.
  std::uint64_t generation() const { return generation_; }
  // Commits rejected because the committing member was fenced or raced a
  // rebalance — each one is a would-be lost-record bug caught.
  std::uint64_t fenced_commit_count() const { return fenced_commits_; }

  Offset CommittedOffset(PartitionId p) const;
  std::size_t member_count() const { return members_.size(); }
  const std::string& topic() const { return topic_name_; }
  std::uint64_t rebalance_count() const { return rebalances_; }
  // Times a member's position was repositioned after falling outside the
  // retained offset window (observability for data-loss windows).
  std::uint64_t auto_reset_count() const { return auto_resets_; }

  // Total records not yet committed across all partitions ("consumer lag").
  std::int64_t TotalLag() const;

  // Rebalance iff the topic's partition count changed since the last
  // assignment (an autoscale split/merge appended partitions). Drivers
  // call this after cluster ticks; it is a no-op — no generation bump, no
  // position rewind — when nothing changed. Returns whether it rebalanced.
  bool SyncPartitions();

 private:
  friend class Consumer;
  void Rebalance();
  Offset InitialOffset(PartitionId p) const;

  Broker& broker_;
  std::string group_id_;
  std::string topic_name_;
  ResetPolicy reset_;
  std::map<std::string, std::unique_ptr<Consumer>> members_;
  std::map<PartitionId, std::string> assignment_;  // partition -> consumer id
  std::map<PartitionId, Offset> committed_;
  std::uint32_t assigned_partition_count_ = 0;  // topic size at last rebalance
  std::uint64_t rebalances_ = 0;
  std::uint64_t auto_resets_ = 0;
  std::uint64_t generation_ = 0;
  std::uint64_t fenced_commits_ = 0;
};

}  // namespace arbd::stream
