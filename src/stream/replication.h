// Replicated partitions with deterministic failover (ISSUE 5) — the layer
// that turns the single-copy broker into a leader/follower replica group
// per partition, Kafka-shaped:
//
//   - Each partition has `factor` replica nodes; one is the leader, the
//     rest are followers. The in-sync-replica (ISR) set is the online
//     replicas that hold the leader's full log.
//   - Produce is quorum-acknowledged (acks=all): a record is *committed*
//     only once every ISR member holds it, at which point the
//     high-watermark advances and the record lands in the committed
//     Partition — the store every fetch/consumer/retention path already
//     reads. Consumers therefore never observe an uncommitted record.
//   - Leader epochs fence stale leaders: every append carries the
//     epoch the appender believes is current, and an append with an old
//     epoch is rejected (kFailedPrecondition) without touching any log.
//   - Failover is deterministic: when the leader crashes, the successor
//     is the online replica with the longest log, ties broken by a hash
//     seeded from (failover_seed, epoch, partition state) — so a given
//     crash schedule elects the same leaders at any worker count and on
//     every rerun. Divergent suffixes (entries only the dead leader held)
//     are truncated at the epoch/offset boundary when the node restores.
//   - Producers get stable ids and per-partition sequence numbers; the
//     broker dedups (pid, seq) against committed state, so a retry after
//     a lost ack (torn append, leader crash mid-produce) returns the
//     original offset instead of appending a duplicate — the produce half
//     of end-to-end exactly-once (stream/recovery.h has the consume half).
//
// Simulation notes: replication is synchronous and in-process — there is
// no modeled replication network. A crashed node keeps its log (crash =
// process down, disk intact) and restores after a configured number of
// produce attempts (the restore window models the real-world catch-up
// period during which the node is out of the ISR). See
// docs/replication.md for the full contract and invariants.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "fault/retry.h"
#include "stream/record.h"

namespace arbd::stream {

class Partition;
class Broker;
class Topic;
class RecordBatch;

using NodeId = std::uint32_t;
using Epoch = std::uint64_t;
using ProducerId = std::uint64_t;  // 0 = anonymous (no dedup)

inline constexpr NodeId kNoLeader = static_cast<NodeId>(-1);

// How long (in subsequent produce attempts on the partition) a crashed
// node stays down before auto-restoring, when the injection site does not
// specify a window. Models the catch-up period a restarted node spends
// out of the ISR.
inline constexpr std::size_t kDefaultRestoreWindow = 25;

// Fault directive a produce call can carry (the broker translates an
// injected `nodecrash` rule into one of these).
struct InjectedCrash {
  bool crash_leader = false;            // kill the leader mid-produce
  std::size_t restore_after_ops = kDefaultRestoreWindow;
};

// ARBD_REPLICAS (1..8): the default replication factor for topics that do
// not set one explicitly. Unset or invalid -> 1 (the pre-replication
// single-copy behaviour, bit-identical to the seed).
std::uint32_t ReplicationFactorFromEnv();

// Introspection row for one replica node (tests, benches, docs tables).
struct ReplicaInfo {
  NodeId node = 0;
  bool online = true;
  bool in_sync = true;
  std::size_t tail_entries = 0;  // uncommitted entries this replica holds
};

struct ReplicationStats {
  std::uint64_t failovers = 0;          // leader elections after the first
  std::uint64_t node_crashes = 0;
  std::uint64_t node_restores = 0;
  std::uint64_t truncated_entries = 0;  // divergent-suffix entries dropped
  std::uint64_t fenced_appends = 0;     // stale-epoch appends rejected
  std::uint64_t dedup_hits = 0;         // duplicate (pid, seq) absorbed
  std::uint64_t unavailable_rejects = 0;// produce attempts with no leader

  bool operator==(const ReplicationStats&) const = default;
};

// One partition's replica group. `committed` is the Partition consumers
// fetch from: nothing lands there until quorum-acknowledged, so the
// existing fetch path serves exactly the committed prefix. All methods
// are serialized by an internal mutex (the partition is the unit of
// parallelism, as elsewhere in the broker).
class ReplicatedPartition {
 public:
  ReplicatedPartition(std::uint32_t factor, std::uint64_t failover_seed,
                      Partition& committed);

  // Quorum produce through the current leader. `crash.crash_leader`
  // injects the interesting failure: the leader appends locally,
  // replicates to a deterministic subset of followers, and dies before
  // acknowledging — the caller sees kUnavailable and the record survives
  // iff the elected successor holds it (a retry with the same (pid, seq)
  // then dedups instead of duplicating). At factor 1 the crash simply
  // downs the node before anything is appended.
  Expected<Offset> Produce(Record record, TimePoint ingest_time,
                           ProducerId pid, std::uint64_t seq,
                           InjectedCrash crash = {});

  // One-shot bulk append of rows [from_row, from_row + n) of `batch`
  // (anonymous producer, no crash directive). Succeeds only in the steady
  // state — a current leader and no armed auto-restores — where it is
  // equivalent to n sequential Produce calls; otherwise returns
  // kFailedPrecondition without appending anything and the caller falls
  // back to the per-record path, whose per-attempt restore ticks the bulk
  // path cannot reproduce. Returns the offset of the first row. At
  // factor > 1 the whole batch commits as one high-watermark advance (one
  // HwStep), where the per-record path records one per append.
  Expected<Offset> ProduceBatch(const RecordBatch& batch, std::size_t from_row,
                                std::size_t n, TimePoint ingest_time);

  // The fencing surface: an append that carries the epoch the caller
  // believes is current. A deposed leader retrying with its old epoch is
  // rejected with kFailedPrecondition and nothing is appended anywhere.
  Expected<Offset> LeaderAppend(Epoch claimed_epoch, Record record,
                                TimePoint ingest_time, ProducerId pid,
                                std::uint64_t seq, InjectedCrash crash = {});

  // Crash / restore a specific node. `restore_after_ops` > 0 arms the
  // auto-restore counter: the node comes back after that many subsequent
  // produce attempts on this partition (attempts, not successes, so a
  // factor-1 partition recovers even while rejecting). 0 = manual restore.
  Status CrashNode(NodeId node, std::size_t restore_after_ops = 0);
  Status RestoreNode(NodeId node);
  // Crash the current leader (no-op error if the group is leaderless).
  Status CrashLeader(std::size_t restore_after_ops = 0);

  // --- autoscale split/merge handoff (ISSUE 9) ---
  // Fence the group for a partition split or merge: every replica's
  // uncommitted tail is dropped (those entries were never acknowledged,
  // so dropping them loses nothing a producer was promised), and all
  // future appends are rejected with kFailedPrecondition. Dedup lookups
  // still answer: a retry of a (pid, seq) that committed before the seal
  // keeps returning its original offset instead of the sealed error —
  // the order the exactly-once handoff depends on. Returns the committed
  // end offset (the fenced split offset) and a snapshot of the dedup
  // table for seeding the children.
  struct SealSnapshot {
    Offset split_offset = 0;
    std::map<ProducerId, std::pair<std::uint64_t, Offset>> seen;
  };
  SealSnapshot SealForSplit();
  bool sealed() const;
  // Merge a sealed ancestor's dedup table into this (fresh) group, taking
  // the max seq per producer — so an in-flight retry of a record the
  // parent already committed dedups on the child instead of duplicating.
  void SeedDedup(const std::map<ProducerId, std::pair<std::uint64_t, Offset>>& seen);
  // Highest committed seq for `pid` (0 if never seen) — the floor a
  // rerouting producer must start its per-partition sequence above.
  std::uint64_t LastSeq(ProducerId pid) const;

  NodeId leader() const;
  Epoch epoch() const;
  Offset high_watermark() const;
  std::uint32_t factor() const { return static_cast<std::uint32_t>(replicas_.size()); }
  std::vector<NodeId> Isr() const;
  std::vector<ReplicaInfo> Replicas() const;
  ReplicationStats stats() const;

  // Every (epoch, high-watermark) advance, in order — the determinism
  // suite asserts two runs with the same seed and fault plan produce the
  // identical history. Recorded only at factor > 1 (at factor 1 the
  // history is the trivial one-step-per-append sequence; skipping it keeps
  // the single-copy hot path allocation-free).
  struct HwStep {
    Epoch epoch;
    Offset hw;
    bool operator==(const HwStep&) const = default;
  };
  std::vector<HwStep> hw_history() const;

 private:
  struct Entry {
    Epoch epoch = 0;
    ProducerId pid = 0;
    std::uint64_t seq = 0;
    Record record;
    TimePoint ingest_time;
  };
  struct Replica {
    bool online = true;
    // Uncommitted tail (entries above the high-watermark). Between produce
    // calls every *online* replica's tail is empty (commit is synchronous);
    // a crashed node's tail is the suffix it held when it died, truncated
    // at restore if an election moved the epoch past it.
    std::deque<Entry> tail;
    Epoch epoch_at_crash = 0;
    std::size_t restore_in_ops = 0;  // 0 = not armed
  };

  // All private helpers require mu_ held.
  void TickRestores();
  void RestoreLocked(NodeId node);
  void CrashLocked(NodeId node, std::size_t restore_after_ops);
  void ElectLeader();
  void CommitLeaderTail();
  Expected<Offset> AppendLocked(Epoch claimed_epoch, Record record,
                                TimePoint ingest_time, ProducerId pid,
                                std::uint64_t seq, InjectedCrash crash);
  std::size_t OnlineCount() const;
  void RecordHw();

  mutable std::mutex mu_;
  Partition& committed_;
  std::uint64_t failover_seed_;
  std::vector<Replica> replicas_;
  NodeId leader_ = 0;
  Epoch epoch_ = 1;
  // Committed (pid -> {highest seq, offset it landed at}); the dedup table.
  std::map<ProducerId, std::pair<std::uint64_t, Offset>> seen_;
  bool sealed_ = false;  // split/merge fence: no further appends, ever
  ReplicationStats stats_;
  std::vector<HwStep> hw_history_;
};

// Producer with a stable id and per-partition sequence numbers: assigns
// the partition on the driver (same key-hash / round-robin rule as
// Broker::Produce), stamps (pid, seq) on every send, and retries
// kUnavailable acks with capped backoff. Retries are duplicate-safe by
// construction — the broker dedups (pid, seq) — so a lost ack is absorbed
// instead of appended twice. Backoff is accounted on the modeled-time
// axis (total_backoff) rather than slept.
class IdempotentProducer {
 public:
  IdempotentProducer(Broker& broker, std::string topic,
                     fault::RetryPolicy retry = {},
                     std::uint64_t jitter_seed = 0x1d3);

  Expected<std::pair<PartitionId, Offset>> Send(Record record);

  ProducerId id() const { return pid_; }
  std::uint64_t sent() const { return sent_; }
  std::uint64_t retries() const { return retries_; }
  std::uint64_t exhausted() const { return exhausted_; }
  Duration total_backoff() const { return total_backoff_; }

 private:
  Broker& broker_;
  std::string topic_;
  fault::RetryPolicy retry_;
  Rng rng_;
  ProducerId pid_;
  std::map<PartitionId, std::uint64_t> next_seq_;
  std::uint64_t sent_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t exhausted_ = 0;  // sends that ran out of retry budget
  Duration total_backoff_ = Duration::Zero();
};

// Digest of a partition's committed prefix: folds (offset, key, payload,
// event time) per record — deliberately *not* ingest time, so the digest
// is a statement about committed content and order, invariant across
// crash schedules that stretch wall-clock differently. The E22 gates
// compare this across worker counts, replication factors, and schedules.
std::uint64_t CommittedDigest(const Partition& partition);
// All partitions of a topic, folded in partition order.
std::uint64_t CommittedTopicDigest(Topic& topic);

}  // namespace arbd::stream
