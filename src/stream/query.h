// Historical read path over the segmented partition (ISSUE 8): range and
// time queries plus timestamp seek, layered on a seeded-LRU block cache.
// The loader/query/cache split: stream/segment.h owns the sealed storage
// and its sparse indexes (the loader tier), this header owns query
// planning/execution and the cache that sits between the two.
//
// Contract with the tail: queries take the partition lock only to
// snapshot shared_ptrs to the sealed run (plus a bounded copy of the live
// active window), then scan immutable segments lock-free through the
// cache — so historical scans never hold the tail's append lock across a
// block. Queries consume no fault-injector randomness and are admitted
// through the same ClusterGate as any fetch (Broker::QueryRange /
// QueryTime / OffsetForTimestamp in stream/log.h), so turning them on
// never perturbs a fault schedule or a scenario digest.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "stream/record.h"
#include "stream/segment.h"

namespace arbd::stream {

class Partition;

// Work accounting for one query (or a merged run of them): the E25 gates
// assert sublinearity from these rather than from noisy wall clocks —
// blocks_scanned and rows_examined must track the answer size, not the
// segment count.
struct QueryStats {
  std::uint64_t segments_considered = 0;  // sealed segments in the snapshot
  std::uint64_t segments_pruned = 0;      // skipped whole via segment bounds
  std::uint64_t blocks_pruned = 0;        // skipped whole via block bounds
  std::uint64_t blocks_scanned = 0;       // blocks whose rows were examined
  std::uint64_t rows_examined = 0;
  std::uint64_t rows_returned = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;

  void Merge(const QueryStats& o);
};

struct QueryResult {
  // Matching rows in offset order. StoredRecord::partition is stamped by
  // the Broker wrapper; the partition-level functions leave it 0.
  std::vector<StoredRecord> rows;
  QueryStats stats;
};

// One cached block: the materialized rows of (segment uid, block index),
// offsets absolute, partition unset. Shared so an eviction never
// invalidates a reader mid-scan.
using CachedBlock = std::vector<StoredRecord>;

struct BlockKey {
  std::uint64_t segment_uid = 0;
  std::uint32_t block = 0;
  bool operator==(const BlockKey&) const = default;
};

// Seeded-LRU block cache between the sealed segments and the query path.
// Capacity is counted in blocks; eviction is exact LRU over a doubly
// linked list, so behaviour is deterministic given the access sequence —
// the seed only salts the key hash (shuffling bucket layout across
// instances, never the eviction order), which keeps two caches with the
// same capacity and access stream byte-identical in their hit/miss
// sequences. Thread-safe; one cache fronts all of a Broker's partitions.
class BlockCache {
 public:
  explicit BlockCache(std::size_t capacity_blocks, std::uint64_t seed = 0x5eedb10cULL);

  // nullptr on miss. A hit refreshes recency.
  std::shared_ptr<const CachedBlock> Get(const BlockKey& key);
  // Inserts (or refreshes) and returns the resident block, evicting the
  // least-recently-used entries over capacity.
  std::shared_ptr<const CachedBlock> Put(const BlockKey& key, CachedBlock block);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;
  double hit_rate() const;  // hits / (hits + misses), 0 when cold
  void Clear();

 private:
  struct Hash {
    std::uint64_t seed;
    std::size_t operator()(const BlockKey& k) const;
  };
  struct Entry {
    BlockKey key;
    std::shared_ptr<const CachedBlock> block;
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<BlockKey, std::list<Entry>::iterator, Hash> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

// Rows with offsets in [lo, hi) ∩ [log_start, end), in offset order.
// Sealed rows are served through `cache` (nullptr = uncached scan); the
// live active window is read from the snapshot copy. Out-of-window
// bounds clamp — a historical query asking below the log start gets the
// surviving suffix, mirroring consumer auto-reset rather than erroring.
QueryResult QueryRange(const Partition& partition, Offset lo, Offset hi,
                       BlockCache* cache);

// Rows with event time in [t_lo, t_hi), in offset order. Prunes whole
// segments by their event-time bounds and whole blocks by the sparse
// time index before examining any row.
QueryResult QueryTime(const Partition& partition, TimePoint t_lo, TimePoint t_hi,
                      BlockCache* cache);

// The smallest retained offset whose event time is >= t, or the log end
// when no such record exists — Kafka's offsetsForTimes, the primitive
// Consumer::SeekToTimestamp repositions with.
Offset OffsetForTimestamp(const Partition& partition, TimePoint t);

}  // namespace arbd::stream
