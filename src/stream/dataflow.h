// Event-time dataflow over the message log — the Flink-shaped half of the
// big-data substrate. Push-based pipelines of stages (map, filter, keyed
// window aggregation, sink) driven by watermarks with configurable
// out-of-orderness and allowed lateness, plus checkpoint/restore of all
// operator state so a pipeline can resume after simulated failure.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/serialize.h"
#include "common/status.h"
#include "trace/tracer.h"

namespace arbd::exec {
class Executor;
}

namespace arbd::stream {

// The typed event the dataflow layer works on. Scenario code serializes
// richer structs into Record payloads; the analytics pipelines operate on
// this (key, attribute, value, time) shape, which covers every aggregate
// the paper's use cases need (vitals, purchases, speeds, gaze dwell…).
struct Event {
  std::string key;        // entity: user / vehicle / patient / product id
  std::string attribute;  // which metric this sample is ("heart_rate", …)
  double value = 0.0;
  TimePoint event_time;
  // Causal-tracing header. In-memory only — Encode/Decode ignore it, so
  // serialized bytes (and every digest built on them) are identical with
  // tracing on or off. Stage functions that copy their input event
  // preserve the chain; ones that build a fresh Event end the trace.
  trace::SpanContext trace_ctx;

  Bytes Encode() const;
  static Expected<Event> Decode(const Bytes& buf);
  // Zero-copy form: decode straight out of a columnar batch's payload
  // slice (RecordBatch::payload_data/payload_size) without materializing
  // an intermediate Bytes copy. Identical parse to Decode(Bytes).
  static Expected<Event> Decode(const std::uint8_t* data, std::size_t size);
};

struct WindowSpec {
  enum class Kind { kTumbling, kSliding, kSession };
  Kind kind = Kind::kTumbling;
  Duration size = Duration::Seconds(1);
  Duration slide = Duration::Seconds(1);  // sliding only
  Duration gap = Duration::Seconds(1);    // session only

  static WindowSpec Tumbling(Duration size);
  static WindowSpec Sliding(Duration size, Duration slide);
  static WindowSpec Session(Duration gap);
};

enum class AggKind { kCount, kSum, kMean, kMin, kMax };

struct WindowResult {
  std::string key;
  std::string attribute;
  TimePoint window_start;
  TimePoint window_end;
  double value = 0.0;
  std::uint64_t count = 0;
};

class Pipeline;

// Execution context handed to stages: lets a stage push an event to its
// downstream neighbour and surface window results to pipeline sinks.
class StageContext {
 public:
  virtual ~StageContext() = default;
  virtual void Emit(Event event) = 0;
  virtual void EmitResult(WindowResult result) = 0;
};

class Stage {
 public:
  virtual ~Stage() = default;
  virtual void Process(const Event& event, StageContext& ctx) = 0;
  // Watermark advanced to `wm`: fire any windows that are now complete.
  virtual void OnWatermark(TimePoint wm, StageContext& ctx) { (void)wm; (void)ctx; }
  // Operator-state snapshot for checkpointing. Stateless stages write nothing.
  virtual void SaveState(BinaryWriter& w) const { (void)w; }
  virtual Status LoadState(BinaryReader& r) { (void)r; return Status::Ok(); }
};

// Keyed windowed aggregation with event-time semantics. State per
// (key, window): running aggregate. A window fires when the watermark
// passes window_end + allowed_lateness; events older than the watermark
// minus lateness are counted as dropped-late.
class WindowAggregateStage final : public Stage {
 public:
  WindowAggregateStage(WindowSpec spec, AggKind agg, Duration allowed_lateness = Duration::Zero());

  void Process(const Event& event, StageContext& ctx) override;
  void OnWatermark(TimePoint wm, StageContext& ctx) override;
  void SaveState(BinaryWriter& w) const override;
  Status LoadState(BinaryReader& r) override;

  std::uint64_t late_dropped() const { return late_dropped_; }
  std::size_t open_windows() const { return windows_.size(); }

 private:
  struct Accum {
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::uint64_t count = 0;
    void Add(double v);
    double Result(AggKind k) const;
  };

  // Hot-path memo for tumbling windows: batched ingest delivers long runs
  // of events hitting the same (key, attribute, window), so the last
  // resolved accumulator is cached and re-validated with one key compare
  // instead of a map lookup per event. Pure lookup memoization — the adds
  // hit the same accumulator in the same order, so results (including
  // float bit patterns) are identical with the memo hit or miss.
  // std::map pointers are stable under insert; OnWatermark/LoadState erase
  // entries and must invalidate the memo.
  struct Memo {
    Accum* slot = nullptr;  // null = invalid
    std::string key;
    std::string attribute;
    std::int64_t start_ns = 0;
  };
  struct WindowKey {
    std::string key;
    std::string attribute;
    std::int64_t start_ns;
    std::int64_t end_ns;
    auto operator<=>(const WindowKey&) const = default;
  };

  std::vector<std::pair<TimePoint, TimePoint>> WindowsFor(TimePoint t) const;
  void AssignSession(const Event& e);

  WindowSpec spec_;
  AggKind agg_;
  Duration lateness_;
  std::map<WindowKey, Accum> windows_;
  Memo memo_;
  TimePoint last_watermark_ = TimePoint::Min();
  std::uint64_t late_dropped_ = 0;
};

// A linear pipeline of stages fed from user code or a consumer loop.
// Watermarks are generated as (max event time seen − max_out_of_orderness)
// and propagated through every stage.
class Pipeline final : public StageContext {
 public:
  explicit Pipeline(Duration max_out_of_orderness = Duration::Zero());

  Pipeline& Map(std::function<Event(const Event&)> fn);
  Pipeline& Filter(std::function<bool(const Event&)> pred);
  // Rekey/rename: convenience map that preserves the value.
  Pipeline& KeyBy(std::function<std::string(const Event&)> key_fn);
  Pipeline& WindowAggregate(WindowSpec spec, AggKind agg,
                            Duration allowed_lateness = Duration::Zero());
  Pipeline& Sink(std::function<void(const WindowResult&)> sink);
  Pipeline& EventSink(std::function<void(const Event&)> sink);

  // Feed one event; advances the watermark and may fire windows. If a
  // bounded inbox is active and has queued events, the event joins the
  // queue instead (FIFO with Offer) and is processed by DrainPending.
  void Push(const Event& event);
  // Force all remaining windows closed (end of stream).
  void Flush();

  // Run a whole batch with each stage as an executor task: the driver
  // assigns watermark positions up front (replicating Push's bookkeeping
  // event-for-event), then stage s's task processes the full in-band item
  // sequence — events, pass-through results, watermark markers — and
  // submits stage s+1's task on the next shard. Because every stage sees
  // the identical ordered sequence the synchronous pump would have fed it,
  // sink calls, counters, and checkpoint bytes come out bit-identical to
  // calling Push(batch[i]) in order, at any worker count. Stages of this
  // pipeline occupy shards [shard_base, shard_base + stage_count()], so
  // distinct pipelines sharing an executor need shard_base strides of at
  // least stage_count()+1. The caller must exec.Drain() before touching
  // the pipeline again; the bounded inbox (Offer/DrainPending) is
  // bypassed — in batch mode admission is the caller's fetch credit.
  void ProcessBatchParallel(exec::Executor& exec, const std::vector<Event>& batch,
                            std::uint64_t shard_base = 0);

  // Inline columnar-era batch execution: the same driver-side watermark
  // assignment and in-band item sequence as ProcessBatchParallel, but the
  // stages run stage-at-a-time on the calling thread (no executor). Each
  // stage consumes the whole ordered item sequence before the next stage
  // starts, which is exactly what the task chain does, so sink calls,
  // counters, and checkpoint bytes are bit-identical to Push(batch[i]) in
  // order — and to ProcessBatchParallel at any worker count. Like the
  // parallel form it bypasses the bounded inbox; callers with queued
  // events must drain them first to preserve FIFO order.
  void PushBatch(const std::vector<Event>& batch);

  std::size_t stage_count() const { return stages_.size(); }

  // Bounded stage hand-off: with an input budget set (0 disables), Offer
  // enqueues into a bounded inbox instead of processing inline, returning
  // kResourceExhausted when the inbox is full. The feeding loop reads
  // input_credit() before fetching from the broker (credit-based
  // backpressure) and calls DrainPending to process queued events.
  void set_input_budget(std::size_t budget) { input_budget_ = budget; }
  std::size_t input_budget() const { return input_budget_; }
  std::size_t input_credit() const {
    return input_budget_ == 0 ? static_cast<std::size_t>(-1)
                              : input_budget_ - std::min(input_budget_, pending_.size());
  }
  Status Offer(Event event);
  // Process up to `max_events` queued events; returns events processed.
  std::size_t DrainPending(std::size_t max_events);
  std::size_t pending() const { return pending_.size(); }

  // Optional tracing hook (not owned). When set and enabled, every stage
  // invocation on an event with a valid context records a
  // "pipeline.s<i>.<kind>" span and chains the child context into the
  // stage's emitted events — identically on the serial Push path and the
  // ProcessBatchParallel task chain, so traced span trees stay
  // bit-identical at any worker count.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  TimePoint watermark() const { return watermark_; }
  std::uint64_t events_in() const { return events_in_; }
  std::uint64_t results_out() const { return results_out_; }

  // Snapshot/restore all operator state + watermark (E4/E12 failure tests).
  Bytes Checkpoint() const;
  Status Restore(const Bytes& snapshot);

  // Total late-dropped events across window stages.
  std::uint64_t late_dropped() const;

 private:
  // StageContext for the stage currently executing at index `cursor_`.
  void Emit(Event event) override;
  void EmitResult(WindowResult result) override;
  // Push minus the inbox-ordering check: processes the event right now.
  // DrainPending pops from pending_ and calls this (calling Push would
  // re-enqueue forever).
  void PushNow(const Event& event);
  void RunFrom(std::size_t index, const Event& event);
  void PropagateWatermark(TimePoint wm);

  struct FnStage;
  struct ParItem;
  class BatchCtx;
  void SubmitStage(exec::Executor& exec, std::size_t stage, std::uint64_t shard_base,
                   std::shared_ptr<std::vector<ParItem>> items);
  // Shared per-stage item pump: runs stage `stage` over the ordered item
  // sequence, appending its outputs to `next`. Used by both the executor
  // task chain (SubmitStage) and the inline batch path (PushBatch) so the
  // two cannot drift.
  void RunStageOnItems(std::size_t stage, std::vector<ParItem>& items,
                       std::vector<ParItem>& next);
  // Terminal delivery: hand the final item sequence to sinks, in order.
  void DeliverTerminal(const std::vector<ParItem>& items);
  // Driver-side bookkeeping shared by ProcessBatchParallel and PushBatch:
  // replicates Push's watermark arithmetic event-for-event and returns the
  // in-band item sequence (events + watermark markers) stage 0 should see.
  std::vector<ParItem> PlanBatch(const std::vector<Event>& batch);

  // Span name for stage `index`, recorded on traced events; returns the
  // updated event context. No-op passthrough when tracing is off.
  trace::SpanContext TraceStage(std::size_t index, const Event& event) const;

  Duration max_ooo_;
  std::vector<std::unique_ptr<Stage>> stages_;
  std::vector<std::string> stage_span_names_;  // parallel to stages_
  trace::Tracer* tracer_ = nullptr;
  std::vector<WindowAggregateStage*> window_stages_;
  std::vector<std::function<void(const WindowResult&)>> sinks_;
  std::vector<std::function<void(const Event&)>> event_sinks_;
  TimePoint max_event_time_ = TimePoint::Min();
  TimePoint watermark_ = TimePoint::Min();
  std::size_t cursor_ = 0;
  std::uint64_t events_in_ = 0;
  std::uint64_t results_out_ = 0;
  std::size_t input_budget_ = 0;
  std::deque<Event> pending_;
};

}  // namespace arbd::stream
