// Partitioned, append-only message log — the Kafka-shaped substrate the
// paper's "velocity" arguments assume. In-memory (this is a simulation
// substrate) but with the full broker semantics the rest of the platform
// relies on: key-hash partitioning, per-partition monotonically increasing
// offsets, retention by size and by time, and checksummed fetches.
//
// Concurrency model (since the exec refactor): the partition is the unit
// of parallelism. Each Partition carries its own mutex, so Produce/Fetch/
// TruncateBefore on *different* partitions never contend; lightweight
// accessors (size, bytes, offsets, pressure, credit) read relaxed atomic
// mirrors and stay lock-free. The topic map itself is guarded by a
// shared_mutex — lookups take a shared lock, CreateTopic/DeleteTopic an
// exclusive one. DeleteTopic must not race in-flight produce/fetch on the
// topic being deleted (callers quiesce first; the simulation drivers do).
// Budget checks read the lock-free aggregates, so enforcement is exact in
// serial use and best-effort (a handful of records of slack) when many
// workers produce concurrently.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/status.h"
#include "fault/injector.h"
#include "stream/batch.h"
#include "stream/query.h"
#include "stream/record.h"
#include "stream/replication.h"
#include "stream/segment.h"

namespace arbd::stream {

// Admission hook for the modeled multi-broker cluster (src/cluster). When
// installed on a Broker, every produce/fetch asks the gate whether the
// partition's current leader broker is reachable before any fault-injector
// draw — the gate itself consumes no randomness, so installing it never
// perturbs fault schedules, and with no cluster (or a healthy one) every
// call admits and the broker's behaviour is byte-identical.
class ClusterGate {
 public:
  virtual ~ClusterGate() = default;
  // Ok to admit; kUnavailable when the partition's leader broker is down
  // or on the fenced minority side of a network split.
  virtual Status AdmitProduce(const std::string& topic, PartitionId partition) = 0;
  virtual Status AdmitFetch(const std::string& topic, PartitionId partition) = 0;

  // Identity-bearing admission (ISSUE 10 gray failures). `request_id` is a
  // stable hash of the request's content, which lets a lossy-link gate
  // drop individual requests by pure seeded hash — no RNG stream, so the
  // decision is independent of worker interleaving. The defaults forward
  // to the identity-free methods: gates that predate gray failures (and
  // clusters with no lossy fault armed) behave exactly as before.
  virtual Status AdmitProduceRequest(const std::string& topic, PartitionId partition,
                                     std::uint64_t request_id) {
    (void)request_id;
    return AdmitProduce(topic, partition);
  }
  virtual Status AdmitFetchRequest(const std::string& topic, PartitionId partition,
                                   std::uint64_t request_id) {
    (void)request_id;
    return AdmitFetch(topic, partition);
  }

  // Modeled cost of one admitted operation against this partition's
  // leader broker — what deadline-aware callers charge their budget per
  // produce/fetch/query. Zero by default (and for non-cluster gates), so
  // deadline accounting is a no-op unless the cluster models latency.
  virtual Duration OpCost(const std::string& topic, PartitionId partition) {
    (void)topic;
    (void)partition;
    return Duration::Zero();
  }
};

struct TopicConfig {
  std::uint32_t partitions = 1;
  // Retention: records older than this (by ingest time) or beyond this
  // count per partition are eligible for truncation. Zero disables.
  Duration retention_time = Duration::Zero();
  std::size_t retention_records = 0;
  // QoS budgets across the whole topic (zero disables): once the topic
  // holds this many records / payload+key bytes, Produce is rejected with
  // kResourceExhausted instead of growing the queue unboundedly. Producers
  // read the remaining headroom through Broker::Credit (credit-based
  // backpressure) rather than probing for rejections.
  std::size_t max_records = 0;
  std::size_t max_bytes = 0;
  // Replica nodes per partition (stream/replication.h). 0 defers to the
  // ARBD_REPLICAS environment variable (default 1, the single-copy
  // behaviour every pre-replication caller gets unchanged). Explicit
  // values are clamped to [1, 8] with a logged warning, matching the env
  // path; the cluster layer additionally clamps to its live broker count
  // at placement time (src/cluster/placement.h).
  std::uint32_t replication_factor = 0;
  // Seeds the deterministic leader elections; mixed with the partition id
  // so sibling partitions fail over independently.
  std::uint64_t replication_seed = 0x5eedULL;
};

// One partition of a topic. Offsets are dense: the first retained record
// sits at `log_start_offset`, the next append goes to `end_offset`.
// All mutating/reading operations on the record store are serialized by
// the partition mutex; the offset/size/byte accessors read atomic mirrors
// and may be called from any thread without locking.
//
// Storage is a segmented log (ISSUE 8): an active head RecordBatch that
// appends go to, plus a run of sealed immutable Segments
// (stream/segment.h), each carrying sparse offset/time indexes. The
// active batch keeps the dropped-prefix cursor of the flat store
// (truncation advances `active_head_` in O(1) per record, rebuilt once
// the dead prefix outweighs the live rows), while sealed segments drop
// whole in O(1) when retention/truncation passes their end — the tiered
// "segment drop" path. Sealing is gated by ARBD_SEGMENT_BYTES
// (SegmentBytesTarget): with it unset the partition never seals and is
// the flat single-batch store, byte-for-byte.
//
// Invariants (with mu_ held): sealed segments are contiguous and
// adjacent (seg[i].end == seg[i+1].base); if any exist,
// sealed_.back()->end_offset() == active_base_ and active_head_ == 0
// (a dead prefix can only accumulate in the active batch once every
// sealed segment is gone); start_offset_ points into the front segment
// (rows below it are dead, their bytes in front_dead_bytes_) or equals
// active_base_ when none exist.
class Partition {
 public:
  Offset Append(Record record, TimePoint ingest_time);

  // Bulk append of rows [from_row, from_row + n) of `batch`: one column-
  // range copy under one lock acquisition, equivalent to n sequential
  // Appends. Returns the offset of the first appended row.
  Offset AppendBatchRange(const RecordBatch& batch, std::size_t from_row,
                          std::size_t n, TimePoint ingest_time);

  // Fetch up to `max_records` starting at `from`. Returns OutOfRange if
  // `from` is below the log start (truncated away) or above the end.
  Expected<std::vector<StoredRecord>> Fetch(Offset from, std::size_t max_records) const;

  // Columnar fetch: the same rows as Fetch but returned as one RecordBatch
  // built from contiguous column-range copies (no per-record string/vector
  // construction). The OutOfRange contract matches Fetch exactly — both
  // the below-log-start and beyond-end errors carry the valid
  // [log_start, end) window so consumer auto-reset works unchanged when
  // batching is on.
  Expected<RecordBatch> FetchBatch(Offset from, std::size_t max_records) const;

  Offset log_start_offset() const { return start_mirror_.load(std::memory_order_acquire); }
  Offset end_offset() const { return end_mirror_.load(std::memory_order_acquire); }
  std::size_t size() const {
    return static_cast<std::size_t>(end_offset() - log_start_offset());
  }
  // Retained payload+key bytes (the unit topic byte budgets meter).
  std::size_t bytes() const { return bytes_mirror_.load(std::memory_order_acquire); }

  // Drop records violating retention limits. Returns number dropped.
  std::size_t EnforceRetention(const TopicConfig& cfg, TimePoint now);

  // Advance the log start to `offset`, dropping everything below it (the
  // Kafka deleteRecords operation). Consumers that have committed up to an
  // offset use this to return queue budget to producers. Returns records
  // dropped; offsets beyond the end clamp to the end.
  std::size_t TruncateBefore(Offset offset);

  // Log compaction: keep only the newest record per key, dropping
  // tombstoned keys (empty payloads) entirely. Retained records are
  // renumbered densely from the current log start (see stream/table.h for
  // the semantics note). Returns records removed.
  std::size_t CompactKeepLatest();

  // Latest event time appended (for watermark generation at the source).
  TimePoint max_event_time() const {
    return TimePoint::FromNanos(max_event_ns_mirror_.load(std::memory_order_acquire));
  }

  // What a historical query reads (stream/query.h): shared_ptrs to the
  // sealed segments overlapping [lo, hi) plus a copy of the overlapping
  // live active rows, taken under one lock acquisition. The query then
  // scans the immutable segments lock-free, so long scans never hold the
  // tail's append lock.
  PartitionSnapshot Snapshot(Offset lo, Offset hi) const;

  std::size_t sealed_segment_count() const;

  // Force-seal the live active rows into an immutable segment regardless
  // of the SegmentBytesTarget gate (no-op when nothing is live). The
  // autoscale split fence uses this so a sealed parent's history is
  // served entirely from the immutable query tier.
  void SealActive();

 private:
  void UpdateMirrors();  // call with mu_ held after any mutation
  std::size_t ActiveLiveLocked() const { return active_.size() - active_head_; }
  Offset EndLocked() const {
    return active_base_ + static_cast<Offset>(ActiveLiveLocked());
  }
  std::size_t LiveLocked() const {
    return static_cast<std::size_t>(EndLocked() - start_offset_);
  }
  // Seal the live active rows into an immutable Segment once they exceed
  // SegmentBytesTarget (no-op when the target is 0 or nothing is live).
  void MaybeSealLocked();
  void SealActiveLocked();
  // Advance the log start to min(target, end), dropping whole sealed
  // segments in O(1) when the target passes their end and per-row
  // otherwise. Returns records dropped; caller refreshes mirrors.
  std::size_t AdvanceStartLocked(Offset target);
  void MaybeCompactHeadLocked(); // rebuild active_ when its dead prefix dominates

  mutable std::mutex mu_;
  // Sealed run, oldest first; deque for O(1) front drop, shared_ptr so
  // in-flight query snapshots outlive truncation and compaction.
  std::deque<std::shared_ptr<const Segment>> sealed_;
  // Rows [active_head_, active_.size()) are live; [0, active_head_) were
  // truncated away and are reclaimed lazily by MaybeCompactHeadLocked.
  RecordBatch active_;
  std::size_t active_head_ = 0;
  Offset active_base_ = 0;   // absolute offset of active_ row active_head_
  Offset start_offset_ = 0;  // log start (may point into sealed_.front())
  std::size_t bytes_ = 0;    // live key+payload bytes across both tiers
  // Bytes of the truncated-away rows below start_offset_ still held by
  // sealed_.front() / active_ (immutable segments can't shrink in place).
  std::size_t front_dead_bytes_ = 0;
  std::size_t active_dead_bytes_ = 0;
  TimePoint max_event_time_ = TimePoint::Min();

  std::atomic<Offset> start_mirror_{0};
  std::atomic<Offset> end_mirror_{0};
  std::atomic<std::size_t> bytes_mirror_{0};
  std::atomic<std::int64_t> max_event_ns_mirror_{TimePoint::Min().nanos()};
};

class Topic {
 public:
  Topic(std::string name, TopicConfig cfg);

  const std::string& name() const { return name_; }
  const TopicConfig& config() const { return cfg_; }
  std::uint32_t partition_count() const { return static_cast<std::uint32_t>(parts_.size()); }

  // Key-hash partitioning; empty key round-robins. The round-robin counter
  // is atomic (thread-safe), but its assignment order then depends on call
  // interleaving — parallel producers that need determinism assign
  // partitions on the driver before fanning out (stream/parallel.h does).
  PartitionId PartitionFor(const std::string& key);

  Partition& partition(PartitionId p) { return *parts_.at(p); }
  const Partition& partition(PartitionId p) const { return *parts_.at(p); }

  // The replica group in front of partition `p`: every produce routes
  // through it, and the Partition above is its committed prefix.
  ReplicatedPartition& replication(PartitionId p) { return *repl_.at(p); }

  // Append `n` fresh empty partitions (each with its own replica group,
  // seeded by the same per-index formula the constructor uses) — the
  // autoscale split/merge target creation. Carries the same quiescence
  // contract as Broker::DeleteTopic: no concurrent produce/fetch on this
  // topic during the call (the cluster layer only mutates under its
  // exclusive lock between driver ticks). Existing partitions and offsets
  // are untouched; note PartitionFor's modulus widens, so key-stable
  // routing across a grow must go through the cluster's key-range router.
  // Returns the new partition count.
  std::uint32_t AddPartitions(std::uint32_t n);

  std::size_t TotalRecords() const;
  std::size_t TotalBytes() const;
  std::size_t EnforceRetention(TimePoint now);

  // Queue pressure against the configured budgets: the larger of the
  // record-fill and byte-fill fractions, 0 when unbudgeted. The admission
  // layer reads this (via Broker::Pressure) to decide what to shed.
  double Pressure() const;

 private:
  std::string name_;
  TopicConfig cfg_;
  // unique_ptr because Partition owns a mutex (non-movable).
  std::vector<std::unique_ptr<Partition>> parts_;
  std::vector<std::unique_ptr<ReplicatedPartition>> repl_;
  std::atomic<std::uint64_t> round_robin_{0};
};

// The broker: a named collection of topics plus produce/fetch endpoints.
// Each partition fronts a replica group (stream/replication.h): produces
// route through the group's leader and commit only once quorum-acked, so
// every fetch below reads the committed prefix. At replication factor 1
// (the default) the group is a zero-overhead passthrough.
class Broker {
 public:
  explicit Broker(Clock& clock) : clock_(clock) {}

  Status CreateTopic(const std::string& name, TopicConfig cfg);
  Status DeleteTopic(const std::string& name);
  bool HasTopic(const std::string& name) const;
  Expected<Topic*> GetTopic(const std::string& name);

  // Appends the record, stamping ingest time from the broker clock.
  // Returns the (partition, offset) it landed at.
  Expected<std::pair<PartitionId, Offset>> Produce(const std::string& topic, Record record);

  // Produce with the partition chosen by the caller (parallel producers
  // assign partitions deterministically on the driver, then fan appends
  // out across workers — see stream/parallel.h). Budget + fault semantics
  // match Produce.
  Expected<Offset> ProduceToPartition(const std::string& topic, PartitionId partition,
                                      Record record);

  // Outcome of one batched produce. `rejected` counts rows the broker
  // refused (budget, injected faults, leaderless group) — the same rows a
  // per-record loop would have seen fail one by one.
  struct BatchProduceResult {
    Offset base_offset = -1;  // offset of the first produced row; -1 if none
    std::size_t produced = 0;
    std::size_t rejected = 0;
    // Of `rejected`, rows refused as kUnavailable — an unreachable leader
    // broker (cluster gate) or a leaderless replica group. These are the
    // retriable rejections a cluster producer reroutes.
    std::size_t unavailable = 0;
  };

  // Columnar produce: append every row of `batch` to one partition,
  // equivalent to looping ProduceToPartition over materialized rows but
  // paying broker bookkeeping once per batch. The bulk path runs only when
  // it is provably equivalent — no fault injector (whose RNG draws are
  // per-record), no traced rows (whose span trees are per-record), and a
  // steady replica group — and otherwise falls back to the per-record loop
  // internally, so the observable outcome is identical either way.
  Expected<BatchProduceResult> ProduceBatch(const std::string& topic,
                                            PartitionId partition,
                                            const RecordBatch& batch);

  // Idempotent produce: like ProduceToPartition, but stamped with the
  // producer's stable id and per-partition sequence number so the replica
  // group can dedup retries after a lost ack (torn append, leader crash).
  // Sequence numbers must be assigned monotonically per (pid, partition) —
  // IdempotentProducer (stream/replication.h) does this for you.
  Expected<Offset> ProduceIdempotent(const std::string& topic, PartitionId partition,
                                     ProducerId pid, std::uint64_t seq, Record record);

  // Broker-unique producer id for idempotent produce (never 0; 0 means
  // anonymous / no dedup).
  ProducerId AllocateProducerId() {
    return next_pid_.fetch_add(1, std::memory_order_relaxed);
  }

  // The replica group fronting a partition — the handle chaos harnesses
  // use to crash and restore specific nodes.
  Expected<ReplicatedPartition*> Replication(const std::string& topic,
                                             PartitionId partition);
  // Convenience: crash the current leader of a partition's replica group.
  Status CrashLeader(const std::string& topic, PartitionId partition,
                     std::size_t restore_after_ops = 0);

  Expected<std::vector<StoredRecord>> Fetch(const std::string& topic, PartitionId partition,
                                            Offset from, std::size_t max_records);

  // Columnar fetch: same rows, faults (one kFetchError draw per call), and
  // OutOfRange contract as Fetch, returned as one zero-copy-viewable
  // RecordBatch stamped with (partition, base_offset).
  Expected<RecordBatch> FetchBatch(const std::string& topic, PartitionId partition,
                                   Offset from, std::size_t max_records);

  // --- historical read path (stream/query.h) ----------------------------
  // Offset-range and event-time queries over the segmented log, served
  // through the broker's block cache. Admitted by the cluster gate like
  // any fetch, but deliberately drawing NO fault-injector randomness:
  // running historical scans never shifts a fault schedule, so scenario
  // digests are unchanged whether or not queries run alongside.
  // Out-of-window bounds clamp to [log_start, end) instead of erroring —
  // a replay asking below the log start gets the surviving suffix.
  Expected<QueryResult> QueryRange(const std::string& topic, PartitionId partition,
                                   Offset lo, Offset hi);
  Expected<QueryResult> QueryTime(const std::string& topic, PartitionId partition,
                                  TimePoint t_lo, TimePoint t_hi);
  // Smallest retained offset with event time >= t, or the log end (what
  // Consumer::SeekToTimestamp repositions with).
  Expected<Offset> OffsetForTimestamp(const std::string& topic, PartitionId partition,
                                      TimePoint t);

  // Replace the query block cache (capacity in blocks; the seed salts the
  // hash layout). The default cache holds 1024 blocks.
  void ConfigureQueryCache(std::size_t capacity_blocks,
                           std::uint64_t seed = 0x5eedb10cULL);
  BlockCache& query_cache() { return *query_cache_; }

  // Advance a partition's log start (consumer-driven queue truncation).
  Expected<std::size_t> TruncateBefore(const std::string& topic, PartitionId partition,
                                       Offset offset);

  // Partition::CompactKeepLatest through the broker, so the depth/byte
  // gauges are refreshed alongside the data they describe (the free
  // CompactTopic in stream/table.h operates on a bare Topic and cannot).
  Expected<std::size_t> Compact(const std::string& topic, PartitionId partition);

  // Runs retention across all topics; returns records dropped. Depth/byte
  // gauges of partitions that shed records are refreshed.
  std::size_t RunRetention();

  std::vector<std::string> TopicNames() const;
  Clock& clock() { return clock_; }

  std::uint64_t total_produced() const {
    return total_produced_.load(std::memory_order_relaxed);
  }
  std::uint64_t backpressure_rejects() const {
    return backpressure_rejects_.load(std::memory_order_relaxed);
  }

  // Remaining record headroom under the topic's budgets (credit-based
  // backpressure): how many records a producer may send before Produce
  // starts rejecting. SIZE_MAX when the topic is unbudgeted; byte budgets
  // are counted conservatively against the topic's mean record size.
  std::size_t Credit(const std::string& topic) const;

  // Topic::Pressure for a named topic; 0 for unknown or unbudgeted topics.
  double Pressure(const std::string& topic) const;

  // Optional observability hook (not owned). When set, the broker exports
  // per-partition depth gauges (qos.depth.<topic>.p<n>), topic byte
  // gauges, ingest-to-fetch lag gauges (qos.lag_ms.<topic>.p<n>), and
  // backpressure counters into the registry. Gauges are last-write-wins
  // under concurrency; scenario digests only fold in counters.
  void set_metrics(MetricRegistry* metrics) { metrics_ = metrics; }
  MetricRegistry* metrics() const { return metrics_; }

  // Optional chaos hook (not owned). When set, produce/fetch consult it:
  // `apperr` rejects the append cleanly, `torn` persists the record but
  // still reports Unavailable (a retrying producer then duplicates it —
  // at-least-once, like a real broker losing the ack), and `fetcherr`
  // fails the fetch without touching the log. The injector's RNG is not
  // thread-safe, so the broker serializes Fire() calls behind a mutex;
  // fault *ordering* is deterministic only for serial producers.
  void set_fault_injector(fault::FaultInjector* injector) { fault_ = injector; }

  // Optional cluster-routing hook (not owned; see ClusterGate above).
  // Installed by cluster::BrokerCluster; consulted before fault draws so
  // it cannot shift injection schedules.
  void set_cluster_gate(ClusterGate* gate) { cluster_gate_ = gate; }
  ClusterGate* cluster_gate() const { return cluster_gate_; }

  // Optional tracing hook (not owned). When set and enabled, ProduceImpl
  // records a "broker.produce" span under each record's trace context and
  // stamps the child context back onto the record before it is appended,
  // so consumers chain downstream spans off the produce. Cost on the
  // modeled-time axis; zero impact on the record's encoded bytes.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

 private:
  Expected<Offset> ProduceImpl(const std::string& topic, Topic* t, PartitionId partition,
                               Record record, ProducerId pid = 0, std::uint64_t seq = 0);

  Clock& clock_;
  mutable std::shared_mutex topics_mu_;
  std::map<std::string, std::unique_ptr<Topic>> topics_;
  std::atomic<std::uint64_t> total_produced_{0};
  std::atomic<std::uint64_t> backpressure_rejects_{0};
  std::atomic<ProducerId> next_pid_{1};
  std::mutex fault_mu_;
  std::unique_ptr<BlockCache> query_cache_ = std::make_unique<BlockCache>(1024);
  fault::FaultInjector* fault_ = nullptr;
  MetricRegistry* metrics_ = nullptr;
  trace::Tracer* tracer_ = nullptr;
  ClusterGate* cluster_gate_ = nullptr;
};

// Thin producer handle: validates topic existence once and adds batching
// counters used by the throughput bench (E12).
class Producer {
 public:
  Producer(Broker& broker, std::string topic)
      : broker_(broker), topic_(std::move(topic)) {}

  Expected<std::pair<PartitionId, Offset>> Send(Record record);
  // Sends until done or the first failure. A kResourceExhausted status is
  // the broker pushing back (topic over budget): already-sent records
  // stand, the remainder should be retried once credit returns.
  Status SendBatch(std::vector<Record> records);

  // Remaining topic credit (see Broker::Credit).
  std::size_t credit() const { return broker_.Credit(topic_); }

  std::uint64_t sent() const { return sent_; }

 private:
  Broker& broker_;
  std::string topic_;
  std::uint64_t sent_ = 0;
};

}  // namespace arbd::stream
