// The unit of data in the streaming backend: a keyed, timestamped, opaque
// payload. Records carry both event time (when the sensor observed it) and
// ingest time (when the broker accepted it); the gap between them is what
// watermarks and the timeliness experiments (E4, E12) reason about.
#pragma once

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/serialize.h"
#include "trace/tracer.h"

namespace arbd::stream {

using PartitionId = std::uint32_t;
using Offset = std::int64_t;

struct Record {
  std::string key;        // partitioning key (e.g. user id, vehicle id)
  Bytes payload;          // opaque serialized value
  TimePoint event_time;   // when the event happened (device clock)
  TimePoint ingest_time;  // when the broker appended it
  std::uint64_t checksum = 0;  // FNV-1a of payload, checked on fetch
  // Causal-tracing header, propagated in memory only — deliberately NOT
  // part of Encode/Decode, so payload bytes, checksums, and byte budgets
  // are identical with tracing on or off.
  trace::SpanContext trace_ctx;

  static Record Make(std::string key, Bytes payload, TimePoint event_time);

  // Convenience for string payloads (tests, examples).
  static Record MakeText(std::string key, const std::string& text, TimePoint event_time);
  std::string TextPayload() const;

  Bytes Encode() const;
  static Expected<Record> Decode(const Bytes& buf);
};

// A record as stored in / fetched from a topic partition: the record plus
// its immutable position.
struct StoredRecord {
  PartitionId partition = 0;
  Offset offset = 0;
  Record record;
};

}  // namespace arbd::stream
