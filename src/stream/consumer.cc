#include "stream/consumer.h"

#include <algorithm>

namespace arbd::stream {

std::vector<StoredRecord> Consumer::Poll(std::size_t max_records, Deadline* deadline) {
  std::vector<StoredRecord> out;
  if (fenced_ || positions_.empty() || max_records == 0) return out;
  // Polling observes the current generation: progress made now is
  // committable until the next rebalance invalidates it.
  observed_generation_ = group_.generation_;

  // Snapshot assigned partitions in a stable order, then start from a
  // rotating cursor for fairness.
  std::vector<PartitionId> parts;
  parts.reserve(positions_.size());
  for (const auto& [p, _] : positions_) parts.push_back(p);

  const bool batched = BatchingEnabled();
  // One fetch attempt, through whichever path the flag selects. Both
  // shapes return the same rows and the same structured OutOfRange, so the
  // auto-reset logic below is shared verbatim.
  auto fetch = [&](PartitionId p, Offset pos,
                   std::size_t want) -> Expected<std::vector<StoredRecord>> {
    if (!batched) return group_.broker_.Fetch(group_.topic_name_, p, pos, want);
    auto batch = group_.broker_.FetchBatch(group_.topic_name_, p, pos, want);
    if (!batch.ok()) return batch.status();
    std::vector<StoredRecord> rows;
    rows.reserve(batch->size());
    for (std::size_t i = 0; i < batch->size(); ++i) rows.push_back(batch->MaterializeStored(i));
    return rows;
  };

  const std::size_t n = parts.size();
  for (std::size_t i = 0; i < n && out.size() < max_records; ++i) {
    // An exhausted budget stops the rotation between partitions — the
    // records already gathered are returned, and the cursor still
    // advances so the next poll resumes fairly.
    if (deadline != nullptr && deadline->expired()) break;
    const PartitionId p = parts[(rr_cursor_ + i) % n];
    Offset& pos = positions_[p];
    if (deadline != nullptr) {
      if (ClusterGate* gate = group_.broker_.cluster_gate(); gate != nullptr) {
        deadline->Charge(gate->OpCost(group_.topic_name_, p));
      }
    }
    auto fetched = fetch(p, pos, max_records - out.size());
    if (!fetched.ok()) {
      const Status st = fetched.status();
      if (st.code() == StatusCode::kOutOfRange && st.has_range()) {
        // Our position fell outside the retained [log_start, end) window
        // (retention or truncation ran past us). Reposition per the
        // group's reset policy using the structured range — no string
        // parsing — and retry immediately so the surviving records are
        // delivered in this same Poll.
        pos = group_.reset_ == ResetPolicy::kEarliest ? st.range_lo() : st.range_hi();
        ++group_.auto_resets_;
        fetched = fetch(p, pos, max_records - out.size());
      }
      if (!fetched.ok()) continue;  // transient (injected fault, unknown topic)
    }
    for (auto& sr : *fetched) {
      sr.partition = p;
      pos = sr.offset + 1;
      out.push_back(std::move(sr));
    }
  }
  rr_cursor_ = (rr_cursor_ + 1) % std::max<std::size_t>(n, 1);
  return out;
}

std::vector<RecordBatch> Consumer::PollBatches(std::size_t max_records) {
  std::vector<RecordBatch> out;
  if (fenced_ || positions_.empty() || max_records == 0) return out;
  observed_generation_ = group_.generation_;

  std::vector<PartitionId> parts;
  parts.reserve(positions_.size());
  for (const auto& [p, _] : positions_) parts.push_back(p);

  const std::size_t n = parts.size();
  std::size_t got = 0;
  for (std::size_t i = 0; i < n && got < max_records; ++i) {
    const PartitionId p = parts[(rr_cursor_ + i) % n];
    Offset& pos = positions_[p];
    auto fetched = group_.broker_.FetchBatch(group_.topic_name_, p, pos, max_records - got);
    if (!fetched.ok()) {
      const Status st = fetched.status();
      if (st.code() == StatusCode::kOutOfRange && st.has_range()) {
        // Same auto-reset contract as Poll (the structured range comes
        // from the identical FetchBatch OutOfRange payload).
        pos = group_.reset_ == ResetPolicy::kEarliest ? st.range_lo() : st.range_hi();
        ++group_.auto_resets_;
        fetched = group_.broker_.FetchBatch(group_.topic_name_, p, pos, max_records - got);
      }
      if (!fetched.ok()) continue;
    }
    if (fetched->empty()) continue;
    pos = fetched->base_offset() + static_cast<Offset>(fetched->size());
    got += fetched->size();
    out.push_back(std::move(*fetched));
  }
  rr_cursor_ = (rr_cursor_ + 1) % std::max<std::size_t>(n, 1);
  return out;
}

Status Consumer::SeekToTimestamp(TimePoint t) {
  if (fenced_) {
    return Status::FailedPrecondition("consumer '" + id_ + "' is fenced (evicted from group '" +
                                      group_.group_id_ + "')");
  }
  // Resolve every partition's offset before touching any position: the
  // seek is atomic. A mid-iteration failure (gate rejection, injected
  // fetch fault, truncated index) used to leave earlier partitions moved
  // and later ones not — a half-applied seek the caller could neither
  // detect nor undo. Either every assigned partition repositions, or none.
  std::map<PartitionId, Offset> resolved;
  for (const auto& [p, pos] : positions_) {
    auto off = group_.broker_.OffsetForTimestamp(group_.topic_name_, p, t);
    if (!off.ok()) return off.status();
    resolved[p] = *off;
  }
  for (auto& [p, pos] : positions_) pos = resolved[p];
  return Status::Ok();
}

Status Consumer::Commit() {
  if (fenced_) {
    ++group_.fenced_commits_;
    return Status::FailedPrecondition("consumer '" + id_ + "' is fenced (evicted from group '" +
                                      group_.group_id_ + "')");
  }
  if (observed_generation_ != group_.generation_) {
    // A rebalance ran between this member's poll and its commit: the
    // polled records may now be owned by someone else, and this member's
    // positions were rewound to the committed offsets. Accepting the
    // commit would advance offsets past records the new owners have not
    // delivered — the silent-loss bug generation fencing exists to stop.
    ++group_.fenced_commits_;
    return Status::FailedPrecondition(
        "consumer '" + id_ + "' commit from stale generation " +
        std::to_string(observed_generation_) + " (group at " +
        std::to_string(group_.generation_) + ")");
  }
  for (const auto& [p, pos] : positions_) {
    group_.committed_[p] = std::max(group_.CommittedOffset(p), pos);
  }
  return Status::Ok();
}

std::vector<PartitionId> Consumer::Assignment() const {
  std::vector<PartitionId> parts;
  parts.reserve(positions_.size());
  for (const auto& [p, _] : positions_) parts.push_back(p);
  return parts;
}

ConsumerGroup::ConsumerGroup(Broker& broker, std::string group_id, std::string topic,
                             ResetPolicy reset)
    : broker_(broker),
      group_id_(std::move(group_id)),
      topic_name_(std::move(topic)),
      reset_(reset) {}

Expected<Consumer*> ConsumerGroup::Join(const std::string& consumer_id) {
  if (members_.contains(consumer_id)) {
    return Status::AlreadyExists("consumer '" + consumer_id + "' already in group '" +
                                 group_id_ + "'");
  }
  auto topic = broker_.GetTopic(topic_name_);
  if (!topic.ok()) return topic.status();
  auto consumer = std::unique_ptr<Consumer>(new Consumer(*this, consumer_id));
  Consumer* raw = consumer.get();
  members_[consumer_id] = std::move(consumer);
  Rebalance();
  return raw;
}

Status ConsumerGroup::Leave(const std::string& consumer_id, bool commit_progress) {
  auto it = members_.find(consumer_id);
  if (it == members_.end()) {
    return Status::NotFound("consumer '" + consumer_id + "' not in group '" + group_id_ + "'");
  }
  // Preserve the departing member's progress before dropping it (unless
  // this models a crash, where in-flight progress is lost). A fenced
  // member has nothing committable by definition.
  if (commit_progress && !it->second->fenced_) it->second->Commit();
  members_.erase(it);
  Rebalance();
  return Status::Ok();
}

Status ConsumerGroup::Evict(const std::string& consumer_id) {
  auto it = members_.find(consumer_id);
  if (it == members_.end()) {
    return Status::NotFound("consumer '" + consumer_id + "' not in group '" + group_id_ + "'");
  }
  if (it->second->fenced_) return Status::Ok();  // already a zombie
  it->second->fenced_ = true;
  it->second->positions_.clear();
  Rebalance();
  return Status::Ok();
}

Status ConsumerGroup::Rejoin(const std::string& consumer_id) {
  auto it = members_.find(consumer_id);
  if (it == members_.end()) {
    return Status::NotFound("consumer '" + consumer_id + "' not in group '" + group_id_ + "'");
  }
  if (!it->second->fenced_) {
    return Status::FailedPrecondition("consumer '" + consumer_id + "' is not fenced");
  }
  it->second->fenced_ = false;
  Rebalance();
  return Status::Ok();
}

Offset ConsumerGroup::CommittedOffset(PartitionId p) const {
  auto it = committed_.find(p);
  if (it != committed_.end()) return it->second;
  return InitialOffset(p);
}

Offset ConsumerGroup::InitialOffset(PartitionId p) const {
  auto topic = const_cast<Broker&>(broker_).GetTopic(topic_name_);
  if (!topic.ok()) return 0;
  const Partition& part = (*topic)->partition(p);
  return reset_ == ResetPolicy::kEarliest ? part.log_start_offset() : part.end_offset();
}

std::int64_t ConsumerGroup::TotalLag() const {
  auto topic = const_cast<Broker&>(broker_).GetTopic(topic_name_);
  if (!topic.ok()) return 0;
  std::int64_t lag = 0;
  for (PartitionId p = 0; p < (*topic)->partition_count(); ++p) {
    lag += (*topic)->partition(p).end_offset() - CommittedOffset(p);
  }
  return lag;
}

void ConsumerGroup::Rebalance() {
  ++rebalances_;
  // Every rebalance opens a new generation: progress polled under the old
  // one is no longer committable (Consumer::Commit checks this).
  ++generation_;
  assignment_.clear();
  for (auto& [_, m] : members_) {
    m->positions_.clear();
    // Reset the poll rotation with the assignment it indexes into: the
    // cursor is a position in the *previous* assignment's partition list,
    // and carrying it across a shrink/grow (member churn, an autoscale
    // split widening the partition set) starts the next poll mid-list —
    // fair rotation then visits the first partitions last, indefinitely,
    // for members whose cursor happened to land past them.
    m->rr_cursor_ = 0;
  }

  // Range assignment over the live (non-fenced) members: partitions dealt
  // to members in sorted order. Fenced zombies keep their handles but get
  // nothing.
  std::vector<Consumer*> ms;
  ms.reserve(members_.size());
  for (auto& [_, m] : members_) {
    if (!m->fenced_) ms.push_back(m.get());
  }
  if (ms.empty()) return;

  auto topic = broker_.GetTopic(topic_name_);
  if (!topic.ok()) return;

  const std::uint32_t nparts = (*topic)->partition_count();
  assigned_partition_count_ = nparts;
  for (PartitionId p = 0; p < nparts; ++p) {
    Consumer* owner = ms[p % ms.size()];
    assignment_[p] = owner->id_;
    owner->positions_[p] = CommittedOffset(p);
  }
  // Deliberately do NOT sync the members' observed generations here: a
  // member only becomes current again at its next Poll. Syncing now would
  // let a commit issued after the rebalance — but covering records polled
  // before it, whose positions this very rebalance just rewound — pass the
  // fence and be counted as delivered, double-delivering those records
  // once the rewound positions are re-polled.
}

bool ConsumerGroup::SyncPartitions() {
  auto topic = broker_.GetTopic(topic_name_);
  if (!topic.ok()) return false;
  if ((*topic)->partition_count() == assigned_partition_count_) return false;
  Rebalance();
  return true;
}

}  // namespace arbd::stream
