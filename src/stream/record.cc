#include "stream/record.h"

namespace arbd::stream {

Record Record::Make(std::string key, Bytes payload, TimePoint event_time) {
  Record r;
  r.key = std::move(key);
  r.checksum = Fnv1a(payload);
  r.payload = std::move(payload);
  r.event_time = event_time;
  return r;
}

Record Record::MakeText(std::string key, const std::string& text, TimePoint event_time) {
  Bytes b(text.begin(), text.end());
  return Make(std::move(key), std::move(b), event_time);
}

std::string Record::TextPayload() const {
  return std::string(payload.begin(), payload.end());
}

Bytes Record::Encode() const {
  BinaryWriter w;
  w.WriteString(key);
  w.WriteBytes(payload);
  w.WriteI64(event_time.nanos());
  w.WriteI64(ingest_time.nanos());
  w.WriteU64(checksum);
  return w.Take();
}

Expected<Record> Record::Decode(const Bytes& buf) {
  BinaryReader r(buf);
  Record rec;
  auto key = r.ReadString();
  if (!key.ok()) return key.status();
  rec.key = std::move(*key);
  auto payload = r.ReadBytes();
  if (!payload.ok()) return payload.status();
  rec.payload = std::move(*payload);
  auto et = r.ReadI64();
  if (!et.ok()) return et.status();
  rec.event_time = TimePoint::FromNanos(*et);
  auto it = r.ReadI64();
  if (!it.ok()) return it.status();
  rec.ingest_time = TimePoint::FromNanos(*it);
  auto cs = r.ReadU64();
  if (!cs.ok()) return cs.status();
  rec.checksum = *cs;
  if (Fnv1a(rec.payload) != rec.checksum) {
    return Status::DataLoss("record checksum mismatch for key '" + rec.key + "'");
  }
  return rec;
}

}  // namespace arbd::stream
