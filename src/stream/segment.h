// Sealed immutable log segments — the storage tier of the segmented
// partition (ISSUE 8). A Partition is an active head RecordBatch plus a
// run of sealed Segments; once a segment is sealed its rows never change,
// which is what makes the historical read path cheap: queries hold the
// partition lock only long enough to snapshot shared_ptrs to the sealed
// run, then scan immutable data lock-free through the block cache
// (stream/query.h) while the tail keeps appending.
//
// Indexes carried by every sealed segment, built once at seal time:
//   - offset index: offsets are dense, so the index is the pair
//     (base_offset, block table) — row = offset - base_offset in O(1),
//     block = row / kSegmentBlockRows. "Sparse" in the Kafka sense: one
//     index entry per block of rows, not one per record.
//   - time index: per block, the min/max *event* time of its rows (event
//     times need not be monotone, so both bounds are kept), plus
//     segment-level min/max for whole-segment pruning. QueryTime and
//     SeekToTimestamp prune segments and blocks against these bounds and
//     only examine rows inside surviving blocks.
//
// Gating: segmentation is enabled by ARBD_SEGMENT_BYTES (the target
// sealed-segment size in key+payload bytes; unset/0 = off). With the flag
// off the partition never seals — a single active batch, byte-identical to
// the pre-segment store — and with it on, the differential suites
// (storage_segment_test, storage_soak_test, bench_storage E25) prove
// every fetch result, fault draw, and scenario/committed digest is
// bit-identical to the flat layout. See docs/storage.md.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "stream/batch.h"
#include "stream/record.h"

namespace arbd::stream {

// ARBD_SEGMENT_BYTES: target sealed-segment size in key+payload bytes.
// Unset/"0"/invalid -> 0 (segmentation off: the flat single-batch store,
// byte-identical to the pre-segment partition). The value is cached on
// first read, same discipline as BatchingEnabled.
std::size_t SegmentBytesTarget();
// Test/bench override (the differential harnesses flip modes in-process).
void SetSegmentBytesTarget(std::size_t bytes);

// Rows per index block. Small enough that a point query touches little
// beyond its answer, large enough that the block table stays ~2% of the
// row count ("sparse").
inline constexpr std::size_t kSegmentBlockRows = 64;

// One sparse-index entry: a block of up to kSegmentBlockRows consecutive
// rows and the event-time bounds of exactly those rows.
struct SegmentBlock {
  std::uint32_t first_row = 0;
  std::uint32_t rows = 0;
  std::int64_t min_event_ns = 0;
  std::int64_t max_event_ns = 0;
};

// An immutable sealed segment: rows [base_offset, base_offset + rows())
// of one partition, plus the indexes above. Thread-safe by immutability —
// every member is const after construction.
class Segment {
 public:
  // Seals `rows` (which must be non-empty) as offsets starting at
  // `base_offset`. `uid` must be process-unique (Partition draws it from
  // NextSegmentUid) — it keys this segment's blocks in the BlockCache.
  Segment(std::uint64_t uid, Offset base_offset, RecordBatch rows);

  std::uint64_t uid() const { return uid_; }
  Offset base_offset() const { return base_; }
  Offset end_offset() const { return base_ + static_cast<Offset>(data_.size()); }
  std::size_t rows() const { return data_.size(); }
  // Key+payload bytes — the unit topic byte budgets meter.
  std::size_t bytes() const { return data_.byte_size(); }
  const RecordBatch& data() const { return data_; }

  TimePoint min_event_time() const { return TimePoint::FromNanos(min_event_ns_); }
  TimePoint max_event_time() const { return TimePoint::FromNanos(max_event_ns_); }
  // Newest ingest timestamp in the segment: when this is older than the
  // retention cutoff, the whole segment is droppable in one step.
  TimePoint max_ingest_time() const { return TimePoint::FromNanos(max_ingest_ns_); }

  const std::vector<SegmentBlock>& blocks() const { return blocks_; }
  std::size_t block_count() const { return blocks_.size(); }
  std::size_t block_of_row(std::size_t row) const { return row / kSegmentBlockRows; }

  // Time-index probe: the first row at/after `from_row` whose event time
  // is >= t, or rows() if none. Prunes whole blocks by max_event before
  // scanning rows inside the first surviving block.
  std::size_t LowerBoundEventRow(TimePoint t, std::size_t from_row = 0) const;

 private:
  std::uint64_t uid_;
  Offset base_;
  RecordBatch data_;
  std::vector<SegmentBlock> blocks_;
  std::int64_t min_event_ns_;
  std::int64_t max_event_ns_;
  std::int64_t max_ingest_ns_;
};

// Process-unique segment id (never 0). Uniqueness across partitions is
// what lets the block cache key on (segment uid, block) alone.
std::uint64_t NextSegmentUid();

// What a query sees of a partition at one instant: shared ownership of
// the sealed run (immutable, scanned lock-free) plus a copy of the live
// active rows in the requested window. `log_start` matters because the
// oldest sealed segment may carry a truncated-away dead prefix — rows
// below log_start exist in the segment but must not be served.
struct PartitionSnapshot {
  std::vector<std::shared_ptr<const Segment>> sealed;
  RecordBatch active;  // base_offset() = absolute offset of its row 0
  Offset log_start = 0;
  Offset end = 0;
};

}  // namespace arbd::stream
