#include "stream/recovery.h"

namespace arbd::stream {

CheckpointedJob::CheckpointedJob(Broker& broker, std::string topic, std::string group_id,
                                 PipelineFactory factory, std::size_t checkpoint_every)
    : broker_(broker),
      topic_(std::move(topic)),
      group_id_(std::move(group_id)),
      factory_(std::move(factory)),
      checkpoint_every_(std::max<std::size_t>(1, checkpoint_every)) {
  group_ = std::make_unique<ConsumerGroup>(broker_, group_id_, topic_);
  auto joined = group_->Join(group_id_ + "-worker");
  ARBD_CHECK(joined.ok(), "recovery job must be able to join its group");
  consumer_ = *joined;
  pipeline_ = factory_();
  ARBD_CHECK(pipeline_ != nullptr, "pipeline factory must produce a pipeline");
}

Expected<std::size_t> CheckpointedJob::Pump(std::size_t max_records) {
  if (crashed()) {
    auto s = Recover();
    if (!s.ok()) return s;
  }
  const auto records = consumer_->Poll(max_records);
  std::size_t pushed = 0;
  for (const auto& sr : records) {
    auto event = Event::Decode(sr.record.payload);
    if (!event.ok()) {
      ++stats_.decode_failures;
      continue;
    }
    ++stats_.records_processed;
    auto& hwm = processed_hwm_[sr.partition];
    if (sr.offset < hwm) {
      ++stats_.records_replayed;
    } else {
      hwm = sr.offset + 1;
    }
    pipeline_->Push(*event);
    ++since_checkpoint_;
    ++pushed;
    if (fault_ != nullptr) {
      const Duration stall = fault_->FireDuration(fault::FaultKind::kStall,
                                                  fault::InjectionPoint::kJobPumpRecord);
      if (stall > Duration::Zero()) {
        stats_.stalled += stall;
        fault_->RecordSurvival(fault::FaultKind::kStall);
      }
      if (fault_->Fire(fault::FaultKind::kCrash, fault::InjectionPoint::kJobPumpRecord)) {
        // Crash at an arbitrary point between pump and checkpoint: the rest
        // of the polled batch and every uncommitted position die with the
        // worker; the next Pump recovers and replays from the snapshot.
        InjectCrash();
        return pushed;
      }
    }
  }
  // Checkpoint only at batch boundaries: the consumer's poll positions
  // cover the whole fetched batch, so committing mid-batch would mark
  // records as done before the pipeline saw them.
  if (since_checkpoint_ >= checkpoint_every_) {
    auto s = Checkpoint();
    if (!s.ok()) {
      // A torn checkpoint write is survivable — the previous snapshot and
      // committed offsets still stand, and the write retries at the next
      // batch boundary. Anything else is a real error.
      if (s.code() != StatusCode::kUnavailable) return s;
      if (fault_ != nullptr) fault_->RecordSurvival(fault::FaultKind::kCheckpointFail);
    }
  }
  return records.size();
}

Status CheckpointedJob::Checkpoint() {
  if (crashed()) return Status::FailedPrecondition("cannot checkpoint while crashed");
  if (fault_ != nullptr &&
      fault_->Fire(fault::FaultKind::kCheckpointFail,
                   fault::InjectionPoint::kJobCheckpoint)) {
    // Torn write, detected by checksum before replacing the old snapshot:
    // state and offsets stay at the previous checkpoint, and
    // since_checkpoint_ keeps growing so the next boundary retries.
    ++stats_.checkpoint_failures;
    return Status::Unavailable("injected torn checkpoint write");
  }
  snapshot_ = pipeline_->Checkpoint();
  has_snapshot_ = true;
  consumer_->Commit();
  since_checkpoint_ = 0;
  ++stats_.checkpoints;
  return Status::Ok();
}

void CheckpointedJob::InjectCrash() {
  pipeline_.reset();
  since_checkpoint_ = 0;
  ++stats_.crashes;
  // The worker's uncommitted positions die with it. The group (broker-side
  // state) survives and keeps only the explicitly committed offsets.
  (void)group_->Leave(group_id_ + "-worker", /*commit_progress=*/false);
}

Status CheckpointedJob::Recover() {
  auto joined = group_->Join(group_id_ + "-worker");
  if (!joined.ok()) return joined.status();
  consumer_ = *joined;

  pipeline_ = factory_();
  if (pipeline_ == nullptr) return Status::FailedPrecondition("factory returned null");
  if (has_snapshot_) {
    if (fault_ != nullptr &&
        fault_->Fire(fault::FaultKind::kSnapshotCorrupt,
                     fault::InjectionPoint::kJobRecover)) {
      // First read of the snapshot decodes garbage; checksummed stable
      // storage lets the re-read heal it. Counted so chaos runs can see
      // the path was exercised.
      ++stats_.snapshot_decode_retries;
      fault_->RecordSurvival(fault::FaultKind::kSnapshotCorrupt);
    }
    auto s = pipeline_->Restore(snapshot_);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

}  // namespace arbd::stream
