#include "stream/recovery.h"

namespace arbd::stream {

CheckpointedJob::CheckpointedJob(Broker& broker, std::string topic, std::string group_id,
                                 PipelineFactory factory, std::size_t checkpoint_every)
    : broker_(broker),
      topic_(std::move(topic)),
      group_id_(std::move(group_id)),
      factory_(std::move(factory)),
      checkpoint_every_(std::max<std::size_t>(1, checkpoint_every)) {
  group_ = std::make_unique<ConsumerGroup>(broker_, group_id_, topic_);
  auto joined = group_->Join(group_id_ + "-worker");
  ARBD_CHECK(joined.ok(), "recovery job must be able to join its group");
  consumer_ = *joined;
  pipeline_ = factory_();
  ARBD_CHECK(pipeline_ != nullptr, "pipeline factory must produce a pipeline");
}

Expected<std::size_t> CheckpointedJob::Pump(std::size_t max_records) {
  if (crashed()) {
    auto s = Recover();
    if (!s.ok()) return s;
  }
  const auto records = consumer_->Poll(max_records);
  std::size_t pushed = 0;
  for (const auto& sr : records) {
    auto event = Event::Decode(sr.record.payload);
    if (!event.ok()) {
      ++stats_.decode_failures;
      continue;
    }
    ++stats_.records_processed;
    auto& hwm = processed_hwm_[sr.partition];
    if (sr.offset < hwm) {
      ++stats_.records_replayed;
    } else {
      hwm = sr.offset + 1;
    }
    pipeline_->Push(*event);
    ++since_checkpoint_;
    ++pushed;
    if (fault_ != nullptr) {
      const Duration stall = fault_->FireDuration(fault::FaultKind::kStall,
                                                  fault::InjectionPoint::kJobPumpRecord);
      if (stall > Duration::Zero()) {
        stats_.stalled += stall;
        fault_->RecordSurvival(fault::FaultKind::kStall);
      }
      if (fault_->Fire(fault::FaultKind::kCrash, fault::InjectionPoint::kJobPumpRecord)) {
        // Crash at an arbitrary point between pump and checkpoint: the rest
        // of the polled batch and every uncommitted position die with the
        // worker; the next Pump recovers and replays from the snapshot.
        InjectCrash();
        return pushed;
      }
    }
  }
  // Checkpoint only at batch boundaries: the consumer's poll positions
  // cover the whole fetched batch, so committing mid-batch would mark
  // records as done before the pipeline saw them.
  if (since_checkpoint_ >= checkpoint_every_) {
    auto s = Checkpoint();
    if (!s.ok()) {
      // A torn checkpoint write is survivable — the previous snapshot and
      // committed offsets still stand, and the write retries at the next
      // batch boundary. Anything else is a real error.
      if (s.code() != StatusCode::kUnavailable) return s;
      if (fault_ != nullptr) fault_->RecordSurvival(fault::FaultKind::kCheckpointFail);
    }
  }
  return records.size();
}

Status CheckpointedJob::Checkpoint() {
  if (crashed()) return Status::FailedPrecondition("cannot checkpoint while crashed");
  if (fault_ != nullptr &&
      fault_->Fire(fault::FaultKind::kCheckpointFail,
                   fault::InjectionPoint::kJobCheckpoint)) {
    // Torn write, detected by checksum before replacing the old snapshot:
    // state and offsets stay at the previous checkpoint, and
    // since_checkpoint_ keeps growing so the next boundary retries.
    ++stats_.checkpoint_failures;
    return Status::Unavailable("injected torn checkpoint write");
  }
  snapshot_ = pipeline_->Checkpoint();
  has_snapshot_ = true;
  consumer_->Commit();
  since_checkpoint_ = 0;
  ++stats_.checkpoints;
  // The checkpoint (snapshot + offsets) is durable: publish the output
  // buffer it covers. Downstream sees each result exactly once — results
  // of uncheckpointed work never get here (a crash discards them along
  // with the uncommitted offsets that would regenerate them).
  if (txn_deliver_ != nullptr && !txn_buffer_.empty()) {
    for (const WindowResult& r : txn_buffer_) txn_deliver_(r);
    stats_.outputs_committed += txn_buffer_.size();
    txn_buffer_.clear();
  }
  return Status::Ok();
}

void CheckpointedJob::SetTransactionalSink(std::function<void(const WindowResult&)> deliver) {
  txn_deliver_ = std::move(deliver);
  AttachTxnSink();
}

void CheckpointedJob::AttachTxnSink() {
  if (txn_deliver_ == nullptr || pipeline_ == nullptr) return;
  pipeline_->Sink([this](const WindowResult& r) { txn_buffer_.push_back(r); });
}

Status CheckpointedJob::Finish() {
  if (crashed()) {
    auto s = Recover();
    if (!s.ok()) return s;
  }
  pipeline_->Flush();
  // A torn checkpoint write keeps the buffer; retry until it lands (the
  // injector fires per opportunity, so a bounded number of retries
  // suffices for any probability < 1).
  for (int attempt = 0; attempt < 64; ++attempt) {
    auto s = Checkpoint();
    if (s.ok()) return s;
    if (s.code() != StatusCode::kUnavailable) return s;
    if (fault_ != nullptr) fault_->RecordSurvival(fault::FaultKind::kCheckpointFail);
  }
  return Status::Unavailable("checkpoint kept tearing; giving up after 64 attempts");
}

void CheckpointedJob::InjectCrash() {
  pipeline_.reset();
  since_checkpoint_ = 0;
  ++stats_.crashes;
  // Uncommitted outputs die with the worker; the replayed inputs will
  // regenerate them from the restored snapshot.
  stats_.outputs_discarded += txn_buffer_.size();
  txn_buffer_.clear();
  // The worker's uncommitted positions die with it. The group (broker-side
  // state) survives and keeps only the explicitly committed offsets.
  (void)group_->Leave(group_id_ + "-worker", /*commit_progress=*/false);
}

Status CheckpointedJob::Recover() {
  auto joined = group_->Join(group_id_ + "-worker");
  if (!joined.ok()) return joined.status();
  consumer_ = *joined;

  pipeline_ = factory_();
  if (pipeline_ == nullptr) return Status::FailedPrecondition("factory returned null");
  AttachTxnSink();
  if (has_snapshot_) {
    if (fault_ != nullptr &&
        fault_->Fire(fault::FaultKind::kSnapshotCorrupt,
                     fault::InjectionPoint::kJobRecover)) {
      // First read of the snapshot decodes garbage; checksummed stable
      // storage lets the re-read heal it. Counted so chaos runs can see
      // the path was exercised.
      ++stats_.snapshot_decode_retries;
      fault_->RecordSurvival(fault::FaultKind::kSnapshotCorrupt);
    }
    auto s = pipeline_->Restore(snapshot_);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

}  // namespace arbd::stream
