#include "stream/segment.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>

namespace arbd::stream {

namespace {

// -1 = uncached; cached so the flag costs one relaxed load on the append
// hot path, same discipline as BatchingEnabled.
std::atomic<long long> g_segment_bytes{-1};

std::size_t ReadSegmentBytesEnv() {
  const char* raw = std::getenv("ARBD_SEGMENT_BYTES");
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  const long long v = std::strtoll(raw, &end, 10);
  if (end == raw || v <= 0) return 0;
  return static_cast<std::size_t>(v);
}

std::atomic<std::uint64_t> g_next_segment_uid{1};

}  // namespace

std::size_t SegmentBytesTarget() {
  long long cached = g_segment_bytes.load(std::memory_order_relaxed);
  if (cached < 0) {
    cached = static_cast<long long>(ReadSegmentBytesEnv());
    g_segment_bytes.store(cached, std::memory_order_relaxed);
  }
  return static_cast<std::size_t>(cached);
}

void SetSegmentBytesTarget(std::size_t bytes) {
  g_segment_bytes.store(static_cast<long long>(bytes), std::memory_order_relaxed);
}

std::uint64_t NextSegmentUid() {
  return g_next_segment_uid.fetch_add(1, std::memory_order_relaxed);
}

Segment::Segment(std::uint64_t uid, Offset base_offset, RecordBatch rows)
    : uid_(uid), base_(base_offset), data_(std::move(rows)) {
  data_.set_base_offset(base_);
  const std::size_t n = data_.size();
  blocks_.reserve((n + kSegmentBlockRows - 1) / kSegmentBlockRows);
  min_event_ns_ = std::numeric_limits<std::int64_t>::max();
  max_event_ns_ = std::numeric_limits<std::int64_t>::min();
  max_ingest_ns_ = std::numeric_limits<std::int64_t>::min();
  const std::int64_t* event_ns = data_.event_ns_data();
  const std::int64_t* ingest_ns = data_.ingest_ns_data();
  for (std::size_t at = 0; at < n; at += kSegmentBlockRows) {
    SegmentBlock blk;
    blk.first_row = static_cast<std::uint32_t>(at);
    blk.rows = static_cast<std::uint32_t>(std::min(kSegmentBlockRows, n - at));
    blk.min_event_ns = std::numeric_limits<std::int64_t>::max();
    blk.max_event_ns = std::numeric_limits<std::int64_t>::min();
    for (std::size_t i = at; i < at + blk.rows; ++i) {
      blk.min_event_ns = std::min(blk.min_event_ns, event_ns[i]);
      blk.max_event_ns = std::max(blk.max_event_ns, event_ns[i]);
      max_ingest_ns_ = std::max(max_ingest_ns_, ingest_ns[i]);
    }
    min_event_ns_ = std::min(min_event_ns_, blk.min_event_ns);
    max_event_ns_ = std::max(max_event_ns_, blk.max_event_ns);
    blocks_.push_back(blk);
  }
}

std::size_t Segment::LowerBoundEventRow(TimePoint t, std::size_t from_row) const {
  const std::int64_t t_ns = t.nanos();
  const std::int64_t* event_ns = data_.event_ns_data();
  for (std::size_t b = from_row / kSegmentBlockRows; b < blocks_.size(); ++b) {
    const SegmentBlock& blk = blocks_[b];
    if (blk.max_event_ns < t_ns) continue;  // no qualifying row in here
    const std::size_t lo = std::max<std::size_t>(blk.first_row, from_row);
    const std::size_t hi = blk.first_row + blk.rows;
    for (std::size_t i = lo; i < hi; ++i) {
      if (event_ns[i] >= t_ns) return i;
    }
  }
  return rows();
}

}  // namespace arbd::stream
