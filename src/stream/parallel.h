// Parallel produce/fetch over the sharded broker.
//
// Parallelism over a topic is by partition: the driver assigns a partition
// to every record *serially* (so key hashing and the empty-key round-robin
// stay deterministic regardless of worker count), buckets records per
// partition, and fans one executor task out per partition. Disjoint
// partitions never contend — each task appends behind its own partition
// mutex — and per-partition results land in slots the driver pre-sized,
// so no cross-task synchronization beyond Executor::Drain is needed.
// The outcome (records placed, offsets, reject counts) is identical for
// every worker count, including workers=1 which degenerates to the serial
// loop.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "exec/executor.h"
#include "stream/log.h"

namespace arbd::stream {

struct ParallelProduceReport {
  std::size_t produced = 0;
  std::size_t rejected = 0;  // budget rejections + injected append faults
  // Of `rejected`, records refused as kUnavailable: an unreachable leader
  // broker (cluster gate) or a leaderless replica group. A cluster-aware
  // driver retries exactly these; the rest are terminal.
  std::size_t unavailable = 0;
  // Per-partition record counts, indexed by partition, for digesting.
  std::vector<std::size_t> per_partition;
};

// Appends `records` to `topic` using one executor task per partition.
// `cost_per_record` is the modeled per-append cost billed to the executing
// worker's virtual clock (Executor::SubmitCost), which is what E20 meters
// scaling with.
ParallelProduceReport ParallelProduce(exec::Executor& exec, Broker& broker,
                                      const std::string& topic,
                                      std::vector<Record> records,
                                      Duration cost_per_record);

// Record→partition assignment hook. Runs serially on the driver in record
// order, so any stateful assigner (round-robin counters, split routers)
// sees the same sequence at every worker count.
using PartitionAssigner = std::function<PartitionId(const Record&)>;

// Same parallel produce, but partitions are chosen by `assign` instead of
// Topic::PartitionFor — the hook a key-range router (partition autoscaling)
// plugs into. An assigner returning an out-of-range partition has that
// record counted rejected.
ParallelProduceReport ParallelProduce(exec::Executor& exec, Broker& broker,
                                      const std::string& topic,
                                      std::vector<Record> records,
                                      Duration cost_per_record,
                                      const PartitionAssigner& assign);

// Fetches every partition's full retained log concurrently (up to
// `max_per_partition` records each). Result is indexed by partition, so
// the merged view is in canonical partition order no matter which worker
// fetched what.
std::vector<std::vector<StoredRecord>> ParallelFetchAll(exec::Executor& exec,
                                                        Broker& broker,
                                                        const std::string& topic,
                                                        std::size_t max_per_partition,
                                                        Duration cost_per_record);

}  // namespace arbd::stream
