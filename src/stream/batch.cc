#include "stream/batch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace arbd::stream {

namespace {

// -1 = uncached, else 0/1. Cached so the flag costs one relaxed load on
// the hot path, same discipline as ExecConfig/TracerConfig env reads.
std::atomic<int> g_batching{-1};

bool ReadBatchEnv() {
  const char* v = std::getenv("ARBD_BATCH");
  if (v == nullptr) return false;
  return !(v[0] == '\0' || (v[0] == '0' && v[1] == '\0'));
}

}  // namespace

bool BatchingEnabled() {
  int cached = g_batching.load(std::memory_order_relaxed);
  if (cached < 0) {
    cached = ReadBatchEnv() ? 1 : 0;
    g_batching.store(cached, std::memory_order_relaxed);
  }
  return cached == 1;
}

void SetBatchingEnabled(bool on) {
  g_batching.store(on ? 1 : 0, std::memory_order_relaxed);
}

void RecordBatch::Reserve(std::size_t rows, std::size_t key_bytes,
                          std::size_t payload_bytes) {
  event_ns_.reserve(event_ns_.size() + rows);
  ingest_ns_.reserve(ingest_ns_.size() + rows);
  checksums_.reserve(checksums_.size() + rows);
  key_offsets_.reserve(key_offsets_.size() + rows);
  payload_offsets_.reserve(payload_offsets_.size() + rows);
  keys_.reserve(keys_.size() + key_bytes);
  payloads_.reserve(payloads_.size() + payload_bytes);
  trace_.reserve(trace_.size() + rows);
}

void RecordBatch::Clear() {
  event_ns_.clear();
  ingest_ns_.clear();
  checksums_.clear();
  key_offsets_.assign(1, 0);
  payload_offsets_.assign(1, 0);
  keys_.clear();
  payloads_.clear();
  trace_.clear();
  has_traced_rows_ = false;
  base_offset_ = 0;
  partition_ = 0;
}

void RecordBatch::Append(const Record& r) {
  AppendRow(r.key, r.payload.data(), r.payload.size(), r.event_time,
            r.ingest_time, r.checksum, r.trace_ctx);
}

void RecordBatch::AppendRow(std::string_view key, const std::uint8_t* payload,
                            std::size_t payload_size, TimePoint event_time,
                            TimePoint ingest_time, std::uint64_t checksum,
                            const trace::SpanContext& ctx) {
  event_ns_.push_back(event_time.nanos());
  ingest_ns_.push_back(ingest_time.nanos());
  checksums_.push_back(checksum);
  keys_.append(key.data(), key.size());
  key_offsets_.push_back(static_cast<std::uint32_t>(keys_.size()));
  if (payload_size > 0) payloads_.insert(payloads_.end(), payload, payload + payload_size);
  payload_offsets_.push_back(static_cast<std::uint32_t>(payloads_.size()));
  trace_.push_back(ctx);
  if (ctx.valid()) has_traced_rows_ = true;
}

void RecordBatch::AppendRange(const RecordBatch& src, std::size_t from, std::size_t n) {
  if (n == 0) return;
  event_ns_.insert(event_ns_.end(), src.event_ns_.begin() + static_cast<std::ptrdiff_t>(from),
                   src.event_ns_.begin() + static_cast<std::ptrdiff_t>(from + n));
  ingest_ns_.insert(ingest_ns_.end(), src.ingest_ns_.begin() + static_cast<std::ptrdiff_t>(from),
                    src.ingest_ns_.begin() + static_cast<std::ptrdiff_t>(from + n));
  checksums_.insert(checksums_.end(), src.checksums_.begin() + static_cast<std::ptrdiff_t>(from),
                    src.checksums_.begin() + static_cast<std::ptrdiff_t>(from + n));

  // Variable-width columns: copy the byte ranges, then rebase the prefix
  // offsets against this batch's running totals.
  const std::uint32_t src_key_lo = src.key_offsets_[from];
  const std::uint32_t src_key_hi = src.key_offsets_[from + n];
  const std::uint32_t key_base = static_cast<std::uint32_t>(keys_.size());
  keys_.append(src.keys_.data() + src_key_lo, src_key_hi - src_key_lo);
  const std::uint32_t src_pay_lo = src.payload_offsets_[from];
  const std::uint32_t src_pay_hi = src.payload_offsets_[from + n];
  const std::uint32_t pay_base = static_cast<std::uint32_t>(payloads_.size());
  payloads_.insert(payloads_.end(), src.payloads_.begin() + src_pay_lo,
                   src.payloads_.begin() + src_pay_hi);
  key_offsets_.reserve(key_offsets_.size() + n);
  payload_offsets_.reserve(payload_offsets_.size() + n);
  for (std::size_t i = 1; i <= n; ++i) {
    key_offsets_.push_back(key_base + (src.key_offsets_[from + i] - src_key_lo));
    payload_offsets_.push_back(pay_base + (src.payload_offsets_[from + i] - src_pay_lo));
  }

  trace_.insert(trace_.end(), src.trace_.begin() + static_cast<std::ptrdiff_t>(from),
                src.trace_.begin() + static_cast<std::ptrdiff_t>(from + n));
  for (std::size_t i = 0; i < n; ++i) {
    if (src.trace_[from + i].valid()) { has_traced_rows_ = true; break; }
  }
}

void RecordBatch::StampIngest(std::size_t first_row, TimePoint ingest) {
  const std::int64_t ns = ingest.nanos();
  for (std::size_t i = first_row; i < ingest_ns_.size(); ++i) ingest_ns_[i] = ns;
}

RecordView RecordBatch::row(std::size_t i) const {
  RecordView v;
  v.key = key(i);
  v.payload = payload_data(i);
  v.payload_size = payload_size(i);
  v.event_time = event_time(i);
  v.ingest_time = ingest_time(i);
  v.checksum = checksums_[i];
  v.offset = base_offset_ + static_cast<Offset>(i);
  return v;
}

void RecordBatch::set_trace_ctx(std::size_t i, const trace::SpanContext& ctx) {
  trace_[i] = ctx;
  if (ctx.valid()) has_traced_rows_ = true;
}

Record RecordBatch::MaterializeRecord(std::size_t i) const {
  Record r;
  r.key = std::string(key(i));
  r.payload.assign(payload_data(i), payload_data(i) + payload_size(i));
  r.event_time = event_time(i);
  r.ingest_time = ingest_time(i);
  r.checksum = checksums_[i];
  r.trace_ctx = trace_[i];
  return r;
}

StoredRecord RecordBatch::MaterializeStored(std::size_t i) const {
  StoredRecord s;
  s.partition = partition_;
  s.offset = base_offset_ + static_cast<Offset>(i);
  s.record = MaterializeRecord(i);
  return s;
}

namespace {
constexpr std::uint32_t kBatchMagic = 0x42425241;  // "ARBB" little-endian
constexpr std::uint8_t kBatchVersion = 1;
}  // namespace

Bytes RecordBatch::Serialize() const {
  // Body first: every column, fixed-width then offsets then flat bytes.
  // One FNV-1a over the whole body replaces per-record checksum checks on
  // the wire (per-row payload checksums still ride in their column).
  BinaryWriter body;
  const std::uint32_t n = static_cast<std::uint32_t>(size());
  body.WriteI64(base_offset_);
  body.WriteU32(partition_);
  for (std::size_t i = 0; i < n; ++i) body.WriteI64(event_ns_[i]);
  for (std::size_t i = 0; i < n; ++i) body.WriteI64(ingest_ns_[i]);
  for (std::size_t i = 0; i < n; ++i) body.WriteU64(checksums_[i]);
  for (std::size_t i = 1; i <= n; ++i) body.WriteU32(key_offsets_[i]);
  for (std::size_t i = 1; i <= n; ++i) body.WriteU32(payload_offsets_[i]);
  body.WriteString(keys_);
  body.WriteBytes(payloads_);

  BinaryWriter w;
  w.WriteU32(kBatchMagic);
  w.WriteU8(kBatchVersion);
  w.WriteU32(n);
  w.WriteU64(Fnv1a(body.bytes()));
  w.WriteBytes(body.bytes());
  return w.Take();
}

Expected<RecordBatch> RecordBatch::Deserialize(const Bytes& buf) {
  BinaryReader r(buf);
  auto magic = r.ReadU32();
  if (!magic.ok()) return magic.status();
  if (*magic != kBatchMagic) return Status::DataLoss("record batch: bad magic");
  auto version = r.ReadU8();
  if (!version.ok()) return version.status();
  if (*version != kBatchVersion) return Status::DataLoss("record batch: unknown version");
  auto rows = r.ReadU32();
  if (!rows.ok()) return rows.status();
  auto body_sum = r.ReadU64();
  if (!body_sum.ok()) return body_sum.status();
  auto body = r.ReadBytes();
  if (!body.ok()) return body.status();
  if (!r.AtEnd()) return Status::DataLoss("record batch: trailing bytes");
  if (Fnv1a(*body) != *body_sum) return Status::DataLoss("record batch: checksum mismatch");

  const std::size_t n = *rows;
  RecordBatch b;
  BinaryReader br(*body);
  auto base = br.ReadI64();
  if (!base.ok()) return base.status();
  b.base_offset_ = *base;
  auto part = br.ReadU32();
  if (!part.ok()) return part.status();
  b.partition_ = *part;

  b.event_ns_.reserve(n);
  b.ingest_ns_.reserve(n);
  b.checksums_.reserve(n);
  b.key_offsets_.reserve(n + 1);
  b.payload_offsets_.reserve(n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    auto v = br.ReadI64();
    if (!v.ok()) return v.status();
    b.event_ns_.push_back(*v);
  }
  for (std::size_t i = 0; i < n; ++i) {
    auto v = br.ReadI64();
    if (!v.ok()) return v.status();
    b.ingest_ns_.push_back(*v);
  }
  for (std::size_t i = 0; i < n; ++i) {
    auto v = br.ReadU64();
    if (!v.ok()) return v.status();
    b.checksums_.push_back(*v);
  }
  for (std::size_t i = 0; i < n; ++i) {
    auto v = br.ReadU32();
    if (!v.ok()) return v.status();
    // Prefix offsets must be monotone: a decreasing offset would make
    // row slices alias backwards into other rows' bytes.
    if (*v < b.key_offsets_.back()) return Status::DataLoss("record batch: key offsets not monotone");
    b.key_offsets_.push_back(*v);
  }
  for (std::size_t i = 0; i < n; ++i) {
    auto v = br.ReadU32();
    if (!v.ok()) return v.status();
    if (*v < b.payload_offsets_.back())
      return Status::DataLoss("record batch: payload offsets not monotone");
    b.payload_offsets_.push_back(*v);
  }
  auto keys = br.ReadString();
  if (!keys.ok()) return keys.status();
  b.keys_ = std::move(*keys);
  auto payloads = br.ReadBytes();
  if (!payloads.ok()) return payloads.status();
  b.payloads_ = std::move(*payloads);
  if (!br.AtEnd()) return Status::DataLoss("record batch: trailing body bytes");
  if (b.key_offsets_.back() != b.keys_.size())
    return Status::DataLoss("record batch: key buffer size mismatch");
  if (b.payload_offsets_.back() != b.payloads_.size())
    return Status::DataLoss("record batch: payload buffer size mismatch");
  b.trace_.assign(n, trace::SpanContext{});
  return b;
}

}  // namespace arbd::stream
