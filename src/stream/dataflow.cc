#include "stream/dataflow.h"

#include <algorithm>
#include <limits>

#include "exec/executor.h"

namespace arbd::stream {

Bytes Event::Encode() const {
  BinaryWriter w;
  w.WriteString(key);
  w.WriteString(attribute);
  w.WriteF64(value);
  w.WriteI64(event_time.nanos());
  return w.Take();
}

Expected<Event> Event::Decode(const Bytes& buf) {
  return Decode(buf.data(), buf.size());
}

Expected<Event> Event::Decode(const std::uint8_t* data, std::size_t size) {
  BinaryReader r(data, size);
  Event e;
  auto key = r.ReadString();
  if (!key.ok()) return key.status();
  e.key = std::move(*key);
  auto attr = r.ReadString();
  if (!attr.ok()) return attr.status();
  e.attribute = std::move(*attr);
  auto v = r.ReadF64();
  if (!v.ok()) return v.status();
  e.value = *v;
  auto t = r.ReadI64();
  if (!t.ok()) return t.status();
  e.event_time = TimePoint::FromNanos(*t);
  return e;
}

WindowSpec WindowSpec::Tumbling(Duration size) {
  WindowSpec s;
  s.kind = Kind::kTumbling;
  s.size = size;
  return s;
}

WindowSpec WindowSpec::Sliding(Duration size, Duration slide) {
  WindowSpec s;
  s.kind = Kind::kSliding;
  s.size = size;
  s.slide = slide;
  return s;
}

WindowSpec WindowSpec::Session(Duration gap) {
  WindowSpec s;
  s.kind = Kind::kSession;
  s.gap = gap;
  return s;
}

void WindowAggregateStage::Accum::Add(double v) {
  if (count == 0) {
    min = v;
    max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  sum += v;
  ++count;
}

double WindowAggregateStage::Accum::Result(AggKind k) const {
  switch (k) {
    case AggKind::kCount: return static_cast<double>(count);
    case AggKind::kSum: return sum;
    case AggKind::kMean: return count ? sum / static_cast<double>(count) : 0.0;
    case AggKind::kMin: return min;
    case AggKind::kMax: return max;
  }
  return 0.0;
}

WindowAggregateStage::WindowAggregateStage(WindowSpec spec, AggKind agg,
                                           Duration allowed_lateness)
    : spec_(spec), agg_(agg), lateness_(allowed_lateness) {
  ARBD_CHECK(spec_.size > Duration::Zero() || spec_.kind == WindowSpec::Kind::kSession,
             "window size must be positive");
}

std::vector<std::pair<TimePoint, TimePoint>> WindowAggregateStage::WindowsFor(
    TimePoint t) const {
  std::vector<std::pair<TimePoint, TimePoint>> out;
  const std::int64_t ns = t.nanos();
  if (spec_.kind == WindowSpec::Kind::kTumbling) {
    const std::int64_t size = spec_.size.nanos();
    const std::int64_t start = (ns / size) * size - (ns < 0 && ns % size != 0 ? size : 0);
    out.emplace_back(TimePoint::FromNanos(start), TimePoint::FromNanos(start + size));
  } else if (spec_.kind == WindowSpec::Kind::kSliding) {
    const std::int64_t size = spec_.size.nanos();
    const std::int64_t slide = spec_.slide.nanos();
    // All windows [s, s+size) with s = k*slide containing t: walk back
    // from the latest window start at or before t.
    std::int64_t last = (ns / slide) * slide;
    if (ns < 0 && ns % slide != 0) last -= slide;
    for (std::int64_t s = last; s > ns - size; s -= slide) {
      out.emplace_back(TimePoint::FromNanos(s), TimePoint::FromNanos(s + size));
    }
  }
  return out;
}

void WindowAggregateStage::AssignSession(const Event& e) {
  const std::int64_t gap = spec_.gap.nanos();
  std::int64_t start = e.event_time.nanos();
  std::int64_t end = start + gap;
  Accum acc;
  acc.Add(e.value);

  // Merge with every existing session window for this (key, attribute)
  // that overlaps the new [start, end) interval.
  for (auto it = windows_.begin(); it != windows_.end();) {
    const WindowKey& wk = it->first;
    if (wk.key == e.key && wk.attribute == e.attribute && wk.start_ns <= end &&
        start <= wk.end_ns) {
      start = std::min(start, wk.start_ns);
      end = std::max(end, wk.end_ns);
      acc.sum += it->second.sum;
      acc.min = acc.count ? std::min(acc.min, it->second.min) : it->second.min;
      acc.max = acc.count ? std::max(acc.max, it->second.max) : it->second.max;
      acc.count += it->second.count;
      it = windows_.erase(it);
    } else {
      ++it;
    }
  }
  windows_[WindowKey{e.key, e.attribute, start, end}] = acc;
}

void WindowAggregateStage::Process(const Event& event, StageContext& ctx) {
  (void)ctx;
  if (last_watermark_ > TimePoint::Min() &&
      event.event_time < last_watermark_ - lateness_) {
    ++late_dropped_;
    return;
  }
  if (spec_.kind == WindowSpec::Kind::kSession) {
    AssignSession(event);
    return;
  }
  if (spec_.kind == WindowSpec::Kind::kTumbling) {
    // Same start arithmetic as WindowsFor's tumbling branch; tumbling
    // events land in exactly one window, so the last accumulator can be
    // revalidated with a key compare instead of a map lookup. The memo is
    // a pure lookup cache: hit or miss, the same Accum sees the same Add
    // in the same order.
    const std::int64_t ns = event.event_time.nanos();
    const std::int64_t size = spec_.size.nanos();
    const std::int64_t start = (ns / size) * size - (ns < 0 && ns % size != 0 ? size : 0);
    if (memo_.slot != nullptr && memo_.start_ns == start && memo_.key == event.key &&
        memo_.attribute == event.attribute) {
      memo_.slot->Add(event.value);
      return;
    }
    Accum& acc = windows_[WindowKey{event.key, event.attribute, start, start + size}];
    acc.Add(event.value);
    memo_.slot = &acc;
    memo_.key = event.key;
    memo_.attribute = event.attribute;
    memo_.start_ns = start;
    return;
  }
  for (const auto& [ws, we] : WindowsFor(event.event_time)) {
    windows_[WindowKey{event.key, event.attribute, ws.nanos(), we.nanos()}].Add(event.value);
  }
}

void WindowAggregateStage::OnWatermark(TimePoint wm, StageContext& ctx) {
  // Firing erases map entries; the memo may point at one of them.
  memo_.slot = nullptr;
  last_watermark_ = std::max(last_watermark_, wm);
  for (auto it = windows_.begin(); it != windows_.end();) {
    const WindowKey& wk = it->first;
    // Session windows end `gap` after the last event; the stored end is the
    // fire time in both cases.
    if (TimePoint::FromNanos(wk.end_ns) + lateness_ <= wm) {
      WindowResult r;
      r.key = wk.key;
      r.attribute = wk.attribute;
      r.window_start = TimePoint::FromNanos(wk.start_ns);
      r.window_end = TimePoint::FromNanos(wk.end_ns);
      r.value = it->second.Result(agg_);
      r.count = it->second.count;
      it = windows_.erase(it);
      ctx.EmitResult(std::move(r));
    } else {
      ++it;
    }
  }
}

void WindowAggregateStage::SaveState(BinaryWriter& w) const {
  w.WriteU64(late_dropped_);
  w.WriteI64(last_watermark_.nanos());
  w.WriteU64(windows_.size());
  for (const auto& [wk, acc] : windows_) {
    w.WriteString(wk.key);
    w.WriteString(wk.attribute);
    w.WriteI64(wk.start_ns);
    w.WriteI64(wk.end_ns);
    w.WriteF64(acc.sum);
    w.WriteF64(acc.min);
    w.WriteF64(acc.max);
    w.WriteU64(acc.count);
  }
}

Status WindowAggregateStage::LoadState(BinaryReader& r) {
  memo_.slot = nullptr;
  windows_.clear();
  auto late = r.ReadU64();
  if (!late.ok()) return late.status();
  late_dropped_ = *late;
  auto wm = r.ReadI64();
  if (!wm.ok()) return wm.status();
  last_watermark_ = TimePoint::FromNanos(*wm);
  auto n = r.ReadU64();
  if (!n.ok()) return n.status();
  for (std::uint64_t i = 0; i < *n; ++i) {
    WindowKey wk{};
    Accum acc;
    auto key = r.ReadString();
    if (!key.ok()) return key.status();
    wk.key = std::move(*key);
    auto attr = r.ReadString();
    if (!attr.ok()) return attr.status();
    wk.attribute = std::move(*attr);
    auto s = r.ReadI64();
    if (!s.ok()) return s.status();
    wk.start_ns = *s;
    auto e = r.ReadI64();
    if (!e.ok()) return e.status();
    wk.end_ns = *e;
    auto sum = r.ReadF64();
    if (!sum.ok()) return sum.status();
    acc.sum = *sum;
    auto mn = r.ReadF64();
    if (!mn.ok()) return mn.status();
    acc.min = *mn;
    auto mx = r.ReadF64();
    if (!mx.ok()) return mx.status();
    acc.max = *mx;
    auto c = r.ReadU64();
    if (!c.ok()) return c.status();
    acc.count = *c;
    windows_[std::move(wk)] = acc;
  }
  return Status::Ok();
}

// Stateless function stages (map / filter / keyBy).
struct Pipeline::FnStage final : Stage {
  enum class Kind { kMap, kFilter } kind;
  std::function<Event(const Event&)> map;
  std::function<bool(const Event&)> filter;

  void Process(const Event& event, StageContext& ctx) override {
    if (kind == Kind::kMap) {
      ctx.Emit(map(event));
    } else if (filter(event)) {
      ctx.Emit(event);
    }
  }
};

Pipeline::Pipeline(Duration max_out_of_orderness) : max_ooo_(max_out_of_orderness) {}

Pipeline& Pipeline::Map(std::function<Event(const Event&)> fn) {
  auto s = std::make_unique<FnStage>();
  s->kind = FnStage::Kind::kMap;
  s->map = std::move(fn);
  stage_span_names_.push_back("pipeline.s" + std::to_string(stages_.size()) + ".map");
  stages_.push_back(std::move(s));
  return *this;
}

Pipeline& Pipeline::Filter(std::function<bool(const Event&)> pred) {
  auto s = std::make_unique<FnStage>();
  s->kind = FnStage::Kind::kFilter;
  s->filter = std::move(pred);
  stage_span_names_.push_back("pipeline.s" + std::to_string(stages_.size()) + ".filter");
  stages_.push_back(std::move(s));
  return *this;
}

Pipeline& Pipeline::KeyBy(std::function<std::string(const Event&)> key_fn) {
  return Map([key_fn = std::move(key_fn)](const Event& e) {
    Event out = e;
    out.key = key_fn(e);
    return out;
  });
}

Pipeline& Pipeline::WindowAggregate(WindowSpec spec, AggKind agg, Duration allowed_lateness) {
  auto s = std::make_unique<WindowAggregateStage>(spec, agg, allowed_lateness);
  window_stages_.push_back(s.get());
  stage_span_names_.push_back("pipeline.s" + std::to_string(stages_.size()) + ".window");
  stages_.push_back(std::move(s));
  return *this;
}

Pipeline& Pipeline::Sink(std::function<void(const WindowResult&)> sink) {
  sinks_.push_back(std::move(sink));
  return *this;
}

Pipeline& Pipeline::EventSink(std::function<void(const Event&)> sink) {
  event_sinks_.push_back(std::move(sink));
  return *this;
}

void Pipeline::Push(const Event& event) {
  // With a bounded inbox in play, a direct Push while earlier events are
  // still queued must not jump the line: that would reorder this event
  // ahead of Offer()ed ones and corrupt event-time bookkeeping for
  // sessions/lateness. Enqueue behind them; DrainPending preserves
  // arrival order. Unbudgeted pipelines keep the inline fast path.
  if (input_budget_ != 0 && !pending_.empty()) {
    pending_.push_back(event);
    return;
  }
  PushNow(event);
}

void Pipeline::PushNow(const Event& event) {
  ++events_in_;
  max_event_time_ = std::max(max_event_time_, event.event_time);
  RunFrom(0, event);
  const TimePoint wm = max_event_time_ - max_ooo_;
  if (wm > watermark_) PropagateWatermark(wm);
}

void Pipeline::Flush() {
  DrainPending(static_cast<std::size_t>(-1));
  PropagateWatermark(TimePoint::Max());
}

Status Pipeline::Offer(Event event) {
  if (input_budget_ == 0) {
    Push(event);
    return Status::Ok();
  }
  if (pending_.size() >= input_budget_) {
    return Status::ResourceExhausted("pipeline inbox full (" +
                                     std::to_string(input_budget_) + " events)");
  }
  pending_.push_back(std::move(event));
  return Status::Ok();
}

std::size_t Pipeline::DrainPending(std::size_t max_events) {
  std::size_t processed = 0;
  while (processed < max_events && !pending_.empty()) {
    Event e = std::move(pending_.front());
    pending_.pop_front();
    PushNow(e);
    ++processed;
  }
  return processed;
}

// Modeled per-stage cost on the causal-trace time axis.
constexpr Duration kStageCost = Duration::Micros(2);

trace::SpanContext Pipeline::TraceStage(std::size_t index, const Event& event) const {
  // Salted by key hash + event time: within one trace, events sharing a
  // parent context stay distinguishable through the same stage.
  return tracer_->Record(stage_span_names_[index], event.trace_ctx, kStageCost, {},
                         Fnv1a(event.key) ^ static_cast<std::uint64_t>(event.event_time.nanos()));
}

void Pipeline::RunFrom(std::size_t index, const Event& event) {
  if (index >= stages_.size()) {
    for (const auto& sink : event_sinks_) sink(event);
    return;
  }
  const std::size_t saved = cursor_;
  cursor_ = index;
  if (tracer_ != nullptr && tracer_->enabled() && event.trace_ctx.valid()) {
    Event traced = event;
    traced.trace_ctx = TraceStage(index, event);
    stages_[index]->Process(traced, *this);
  } else {
    stages_[index]->Process(event, *this);
  }
  cursor_ = saved;
}

void Pipeline::Emit(Event event) { RunFrom(cursor_ + 1, event); }

void Pipeline::EmitResult(WindowResult result) {
  ++results_out_;
  for (const auto& sink : sinks_) sink(result);
  // Continue downstream so window outputs can be further processed.
  if (cursor_ + 1 < stages_.size() || !event_sinks_.empty()) {
    Event e;
    e.key = result.key;
    e.attribute = result.attribute;
    e.value = result.value;
    e.event_time = result.window_end;
    RunFrom(cursor_ + 1, e);
  }
}

// One element of the in-band batch stream. Watermark markers travel with
// the data so every stage observes events and watermark advances in
// exactly the interleave the synchronous pump produced; results pass
// through untouched (they are delivered — and counted — at the terminal
// task so sink order and results_out_ match the serial path).
struct Pipeline::ParItem {
  enum class Kind { kEvent, kResult, kWatermark };
  Kind kind;
  Event event;
  WindowResult result;
  TimePoint wm;

  static ParItem OfEvent(Event e) {
    ParItem it;
    it.kind = Kind::kEvent;
    it.event = std::move(e);
    return it;
  }
  static ParItem OfResult(WindowResult r) {
    ParItem it;
    it.kind = Kind::kResult;
    it.result = std::move(r);
    return it;
  }
  static ParItem OfWatermark(TimePoint wm) {
    ParItem it;
    it.kind = Kind::kWatermark;
    it.wm = wm;
    return it;
  }
};

// Collecting context for one stage task: Emit/EmitResult append to the
// next stage's item list instead of recursing downstream.
class Pipeline::BatchCtx final : public StageContext {
 public:
  BatchCtx(std::size_t stage, std::size_t total_stages, bool has_event_sinks,
           std::vector<ParItem>* out)
      : stage_(stage), total_stages_(total_stages),
        has_event_sinks_(has_event_sinks), out_(out) {}

  void Emit(Event event) override { out_->push_back(ParItem::OfEvent(std::move(event))); }

  void EmitResult(WindowResult result) override {
    // Mirror the synchronous EmitResult: the result reaches the sinks
    // first (in-band, ahead of anything the derived event produces), then
    // the result continues downstream as an event if anything consumes it.
    const bool forward = stage_ + 1 < total_stages_ || has_event_sinks_;
    Event derived;
    if (forward) {
      derived.key = result.key;
      derived.attribute = result.attribute;
      derived.value = result.value;
      derived.event_time = result.window_end;
    }
    out_->push_back(ParItem::OfResult(std::move(result)));
    if (forward) out_->push_back(ParItem::OfEvent(std::move(derived)));
  }

 private:
  std::size_t stage_;
  std::size_t total_stages_;
  bool has_event_sinks_;
  std::vector<ParItem>* out_;
};

std::vector<Pipeline::ParItem> Pipeline::PlanBatch(const std::vector<Event>& batch) {
  // Source bookkeeping runs on the driver, event-for-event as Push would:
  // watermark positions are fixed here, so the item sequence every stage
  // receives is independent of scheduling.
  std::vector<ParItem> items;
  items.reserve(batch.size() * 2);
  for (const Event& e : batch) {
    ++events_in_;
    max_event_time_ = std::max(max_event_time_, e.event_time);
    items.push_back(ParItem::OfEvent(e));
    const TimePoint wm = max_event_time_ - max_ooo_;
    if (wm > watermark_) {
      watermark_ = wm;
      items.push_back(ParItem::OfWatermark(wm));
    }
  }
  return items;
}

void Pipeline::RunStageOnItems(std::size_t stage, std::vector<ParItem>& items,
                               std::vector<ParItem>& next) {
  BatchCtx ctx(stage, stages_.size(), !event_sinks_.empty(), &next);
  for (ParItem& it : items) {
    switch (it.kind) {
      case ParItem::Kind::kEvent:
        // Same traced-context handoff as RunFrom: chain the child
        // context into the event the stage sees, so serial and batch
        // executions record identical span trees.
        if (tracer_ != nullptr && tracer_->enabled() && it.event.trace_ctx.valid()) {
          it.event.trace_ctx = TraceStage(stage, it.event);
        }
        stages_[stage]->Process(it.event, ctx);
        break;
      case ParItem::Kind::kResult:
        next.push_back(std::move(it));
        break;
      case ParItem::Kind::kWatermark:
        stages_[stage]->OnWatermark(it.wm, ctx);
        next.push_back(std::move(it));
        break;
    }
  }
}

void Pipeline::DeliverTerminal(const std::vector<ParItem>& items) {
  // Terminal delivery: results and surviving events reach sinks in order.
  for (const ParItem& it : items) {
    switch (it.kind) {
      case ParItem::Kind::kEvent:
        for (const auto& sink : event_sinks_) sink(it.event);
        break;
      case ParItem::Kind::kResult:
        ++results_out_;
        for (const auto& sink : sinks_) sink(it.result);
        break;
      case ParItem::Kind::kWatermark:
        break;
    }
  }
}

void Pipeline::ProcessBatchParallel(exec::Executor& exec,
                                    const std::vector<Event>& batch,
                                    std::uint64_t shard_base) {
  auto items = std::make_shared<std::vector<ParItem>>(PlanBatch(batch));
  if (items->empty()) return;
  SubmitStage(exec, 0, shard_base, std::move(items));
}

void Pipeline::PushBatch(const std::vector<Event>& batch) {
  std::vector<ParItem> items = PlanBatch(batch);
  for (std::size_t stage = 0; stage < stages_.size() && !items.empty(); ++stage) {
    std::vector<ParItem> next;
    next.reserve(items.size());
    RunStageOnItems(stage, items, next);
    items = std::move(next);
  }
  if (!items.empty()) DeliverTerminal(items);
}

void Pipeline::SubmitStage(exec::Executor& exec, std::size_t stage,
                           std::uint64_t shard_base,
                           std::shared_ptr<std::vector<ParItem>> items) {
  exec.Submit(shard_base + stage, [this, &exec, stage, shard_base,
                                   items = std::move(items)] {
    if (stage >= stages_.size()) {
      DeliverTerminal(*items);
      return;
    }
    auto out = std::make_shared<std::vector<ParItem>>();
    out->reserve(items->size());
    RunStageOnItems(stage, *items, *out);
    if (!out->empty()) SubmitStage(exec, stage + 1, shard_base, std::move(out));
  });
}

void Pipeline::PropagateWatermark(TimePoint wm) {
  watermark_ = std::max(watermark_, wm);
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const std::size_t saved = cursor_;
    cursor_ = i;
    stages_[i]->OnWatermark(wm, *this);
    cursor_ = saved;
  }
}

Bytes Pipeline::Checkpoint() const {
  BinaryWriter w;
  w.WriteI64(max_event_time_.nanos());
  w.WriteI64(watermark_.nanos());
  w.WriteU64(events_in_);
  w.WriteU64(results_out_);
  w.WriteU64(stages_.size());
  for (const auto& s : stages_) {
    BinaryWriter sw;
    s->SaveState(sw);
    w.WriteBytes(sw.bytes());
  }
  return w.Take();
}

Status Pipeline::Restore(const Bytes& snapshot) {
  BinaryReader r(snapshot);
  auto met = r.ReadI64();
  if (!met.ok()) return met.status();
  auto wm = r.ReadI64();
  if (!wm.ok()) return wm.status();
  auto ein = r.ReadU64();
  if (!ein.ok()) return ein.status();
  auto rout = r.ReadU64();
  if (!rout.ok()) return rout.status();
  auto n = r.ReadU64();
  if (!n.ok()) return n.status();
  if (*n != stages_.size()) {
    return Status::FailedPrecondition(
        "checkpoint stage count mismatch: snapshot has " + std::to_string(*n) +
        ", pipeline has " + std::to_string(stages_.size()));
  }
  for (auto& s : stages_) {
    auto bytes = r.ReadBytes();
    if (!bytes.ok()) return bytes.status();
    BinaryReader sr(*bytes);
    auto st = s->LoadState(sr);
    if (!st.ok()) return st;
  }
  max_event_time_ = TimePoint::FromNanos(*met);
  watermark_ = TimePoint::FromNanos(*wm);
  events_in_ = *ein;
  results_out_ = *rout;
  return Status::Ok();
}

std::uint64_t Pipeline::late_dropped() const {
  std::uint64_t n = 0;
  for (const auto* ws : window_stages_) n += ws->late_dropped();
  return n;
}

}  // namespace arbd::stream
