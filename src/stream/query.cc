#include "stream/query.h"

#include <algorithm>
#include <limits>

#include "stream/log.h"

namespace arbd::stream {

void QueryStats::Merge(const QueryStats& o) {
  segments_considered += o.segments_considered;
  segments_pruned += o.segments_pruned;
  blocks_pruned += o.blocks_pruned;
  blocks_scanned += o.blocks_scanned;
  rows_examined += o.rows_examined;
  rows_returned += o.rows_returned;
  cache_hits += o.cache_hits;
  cache_misses += o.cache_misses;
}

std::size_t BlockCache::Hash::operator()(const BlockKey& k) const {
  // splitmix64 over (uid, block) salted by the cache seed: the salt moves
  // bucket layout between instances without ever touching LRU order.
  std::uint64_t x = k.segment_uid ^ (static_cast<std::uint64_t>(k.block) << 32) ^ seed;
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<std::size_t>(x ^ (x >> 31));
}

BlockCache::BlockCache(std::size_t capacity_blocks, std::uint64_t seed)
    : capacity_(std::max<std::size_t>(1, capacity_blocks)),
      index_(16, Hash{seed}) {}

std::shared_ptr<const CachedBlock> BlockCache::Get(const BlockKey& key) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->block;
}

std::shared_ptr<const CachedBlock> BlockCache::Put(const BlockKey& key, CachedBlock block) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Raced with another loader of the same block; keep the resident copy
    // (identical by immutability) and just refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->block;
  }
  lru_.push_front(Entry{key, std::make_shared<const CachedBlock>(std::move(block))});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
  return lru_.front().block;
}

std::size_t BlockCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return lru_.size();
}

std::uint64_t BlockCache::hits() const {
  std::lock_guard<std::mutex> lk(mu_);
  return hits_;
}

std::uint64_t BlockCache::misses() const {
  std::lock_guard<std::mutex> lk(mu_);
  return misses_;
}

std::uint64_t BlockCache::evictions() const {
  std::lock_guard<std::mutex> lk(mu_);
  return evictions_;
}

double BlockCache::hit_rate() const {
  std::lock_guard<std::mutex> lk(mu_);
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
}

void BlockCache::Clear() {
  std::lock_guard<std::mutex> lk(mu_);
  lru_.clear();
  index_.clear();
}

namespace {

// Materialize one sealed block through the cache (or directly when
// uncached). The block is built whole — every row, not just the query's
// sub-range — so a later query for a different slice of the same block
// hits instead of re-materializing.
std::shared_ptr<const CachedBlock> LoadBlock(const Segment& seg, std::size_t b,
                                             BlockCache* cache, QueryStats& stats) {
  const SegmentBlock& blk = seg.blocks()[b];
  const BlockKey key{seg.uid(), static_cast<std::uint32_t>(b)};
  if (cache != nullptr) {
    if (auto hit = cache->Get(key)) {
      ++stats.cache_hits;
      return hit;
    }
    ++stats.cache_misses;
  }
  CachedBlock rows;
  rows.reserve(blk.rows);
  for (std::size_t i = blk.first_row; i < blk.first_row + blk.rows; ++i) {
    rows.push_back(seg.data().MaterializeStored(i));
  }
  if (cache != nullptr) return cache->Put(key, std::move(rows));
  return std::make_shared<const CachedBlock>(std::move(rows));
}

void AppendActiveRows(const PartitionSnapshot& snap, QueryResult& out) {
  for (std::size_t i = 0; i < snap.active.size(); ++i) {
    ++out.stats.rows_examined;
    out.rows.push_back(snap.active.MaterializeStored(i));
    ++out.stats.rows_returned;
  }
}

}  // namespace

QueryResult QueryRange(const Partition& partition, Offset lo, Offset hi,
                       BlockCache* cache) {
  // Snapshot already clamps to [log_start, end) and keeps only overlapping
  // sealed segments plus a copy of the overlapping live active rows.
  PartitionSnapshot snap = partition.Snapshot(lo, hi);
  lo = std::max(lo, snap.log_start);
  hi = std::min(hi, snap.end);
  QueryResult out;
  if (lo >= hi) return out;
  for (const auto& seg : snap.sealed) {
    ++out.stats.segments_considered;
    // Dense offsets: the offset index is (base, block table) — the row
    // range is arithmetic, no search.
    const std::size_t r0 =
        lo > seg->base_offset() ? static_cast<std::size_t>(lo - seg->base_offset()) : 0;
    const std::size_t r1 = std::min<std::size_t>(
        seg->rows(), static_cast<std::size_t>(hi - seg->base_offset()));
    if (r0 >= r1) {
      ++out.stats.segments_pruned;
      continue;
    }
    out.stats.blocks_pruned += seg->block_of_row(r0);
    for (std::size_t b = seg->block_of_row(r0); b <= seg->block_of_row(r1 - 1); ++b) {
      auto block = LoadBlock(*seg, b, cache, out.stats);
      ++out.stats.blocks_scanned;
      for (const StoredRecord& sr : *block) {
        if (sr.offset < lo) continue;
        if (sr.offset >= hi) break;
        ++out.stats.rows_examined;
        out.rows.push_back(sr);
        ++out.stats.rows_returned;
      }
    }
    out.stats.blocks_pruned += seg->block_count() - 1 - seg->block_of_row(r1 - 1);
  }
  AppendActiveRows(snap, out);
  return out;
}

QueryResult QueryTime(const Partition& partition, TimePoint t_lo, TimePoint t_hi,
                      BlockCache* cache) {
  QueryResult out;
  if (t_lo >= t_hi) return out;
  // Time gives no offset bounds up front, so snapshot the whole log and
  // prune with the time indexes instead.
  PartitionSnapshot snap =
      partition.Snapshot(0, std::numeric_limits<Offset>::max());
  const std::int64_t lo_ns = t_lo.nanos();
  const std::int64_t hi_ns = t_hi.nanos();
  for (const auto& seg : snap.sealed) {
    ++out.stats.segments_considered;
    if (seg->max_event_time().nanos() < lo_ns || seg->min_event_time().nanos() >= hi_ns) {
      ++out.stats.segments_pruned;
      continue;
    }
    for (std::size_t b = 0; b < seg->block_count(); ++b) {
      const SegmentBlock& blk = seg->blocks()[b];
      if (blk.max_event_ns < lo_ns || blk.min_event_ns >= hi_ns) {
        ++out.stats.blocks_pruned;
        continue;
      }
      auto block = LoadBlock(*seg, b, cache, out.stats);
      ++out.stats.blocks_scanned;
      for (const StoredRecord& sr : *block) {
        ++out.stats.rows_examined;
        if (sr.offset < snap.log_start) continue;  // truncated-away prefix
        const std::int64_t ev = sr.record.event_time.nanos();
        if (ev < lo_ns || ev >= hi_ns) continue;
        out.rows.push_back(sr);
        ++out.stats.rows_returned;
      }
    }
  }
  for (std::size_t i = 0; i < snap.active.size(); ++i) {
    ++out.stats.rows_examined;
    const std::int64_t ev = snap.active.event_time(i).nanos();
    if (ev < lo_ns || ev >= hi_ns) continue;
    out.rows.push_back(snap.active.MaterializeStored(i));
    ++out.stats.rows_returned;
  }
  return out;
}

Offset OffsetForTimestamp(const Partition& partition, TimePoint t) {
  PartitionSnapshot snap =
      partition.Snapshot(0, std::numeric_limits<Offset>::max());
  for (const auto& seg : snap.sealed) {
    if (seg->max_event_time() < t) continue;  // whole-segment time prune
    const std::size_t from_row =
        snap.log_start > seg->base_offset()
            ? static_cast<std::size_t>(snap.log_start - seg->base_offset())
            : 0;
    const std::size_t row = seg->LowerBoundEventRow(t, from_row);
    if (row < seg->rows()) return seg->base_offset() + static_cast<Offset>(row);
  }
  for (std::size_t i = 0; i < snap.active.size(); ++i) {
    if (snap.active.event_time(i) >= t) {
      return snap.active.base_offset() + static_cast<Offset>(i);
    }
  }
  return snap.end;
}

}  // namespace arbd::stream
