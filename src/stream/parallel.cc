#include "stream/parallel.h"

#include <utility>

namespace arbd::stream {

ParallelProduceReport ParallelProduce(exec::Executor& exec, Broker& broker,
                                      const std::string& topic,
                                      std::vector<Record> records,
                                      Duration cost_per_record) {
  ParallelProduceReport report;
  auto t = broker.GetTopic(topic);
  if (!t.ok()) {
    report.rejected = records.size();
    return report;
  }
  const std::size_t nparts = (*t)->partition_count();

  // Partition assignment happens here, on the driver, in record order:
  // this is the only place the round-robin counter or hash is consulted,
  // so the record→partition mapping is independent of worker count.
  std::vector<std::vector<Record>> buckets(nparts);
  for (auto& r : records) {
    const PartitionId p = (*t)->PartitionFor(r.key);
    buckets[p].push_back(std::move(r));
  }

  std::vector<std::size_t> produced(nparts, 0);
  std::vector<std::size_t> rejected(nparts, 0);
  for (std::size_t p = 0; p < nparts; ++p) {
    if (buckets[p].empty()) continue;
    const Duration cost = cost_per_record * static_cast<double>(buckets[p].size());
    exec.SubmitCost(p, cost, [&broker, &topic, &buckets, &produced, &rejected, p] {
      for (auto& r : buckets[p]) {
        auto off = broker.ProduceToPartition(topic, static_cast<PartitionId>(p),
                                             std::move(r));
        if (off.ok()) {
          ++produced[p];
        } else {
          ++rejected[p];
        }
      }
    });
  }
  exec.Drain();

  report.per_partition.resize(nparts);
  for (std::size_t p = 0; p < nparts; ++p) {
    report.per_partition[p] = produced[p];
    report.produced += produced[p];
    report.rejected += rejected[p];
  }
  return report;
}

std::vector<std::vector<StoredRecord>> ParallelFetchAll(exec::Executor& exec,
                                                        Broker& broker,
                                                        const std::string& topic,
                                                        std::size_t max_per_partition,
                                                        Duration cost_per_record) {
  auto t = broker.GetTopic(topic);
  if (!t.ok()) return {};
  const std::size_t nparts = (*t)->partition_count();
  std::vector<std::vector<StoredRecord>> out(nparts);
  for (std::size_t p = 0; p < nparts; ++p) {
    exec.Submit(p, [&broker, &exec, &topic, &out, max_per_partition, cost_per_record,
                    p, t = *t] {
      const Offset from = t->partition(static_cast<PartitionId>(p)).log_start_offset();
      auto fetched = broker.Fetch(topic, static_cast<PartitionId>(p), from,
                                  max_per_partition);
      if (fetched.ok()) out[p] = std::move(*fetched);
      exec.AddVirtualCost(cost_per_record * static_cast<double>(out[p].size()));
    });
  }
  exec.Drain();
  return out;
}

}  // namespace arbd::stream
