#include "stream/parallel.h"

#include <utility>

#include "exec/cost.h"
#include "stream/batch.h"

namespace arbd::stream {

ParallelProduceReport ParallelProduce(exec::Executor& exec, Broker& broker,
                                      const std::string& topic,
                                      std::vector<Record> records,
                                      Duration cost_per_record) {
  auto t = broker.GetTopic(topic);
  if (!t.ok()) {
    ParallelProduceReport report;
    report.rejected = records.size();
    return report;
  }
  Topic* topic_ptr = *t;
  return ParallelProduce(exec, broker, topic, std::move(records), cost_per_record,
                         [topic_ptr](const Record& r) {
                           return topic_ptr->PartitionFor(r.key);
                         });
}

ParallelProduceReport ParallelProduce(exec::Executor& exec, Broker& broker,
                                      const std::string& topic,
                                      std::vector<Record> records,
                                      Duration cost_per_record,
                                      const PartitionAssigner& assign) {
  ParallelProduceReport report;
  auto t = broker.GetTopic(topic);
  if (!t.ok()) {
    report.rejected = records.size();
    return report;
  }
  const std::size_t nparts = (*t)->partition_count();
  const bool batched = BatchingEnabled();

  // Partition assignment happens here, on the driver, in record order:
  // this is the only place the round-robin counter, hash, or router is
  // consulted, so the record→partition mapping is independent of worker
  // count. In batch mode the buckets are columnar from the start —
  // records go straight into per-partition RecordBatches, never re-boxed.
  std::vector<std::vector<Record>> buckets(nparts);
  std::vector<RecordBatch> batches(nparts);
  std::size_t misassigned = 0;
  for (auto& r : records) {
    const PartitionId p = assign(r);
    if (p >= nparts) {
      ++misassigned;
      continue;
    }
    if (batched) {
      batches[p].Append(r);
    } else {
      buckets[p].push_back(std::move(r));
    }
  }
  report.rejected += misassigned;

  std::vector<std::size_t> produced(nparts, 0);
  std::vector<std::size_t> rejected(nparts, 0);
  std::vector<std::size_t> unavailable(nparts, 0);
  for (std::size_t p = 0; p < nparts; ++p) {
    if (batched) {
      if (batches[p].empty()) continue;
      // One amortized batch charge instead of n flat per-record charges —
      // the modeled-throughput step E23 measures.
      const Duration cost = exec::BatchedCost(cost_per_record).For(batches[p].size());
      exec.SubmitCost(p, cost,
                      [&broker, &topic, &batches, &produced, &rejected, &unavailable, p] {
        auto res = broker.ProduceBatch(topic, static_cast<PartitionId>(p), batches[p]);
        if (res.ok()) {
          produced[p] = res->produced;
          rejected[p] = res->rejected;
          unavailable[p] = res->unavailable;
        } else {
          rejected[p] = batches[p].size();
          if (res.status().code() == StatusCode::kUnavailable) {
            unavailable[p] = batches[p].size();
          }
        }
      });
      continue;
    }
    if (buckets[p].empty()) continue;
    const Duration cost = cost_per_record * static_cast<double>(buckets[p].size());
    exec.SubmitCost(p, cost,
                    [&broker, &topic, &buckets, &produced, &rejected, &unavailable, p] {
      for (auto& r : buckets[p]) {
        auto off = broker.ProduceToPartition(topic, static_cast<PartitionId>(p),
                                             std::move(r));
        if (off.ok()) {
          ++produced[p];
        } else {
          ++rejected[p];
          if (off.status().code() == StatusCode::kUnavailable) ++unavailable[p];
        }
      }
    });
  }
  exec.Drain();

  report.per_partition.resize(nparts);
  for (std::size_t p = 0; p < nparts; ++p) {
    report.per_partition[p] = produced[p];
    report.produced += produced[p];
    report.rejected += rejected[p];
    report.unavailable += unavailable[p];
  }
  return report;
}

std::vector<std::vector<StoredRecord>> ParallelFetchAll(exec::Executor& exec,
                                                        Broker& broker,
                                                        const std::string& topic,
                                                        std::size_t max_per_partition,
                                                        Duration cost_per_record) {
  auto t = broker.GetTopic(topic);
  if (!t.ok()) return {};
  const std::size_t nparts = (*t)->partition_count();
  const bool batched = BatchingEnabled();
  std::vector<std::vector<StoredRecord>> out(nparts);
  for (std::size_t p = 0; p < nparts; ++p) {
    exec.Submit(p, [&broker, &exec, &topic, &out, max_per_partition, cost_per_record,
                    batched, p, t = *t] {
      const Offset from = t->partition(static_cast<PartitionId>(p)).log_start_offset();
      if (batched) {
        auto batch = broker.FetchBatch(topic, static_cast<PartitionId>(p), from,
                                       max_per_partition);
        if (batch.ok()) {
          out[p].reserve(batch->size());
          for (std::size_t i = 0; i < batch->size(); ++i) {
            out[p].push_back(batch->MaterializeStored(i));
          }
        }
        exec.AddVirtualCost(exec::BatchedCost(cost_per_record).For(out[p].size()));
        return;
      }
      auto fetched = broker.Fetch(topic, static_cast<PartitionId>(p), from,
                                  max_per_partition);
      if (fetched.ok()) {
        out[p] = std::move(*fetched);
        for (auto& sr : out[p]) sr.partition = static_cast<PartitionId>(p);
      }
      exec.AddVirtualCost(cost_per_record * static_cast<double>(out[p].size()));
    });
  }
  exec.Drain();
  return out;
}

}  // namespace arbd::stream
