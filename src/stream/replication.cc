#include "stream/replication.h"

#include <algorithm>
#include <cstdlib>

#include "common/serialize.h"
#include "stream/batch.h"
#include "stream/log.h"

namespace arbd::stream {

namespace {

// SplitMix64 finalizer — the deterministic tie-breaker / subset-size hash.
// Stateless on purpose: election decisions must depend only on persistent
// partition state (seed, epoch, committed offset), never on a shared RNG
// stream whose position varies with unrelated call history.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t Mix3(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  return Mix(a ^ Mix(b ^ Mix(c)));
}

}  // namespace

std::uint32_t ReplicationFactorFromEnv() {
  const char* raw = std::getenv("ARBD_REPLICAS");
  if (raw == nullptr || *raw == '\0') return 1;
  char* end = nullptr;
  const long v = std::strtol(raw, &end, 10);
  if (end == raw) return 1;
  return static_cast<std::uint32_t>(std::clamp<long>(v, 1, 8));
}

ReplicatedPartition::ReplicatedPartition(std::uint32_t factor,
                                         std::uint64_t failover_seed,
                                         Partition& committed)
    : committed_(committed), failover_seed_(failover_seed) {
  replicas_.resize(std::max<std::uint32_t>(1, factor));
}

Expected<Offset> ReplicatedPartition::Produce(Record record, TimePoint ingest_time,
                                              ProducerId pid, std::uint64_t seq,
                                              InjectedCrash crash) {
  std::lock_guard<std::mutex> lk(mu_);
  TickRestores();
  return AppendLocked(epoch_, std::move(record), ingest_time, pid, seq, crash);
}

Expected<Offset> ReplicatedPartition::ProduceBatch(const RecordBatch& batch,
                                                   std::size_t from_row, std::size_t n,
                                                   TimePoint ingest_time) {
  std::lock_guard<std::mutex> lk(mu_);
  if (sealed_) {
    return Status::FailedPrecondition("partition sealed for split/merge handoff");
  }
  // Bail to the per-record path whenever a restore is armed: restores tick
  // once per produce *attempt*, so their firing point is per-row state the
  // bulk path would collapse. With none armed, TickRestores is a no-op for
  // the whole run and skipping it changes nothing.
  for (const Replica& r : replicas_) {
    if (!r.online && r.restore_in_ops > 0) {
      return Status::FailedPrecondition("bulk append: auto-restore armed");
    }
  }
  if (leader_ == kNoLeader) {
    return Status::FailedPrecondition("bulk append: partition leaderless");
  }
  if (n == 0) return committed_.end_offset();

  if (replicas_.size() == 1) {
    return committed_.AppendBatchRange(batch, from_row, n, ingest_time);
  }
  // Quorum path, one commit for the run: every online replica takes every
  // entry, then the high-watermark advances once.
  const Offset base = committed_.end_offset();
  Replica& leader = replicas_[leader_];
  for (std::size_t i = 0; i < n; ++i) {
    Entry entry{epoch_, 0, 0, batch.MaterializeRecord(from_row + i), ingest_time};
    for (NodeId nn = 0; nn < replicas_.size(); ++nn) {
      if (nn != leader_ && replicas_[nn].online) replicas_[nn].tail.push_back(entry);
    }
    leader.tail.push_back(std::move(entry));
  }
  CommitLeaderTail();
  return base;
}

Expected<Offset> ReplicatedPartition::LeaderAppend(Epoch claimed_epoch, Record record,
                                                   TimePoint ingest_time, ProducerId pid,
                                                   std::uint64_t seq, InjectedCrash crash) {
  std::lock_guard<std::mutex> lk(mu_);
  TickRestores();
  return AppendLocked(claimed_epoch, std::move(record), ingest_time, pid, seq, crash);
}

Expected<Offset> ReplicatedPartition::AppendLocked(Epoch claimed_epoch, Record record,
                                                   TimePoint ingest_time, ProducerId pid,
                                                   std::uint64_t seq, InjectedCrash crash) {
  if (leader_ == kNoLeader) {
    ++stats_.unavailable_rejects;
    return Status::Unavailable("partition leaderless (all replicas down)");
  }
  // Fencing: an appender claiming a superseded epoch is a deposed leader
  // (or a caller holding a stale view) — reject before touching any log.
  if (claimed_epoch != epoch_) {
    ++stats_.fenced_appends;
    return Status::FailedPrecondition(
        "fenced: append at epoch " + std::to_string(claimed_epoch) +
        ", current epoch " + std::to_string(epoch_));
  }
  // Idempotence: dedup against *committed* state only. Entries that were
  // appended but lost to a crash never enter this table, so the producer's
  // retry lands for real instead of being absorbed into a hole.
  if (pid != 0) {
    auto it = seen_.find(pid);
    if (it != seen_.end() && seq <= it->second.first) {
      ++stats_.dedup_hits;
      return it->second.second;
    }
  }
  // Split/merge fence — checked after dedup, deliberately: a retry of a
  // record the parent committed before sealing must keep resolving to its
  // original offset (exactly-once through the handoff); only genuinely
  // new appends get turned away toward the children.
  if (sealed_) {
    return Status::FailedPrecondition("partition sealed for split/merge handoff");
  }

  if (replicas_.size() == 1) {
    // Single copy: a crash downs the node before the record persists (no
    // follower can save it), otherwise commit directly.
    if (crash.crash_leader) {
      CrashLocked(leader_, crash.restore_after_ops);
      return Status::Unavailable("leader crashed before append (factor 1)");
    }
    const Offset off = committed_.Append(std::move(record), ingest_time);
    if (pid != 0) seen_[pid] = {seq, off};
    return off;
  }

  Entry entry{epoch_, pid, seq, std::move(record), ingest_time};
  Replica& leader = replicas_[leader_];

  if (crash.crash_leader) {
    // The interesting window: the leader persists locally, replicates to
    // only a prefix of its followers, and dies before acknowledging. The
    // prefix size is a pure function of (seed, epoch, committed offset),
    // so a given crash schedule replays bit-identically.
    std::vector<NodeId> online_followers;
    for (NodeId n = 0; n < replicas_.size(); ++n) {
      if (n != leader_ && replicas_[n].online) online_followers.push_back(n);
    }
    const std::uint64_t reached =
        Mix3(failover_seed_, epoch_,
             static_cast<std::uint64_t>(committed_.end_offset())) %
        (online_followers.size() + 1);
    leader.tail.push_back(entry);
    for (std::uint64_t i = 0; i < reached; ++i) {
      replicas_[online_followers[i]].tail.push_back(entry);
    }
    CrashLocked(leader_, crash.restore_after_ops);
    // CrashLocked ran the election; if a successor holds the entry it is
    // now committed — but the *ack* is lost either way, like a real torn
    // write. The producer's (pid, seq) retry resolves which happened.
    return Status::Unavailable("leader crashed mid-produce");
  }

  // Normal quorum path: every ISR member (== every online replica; see the
  // Replica::tail invariant) takes the entry, then the high-watermark
  // advances and the entry lands in the committed partition.
  leader.tail.push_back(entry);
  for (NodeId n = 0; n < replicas_.size(); ++n) {
    if (n != leader_ && replicas_[n].online) replicas_[n].tail.push_back(entry);
  }
  CommitLeaderTail();
  // CommitLeaderTail recorded this (pid, seq) at its committed offset.
  if (pid != 0) return seen_[pid].second;
  return committed_.end_offset() - 1;
}

ReplicatedPartition::SealSnapshot ReplicatedPartition::SealForSplit() {
  std::lock_guard<std::mutex> lk(mu_);
  sealed_ = true;
  // Uncommitted tails were never acknowledged to any producer — dropping
  // them loses nothing promised, and guarantees a later restore can never
  // resurrect a divergent suffix past the fence.
  for (Replica& r : replicas_) {
    stats_.truncated_entries += r.tail.size();
    r.tail.clear();
  }
  return SealSnapshot{committed_.end_offset(), seen_};
}

bool ReplicatedPartition::sealed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return sealed_;
}

void ReplicatedPartition::SeedDedup(
    const std::map<ProducerId, std::pair<std::uint64_t, Offset>>& seen) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [pid, entry] : seen) {
    auto it = seen_.find(pid);
    if (it == seen_.end() || entry.first > it->second.first) seen_[pid] = entry;
  }
}

std::uint64_t ReplicatedPartition::LastSeq(ProducerId pid) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = seen_.find(pid);
  return it == seen_.end() ? 0 : it->second.first;
}

void ReplicatedPartition::CommitLeaderTail() {
  ARBD_CHECK(leader_ != kNoLeader, "commit requires a leader");
  Replica& leader = replicas_[leader_];
  if (leader.tail.empty()) return;
  for (Entry& e : leader.tail) {
    const Offset off = committed_.Append(std::move(e.record), e.ingest_time);
    if (e.pid != 0) seen_[e.pid] = {e.seq, off};
  }
  for (NodeId n = 0; n < replicas_.size(); ++n) {
    if (replicas_[n].online) replicas_[n].tail.clear();
  }
  RecordHw();
}

void ReplicatedPartition::ElectLeader() {
  // Candidates: online replicas. The winner is the most complete log
  // (longest uncommitted tail — all tails share the committed prefix);
  // ties break by a seeded hash over persistent state so every rerun and
  // every worker count elects the same node.
  std::vector<NodeId> candidates;
  std::size_t best_len = 0;
  for (NodeId n = 0; n < replicas_.size(); ++n) {
    if (!replicas_[n].online) continue;
    const std::size_t len = replicas_[n].tail.size();
    if (candidates.empty() || len > best_len) {
      candidates.clear();
      best_len = len;
      candidates.push_back(n);
    } else if (len == best_len) {
      candidates.push_back(n);
    }
  }
  if (candidates.empty()) {
    leader_ = kNoLeader;
    return;
  }
  const std::uint64_t pick =
      Mix3(failover_seed_, epoch_,
           static_cast<std::uint64_t>(committed_.end_offset())) %
      candidates.size();
  leader_ = candidates[pick];
  ++epoch_;
  ++stats_.failovers;

  // Bring surviving followers in line with the new leader: drop any
  // divergent suffix, copy any missing entries (preserving the epoch each
  // entry was originally written under), then commit the tail. Committing
  // possibly-unacknowledged entries is safe: the producer never saw the
  // ack, and its retry dedups against the committed (pid, seq).
  Replica& leader = replicas_[leader_];
  for (NodeId n = 0; n < replicas_.size(); ++n) {
    if (n == leader_ || !replicas_[n].online) continue;
    auto& tail = replicas_[n].tail;
    std::size_t common = 0;
    while (common < tail.size() && common < leader.tail.size() &&
           tail[common].epoch == leader.tail[common].epoch &&
           tail[common].seq == leader.tail[common].seq &&
           tail[common].pid == leader.tail[common].pid) {
      ++common;
    }
    stats_.truncated_entries += tail.size() - common;
    tail.erase(tail.begin() + static_cast<std::ptrdiff_t>(common), tail.end());
    for (std::size_t i = common; i < leader.tail.size(); ++i) {
      tail.push_back(leader.tail[i]);
    }
  }
  CommitLeaderTail();
  RecordHw();  // mark the epoch change even when the tail was empty
}

void ReplicatedPartition::CrashLocked(NodeId node, std::size_t restore_after_ops) {
  Replica& r = replicas_[node];
  ARBD_CHECK(r.online, "crashing a node that is already down");
  r.online = false;
  r.epoch_at_crash = epoch_;
  r.restore_in_ops = restore_after_ops;
  ++stats_.node_crashes;
  if (node == leader_) ElectLeader();
}

void ReplicatedPartition::RestoreLocked(NodeId node) {
  Replica& r = replicas_[node];
  r.online = true;
  r.restore_in_ops = 0;
  ++stats_.node_restores;
  if (epoch_ > r.epoch_at_crash) {
    // An election moved past this node while it was down: its unacked
    // suffix diverges from the committed history and is truncated at the
    // epoch boundary (the entries were never acknowledged, so dropping
    // them loses nothing a producer was promised).
    stats_.truncated_entries += r.tail.size();
    r.tail.clear();
  }
  if (leader_ == kNoLeader) {
    ElectLeader();
  } else if (node != leader_) {
    // Catch up to the leader's in-flight tail so the node rejoins the ISR
    // (catch-up is synchronous in this model; the restore window above is
    // what modeled the lag).
    r.tail = replicas_[leader_].tail;
  }
}

void ReplicatedPartition::TickRestores() {
  for (NodeId n = 0; n < replicas_.size(); ++n) {
    Replica& r = replicas_[n];
    if (r.online || r.restore_in_ops == 0) continue;
    if (--r.restore_in_ops == 0) RestoreLocked(n);
  }
}

Status ReplicatedPartition::CrashNode(NodeId node, std::size_t restore_after_ops) {
  std::lock_guard<std::mutex> lk(mu_);
  if (node >= replicas_.size()) {
    return Status::OutOfRange("node " + std::to_string(node));
  }
  if (!replicas_[node].online) {
    return Status::FailedPrecondition("node " + std::to_string(node) + " already down");
  }
  CrashLocked(node, restore_after_ops);
  return Status::Ok();
}

Status ReplicatedPartition::RestoreNode(NodeId node) {
  std::lock_guard<std::mutex> lk(mu_);
  if (node >= replicas_.size()) {
    return Status::OutOfRange("node " + std::to_string(node));
  }
  if (replicas_[node].online) {
    return Status::FailedPrecondition("node " + std::to_string(node) + " already online");
  }
  RestoreLocked(node);
  return Status::Ok();
}

Status ReplicatedPartition::CrashLeader(std::size_t restore_after_ops) {
  std::lock_guard<std::mutex> lk(mu_);
  if (leader_ == kNoLeader) return Status::FailedPrecondition("partition leaderless");
  CrashLocked(leader_, restore_after_ops);
  return Status::Ok();
}

NodeId ReplicatedPartition::leader() const {
  std::lock_guard<std::mutex> lk(mu_);
  return leader_;
}

Epoch ReplicatedPartition::epoch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return epoch_;
}

Offset ReplicatedPartition::high_watermark() const { return committed_.end_offset(); }

std::vector<NodeId> ReplicatedPartition::Isr() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<NodeId> isr;
  for (NodeId n = 0; n < replicas_.size(); ++n) {
    if (replicas_[n].online) isr.push_back(n);
  }
  return isr;
}

std::vector<ReplicaInfo> ReplicatedPartition::Replicas() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<ReplicaInfo> out;
  out.reserve(replicas_.size());
  for (NodeId n = 0; n < replicas_.size(); ++n) {
    const Replica& r = replicas_[n];
    out.push_back({n, r.online, r.online, r.tail.size()});
  }
  return out;
}

ReplicationStats ReplicatedPartition::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::vector<ReplicatedPartition::HwStep> ReplicatedPartition::hw_history() const {
  std::lock_guard<std::mutex> lk(mu_);
  return hw_history_;
}

std::size_t ReplicatedPartition::OnlineCount() const {
  std::size_t n = 0;
  for (const Replica& r : replicas_) n += r.online ? 1 : 0;
  return n;
}

void ReplicatedPartition::RecordHw() {
  if (replicas_.size() == 1) return;
  const HwStep step{epoch_, committed_.end_offset()};
  if (!hw_history_.empty() && hw_history_.back() == step) return;
  hw_history_.push_back(step);
}

IdempotentProducer::IdempotentProducer(Broker& broker, std::string topic,
                                       fault::RetryPolicy retry,
                                       std::uint64_t jitter_seed)
    : broker_(broker),
      topic_(std::move(topic)),
      retry_(retry),
      rng_(jitter_seed),
      pid_(broker.AllocateProducerId()) {}

Expected<std::pair<PartitionId, Offset>> IdempotentProducer::Send(Record record) {
  auto t = broker_.GetTopic(topic_);
  if (!t.ok()) return t.status();
  // Assign the partition once, up front: retries must target the same
  // partition or the sequence number loses its meaning.
  const PartitionId p = (*t)->PartitionFor(record.key);
  const std::uint64_t seq = ++next_seq_[p];
  const std::size_t attempts = std::max<std::size_t>(1, retry_.max_attempts);
  Status last = Status::Unavailable("unreachable");
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++retries_;
      total_backoff_ = total_backoff_ + retry_.BackoffFor(attempt, rng_);
    }
    auto off = broker_.ProduceIdempotent(topic_, p, pid_, seq, record);
    if (off.ok()) {
      ++sent_;
      return std::make_pair(p, *off);
    }
    last = off.status();
    // Only lost-ack shapes are worth retrying; backpressure and fencing
    // are decisions, not transient failures.
    if (last.code() != StatusCode::kUnavailable) return last;
  }
  ++exhausted_;
  return last;
}

std::uint64_t CommittedDigest(const Partition& partition) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto fold = [&h](std::uint64_t v) { h = Mix(h ^ v); };
  const Offset start = partition.log_start_offset();
  const std::size_t n = partition.size();
  if (BatchingEnabled()) {
    // Columnar walk: fold straight over zero-copy views. Byte-for-byte the
    // same folds as the materialized loop below, so the digest value is
    // mode-independent by construction.
    auto batch = partition.FetchBatch(start, n);
    if (!batch.ok()) return h;
    for (std::size_t i = 0; i < batch->size(); ++i) {
      fold(static_cast<std::uint64_t>(batch->base_offset() + static_cast<Offset>(i)));
      const std::string_view key = batch->key(i);
      fold(Fnv1a(key.data(), key.size()));
      fold(Fnv1a(batch->payload_data(i), batch->payload_size(i)));
      fold(static_cast<std::uint64_t>(batch->event_time(i).nanos()));
    }
    return h;
  }
  auto records = partition.Fetch(start, n);
  if (!records.ok()) return h;
  for (const StoredRecord& sr : *records) {
    fold(static_cast<std::uint64_t>(sr.offset));
    fold(Fnv1a(sr.record.key));
    fold(Fnv1a(sr.record.payload));
    fold(static_cast<std::uint64_t>(sr.record.event_time.nanos()));
  }
  return h;
}

std::uint64_t CommittedTopicDigest(Topic& topic) {
  std::uint64_t h = 0x84222325cbf29ce4ULL;
  for (PartitionId p = 0; p < topic.partition_count(); ++p) {
    h = Mix(h ^ p);
    h = Mix(h ^ CommittedDigest(topic.partition(p)));
  }
  return h;
}

}  // namespace arbd::stream
