#include "sensors/rig.h"

#include <algorithm>

namespace arbd::sensors {

SensorRig::SensorRig(RigConfig cfg, std::uint64_t seed)
    : cfg_(cfg),
      trajectory_(cfg.trajectory, seed),
      gps_(cfg.gps, seed ^ 0x67507351ULL),
      imu_(cfg.imu, seed ^ 0x494d5521ULL),
      camera_(cfg.camera, seed ^ 0x43414d21ULL),
      vitals_(cfg.vitals, seed ^ 0x56495421ULL) {
  prev_truth_ = trajectory_.state();
}

void SensorRig::SetLandmarks(
    std::vector<std::tuple<std::uint64_t, double, double>> landmarks) {
  landmarks_ = std::move(landmarks);
}

void SensorRig::RunUntil(TimePoint until, const RigCallbacks& callbacks) {
  // Fixed integration step: the fastest sensor period (IMU by default)
  // bounds it, so no sensor misses a tick.
  Duration step = cfg_.imu.period;
  if (!cfg_.enable_imu) step = Duration::Millis(20);

  while (now_ < until) {
    now_ += step;
    prev_truth_ = trajectory_.state();
    const TruthState truth = trajectory_.Step(step);
    if (callbacks.on_truth) callbacks.on_truth(truth);

    if (cfg_.enable_imu && now_ >= next_imu_) {
      next_imu_ = now_ + cfg_.imu.period;
      if (callbacks.on_imu) callbacks.on_imu(imu_.Sample(prev_truth_, truth));
    }
    if (cfg_.enable_gps && now_ >= next_gps_) {
      next_gps_ = now_ + cfg_.gps.period;
      if (callbacks.on_gps) {
        if (auto fix = gps_.Sample(truth)) callbacks.on_gps(*fix);
      }
    }
    if (cfg_.enable_camera && now_ >= next_camera_) {
      next_camera_ = now_ + cfg_.camera.period;
      if (callbacks.on_features && !landmarks_.empty()) {
        callbacks.on_features(camera_.Sample(truth, landmarks_, city_));
      }
    }
    if (cfg_.enable_vitals && now_ >= next_vitals_) {
      next_vitals_ = now_ + cfg_.vitals.period;
      if (callbacks.on_vitals) callbacks.on_vitals(vitals_.Sample(truth));
    }
  }
}

}  // namespace arbd::sensors
