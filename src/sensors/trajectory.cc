#include "sensors/trajectory.h"

#include <algorithm>
#include <cmath>

namespace arbd::sensors {
namespace {
constexpr double kDegToRad = M_PI / 180.0;

double WrapDeg(double d) {
  while (d < 0) d += 360.0;
  while (d >= 360.0) d -= 360.0;
  return d;
}
}  // namespace

double TruthState::speed() const {
  return std::sqrt(vel_east * vel_east + vel_north * vel_north);
}

TrajectoryGenerator::TrajectoryGenerator(TrajectoryConfig cfg, std::uint64_t seed)
    : cfg_(std::move(cfg)), rng_(seed), target_speed_(cfg_.speed_mps) {
  state_.yaw_deg = rng_.Uniform(0.0, 360.0);
  if (cfg_.kind == MotionKind::kWaypoints && cfg_.waypoints.empty()) {
    cfg_.kind = MotionKind::kStatic;
  }
}

void TrajectoryGenerator::set_start(double east, double north, double yaw_deg) {
  state_.east = east;
  state_.north = north;
  state_.yaw_deg = WrapDeg(yaw_deg);
}

TruthState TrajectoryGenerator::Step(Duration dt) {
  const double dt_s = dt.seconds();
  state_.time += dt;
  switch (cfg_.kind) {
    case MotionKind::kStatic:
      state_.vel_east = 0.0;
      state_.vel_north = 0.0;
      break;
    case MotionKind::kRandomWalk:
      StepRandomWalk(dt_s);
      break;
    case MotionKind::kWaypoints:
      StepWaypoints(dt_s);
      break;
    case MotionKind::kVehicle:
      StepVehicle(dt_s);
      break;
  }
  return state_;
}

void TrajectoryGenerator::StepRandomWalk(double dt_s) {
  state_.yaw_deg = WrapDeg(state_.yaw_deg +
                           rng_.Gaussian(0.0, cfg_.heading_drift_deg_per_s) * dt_s);
  const double speed =
      std::max(0.0, cfg_.speed_mps * (1.0 + rng_.Gaussian(0.0, cfg_.speed_jitter)));
  const double yaw = state_.yaw_deg * kDegToRad;
  state_.vel_east = speed * std::sin(yaw);
  state_.vel_north = speed * std::cos(yaw);
  state_.east += state_.vel_east * dt_s;
  state_.north += state_.vel_north * dt_s;
  ReflectAtBounds();
}

void TrajectoryGenerator::StepWaypoints(double dt_s) {
  const auto& wps = cfg_.waypoints;
  const auto& [tx, ty] = wps[next_waypoint_ % wps.size()];
  const double de = tx - state_.east;
  const double dn = ty - state_.north;
  const double dist = std::sqrt(de * de + dn * dn);
  const double step = cfg_.speed_mps * dt_s;
  if (dist <= step || dist < 1e-9) {
    state_.east = tx;
    state_.north = ty;
    next_waypoint_ = (next_waypoint_ + 1) % wps.size();
    state_.vel_east = 0.0;
    state_.vel_north = 0.0;
  } else {
    state_.vel_east = cfg_.speed_mps * de / dist;
    state_.vel_north = cfg_.speed_mps * dn / dist;
    state_.east += state_.vel_east * dt_s;
    state_.north += state_.vel_north * dt_s;
    state_.yaw_deg = WrapDeg(std::atan2(de, dn) / kDegToRad);
  }
}

void TrajectoryGenerator::StepVehicle(double dt_s) {
  // Smooth speed toward a slowly changing target; gentle heading changes.
  if (rng_.Bernoulli(0.02)) {
    target_speed_ = std::max(1.0, cfg_.speed_mps * rng_.Uniform(0.5, 1.3));
  }
  const double current = state_.speed();
  const double accel = std::clamp(target_speed_ - current, -3.0, 2.0);
  const double speed = std::max(0.0, current + accel * dt_s);
  state_.yaw_deg = WrapDeg(state_.yaw_deg +
                           rng_.Gaussian(0.0, cfg_.heading_drift_deg_per_s * 0.2) * dt_s);
  const double yaw = state_.yaw_deg * kDegToRad;
  state_.vel_east = speed * std::sin(yaw);
  state_.vel_north = speed * std::cos(yaw);
  state_.east += state_.vel_east * dt_s;
  state_.north += state_.vel_north * dt_s;
  ReflectAtBounds();
}

void TrajectoryGenerator::ReflectAtBounds() {
  const double b = cfg_.bounds_half_extent_m;
  if (state_.east > b || state_.east < -b || state_.north > b || state_.north < -b) {
    state_.east = std::clamp(state_.east, -b, b);
    state_.north = std::clamp(state_.north, -b, b);
    state_.yaw_deg = WrapDeg(state_.yaw_deg + 180.0 + rng_.Uniform(-30.0, 30.0));
  }
}

}  // namespace arbd::sensors
