#include "sensors/models.h"

#include <algorithm>
#include <cmath>

namespace arbd::sensors {
namespace {
constexpr double kDegToRad = M_PI / 180.0;
constexpr double kRadToDeg = 180.0 / M_PI;

double AngleDiffDeg(double a, double b) {
  double d = a - b;
  while (d > 180.0) d -= 360.0;
  while (d < -180.0) d += 360.0;
  return d;
}
}  // namespace

std::optional<GpsFix> GpsModel::Sample(const TruthState& truth) {
  if (rng_.Bernoulli(cfg_.dropout_rate)) return std::nullopt;
  bias_e_ += rng_.Gaussian(0.0, cfg_.bias_walk_stddev_m);
  bias_n_ += rng_.Gaussian(0.0, cfg_.bias_walk_stddev_m);
  GpsFix fix;
  fix.time = truth.time;
  fix.east = truth.east + bias_e_ + rng_.Gaussian(0.0, cfg_.noise_stddev_m);
  fix.north = truth.north + bias_n_ + rng_.Gaussian(0.0, cfg_.noise_stddev_m);
  fix.accuracy_m = cfg_.noise_stddev_m;
  return fix;
}

ImuModel::ImuModel(ImuConfig cfg, std::uint64_t seed) : cfg_(cfg), rng_(seed) {
  bias_ae_ = rng_.Gaussian(0.0, cfg_.accel_bias);
  bias_an_ = rng_.Gaussian(0.0, cfg_.accel_bias);
  bias_g_ = rng_.Gaussian(0.0, cfg_.gyro_bias_dps);
}

ImuSample ImuModel::Sample(const TruthState& prev, const TruthState& curr) {
  const double dt = (curr.time - prev.time).seconds();
  ImuSample s;
  s.time = curr.time;
  if (dt > 1e-9) {
    s.accel_east = (curr.vel_east - prev.vel_east) / dt;
    s.accel_north = (curr.vel_north - prev.vel_north) / dt;
    s.yaw_rate_dps = AngleDiffDeg(curr.yaw_deg, prev.yaw_deg) / dt;
  }
  s.accel_east += bias_ae_ + rng_.Gaussian(0.0, cfg_.accel_noise);
  s.accel_north += bias_an_ + rng_.Gaussian(0.0, cfg_.accel_noise);
  s.yaw_rate_dps += bias_g_ + rng_.Gaussian(0.0, cfg_.gyro_noise_dps);
  return s;
}

std::vector<FeatureObservation> CameraFeatureModel::Sample(
    const TruthState& truth,
    const std::vector<std::tuple<std::uint64_t, double, double>>& landmarks,
    const geo::CityModel* city) {
  std::vector<FeatureObservation> out;
  for (const auto& [id, le, ln] : landmarks) {
    const double de = le - truth.east;
    const double dn = ln - truth.north;
    const double range = std::sqrt(de * de + dn * dn);
    if (range > cfg_.max_range_m || range < 0.5) continue;
    const double bearing = std::atan2(de, dn) * kRadToDeg;
    if (std::abs(AngleDiffDeg(bearing, truth.yaw_deg)) > cfg_.fov_deg / 2.0) continue;
    if (city != nullptr &&
        city->IsOccluded(truth.east, truth.north, truth.up, le, ln, 2.0)) {
      continue;
    }
    if (!rng_.Bernoulli(cfg_.detection_rate)) continue;
    FeatureObservation ob;
    ob.time = truth.time;
    ob.landmark_id = id;
    ob.range_m = std::max(0.1, range + rng_.Gaussian(0.0, cfg_.range_noise_m));
    ob.bearing_deg = bearing + rng_.Gaussian(0.0, cfg_.bearing_noise_deg);
    out.push_back(ob);
  }
  return out;
}

VitalsSample VitalsModel::Sample(const TruthState& truth) {
  VitalsSample s;
  s.time = truth.time;

  // Start / continue anomaly episodes.
  if (truth.time < anomaly_until_) {
    s.truth_anomaly = true;
  } else if (cfg_.anomaly_rate_per_hour > 0.0) {
    const double p = cfg_.anomaly_rate_per_hour * cfg_.period.seconds() / 3600.0;
    if (rng_.Bernoulli(p)) {
      anomaly_until_ = truth.time + cfg_.anomaly_duration;
      s.truth_anomaly = true;
    }
  }

  // Exercise response: smoothed first-order lag toward speed-driven HR.
  const double target = truth.speed() * 12.0;  // ~+17 bpm at walking pace
  hr_state_ += 0.05 * (target - hr_state_);

  // Mild circadian swing over the simulated day.
  const double circadian = 4.0 * std::sin(truth.time.seconds() / 86400.0 * 2.0 * M_PI);

  s.heart_rate_bpm = cfg_.resting_hr + hr_state_ + circadian +
                     rng_.Gaussian(0.0, cfg_.hr_noise) +
                     (s.truth_anomaly ? cfg_.anomaly_hr_boost : 0.0);
  s.spo2_pct = std::clamp(98.0 + rng_.Gaussian(0.0, 0.4) - (s.truth_anomaly ? 3.0 : 0.0),
                          80.0, 100.0);
  return s;
}

}  // namespace arbd::sensors
