// SensorRig: one simulated device. Owns a trajectory plus the per-sensor
// models and steps them on their native periods, delivering samples
// through callbacks in timestamp order. This is the boundary between "the
// world" and everything the platform is allowed to see.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <tuple>
#include <vector>

#include "common/clock.h"
#include "sensors/models.h"
#include "sensors/trajectory.h"

namespace arbd::sensors {

struct RigConfig {
  std::string device_id = "device-0";
  TrajectoryConfig trajectory;
  GpsConfig gps;
  ImuConfig imu;
  CameraConfig camera;
  VitalsConfig vitals;
  bool enable_gps = true;
  bool enable_imu = true;
  bool enable_camera = false;  // needs landmarks wired in
  bool enable_vitals = false;
};

struct RigCallbacks {
  std::function<void(const GpsFix&)> on_gps;
  std::function<void(const ImuSample&)> on_imu;
  std::function<void(const std::vector<FeatureObservation>&)> on_features;
  std::function<void(const VitalsSample&)> on_vitals;
  // Ground truth at each simulation step (for evaluation only).
  std::function<void(const TruthState&)> on_truth;
};

class SensorRig {
 public:
  SensorRig(RigConfig cfg, std::uint64_t seed);

  // Advance the simulation to `until`, firing each sensor at its period.
  void RunUntil(TimePoint until, const RigCallbacks& callbacks);

  // Landmarks the camera model can recognize (id, east, north).
  void SetLandmarks(std::vector<std::tuple<std::uint64_t, double, double>> landmarks);
  void SetCity(const geo::CityModel* city) { city_ = city; }

  const TruthState& truth() const { return trajectory_.state(); }
  TrajectoryGenerator& trajectory() { return trajectory_; }
  const std::string& device_id() const { return cfg_.device_id; }

 private:
  RigConfig cfg_;
  TrajectoryGenerator trajectory_;
  GpsModel gps_;
  ImuModel imu_;
  CameraFeatureModel camera_;
  VitalsModel vitals_;
  std::vector<std::tuple<std::uint64_t, double, double>> landmarks_;
  const geo::CityModel* city_ = nullptr;

  TimePoint now_;
  TimePoint next_gps_;
  TimePoint next_imu_;
  TimePoint next_camera_;
  TimePoint next_vitals_;
  TruthState prev_truth_;
};

}  // namespace arbd::sensors
