// Ground-truth motion generation for the simulated device/user. The AR
// tracker never sees these states directly — only the noisy sensor models
// derived from them — which is what lets the tracking experiments (E13)
// compute honest error numbers.
#pragma once

#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"

namespace arbd::sensors {

// True kinematic state in a local ENU frame (metres, metres/second).
struct TruthState {
  TimePoint time;
  double east = 0.0;
  double north = 0.0;
  double up = 1.7;  // eye height
  double vel_east = 0.0;
  double vel_north = 0.0;
  double yaw_deg = 0.0;  // heading, clockwise from north

  double speed() const;
};

enum class MotionKind {
  kWaypoints,   // piecewise-linear between fixed points (commuter / tourist route)
  kRandomWalk,  // pedestrian wandering with smooth heading drift
  kVehicle,     // faster, smoother turns, bounded acceleration
  kStatic,      // standing still (in-situ inspection scenarios)
};

struct TrajectoryConfig {
  MotionKind kind = MotionKind::kRandomWalk;
  double speed_mps = 1.4;               // walking pace
  double speed_jitter = 0.2;            // fractional speed variation
  double heading_drift_deg_per_s = 25.0;  // random-walk heading volatility
  double bounds_half_extent_m = 400.0;  // keep motion within ±this
  std::vector<std::pair<double, double>> waypoints;  // (east, north) for kWaypoints
};

class TrajectoryGenerator {
 public:
  TrajectoryGenerator(TrajectoryConfig cfg, std::uint64_t seed);

  // Advance by dt and return the new ground-truth state.
  TruthState Step(Duration dt);
  const TruthState& state() const { return state_; }
  void set_start(double east, double north, double yaw_deg);

 private:
  void StepRandomWalk(double dt_s);
  void StepWaypoints(double dt_s);
  void StepVehicle(double dt_s);
  void ReflectAtBounds();

  TrajectoryConfig cfg_;
  Rng rng_;
  TruthState state_;
  std::size_t next_waypoint_ = 0;
  double target_speed_;
};

}  // namespace arbd::sensors
