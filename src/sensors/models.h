// Noise models that turn ground truth into what a phone actually reports.
// Each model is deliberately simple — bias + white noise + dropout — but
// that is exactly the error structure the EKF tracker has to fight, so
// the fusion experiments (E13) exercise the real code path.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "geo/city.h"
#include "sensors/trajectory.h"

namespace arbd::sensors {

struct GpsFix {
  TimePoint time;
  double east = 0.0;   // measured position, ENU metres
  double north = 0.0;
  double accuracy_m = 5.0;  // reported 1-sigma accuracy
};

struct GpsConfig {
  double noise_stddev_m = 4.0;
  double bias_walk_stddev_m = 0.02;  // slow urban-canyon bias drift per sample
  double dropout_rate = 0.02;        // chance a fix is simply missing
  Duration period = Duration::Millis(1000);
};

class GpsModel {
 public:
  GpsModel(GpsConfig cfg, std::uint64_t seed) : cfg_(cfg), rng_(seed) {}

  // Returns nullopt on dropout.
  std::optional<GpsFix> Sample(const TruthState& truth);
  const GpsConfig& config() const { return cfg_; }

 private:
  GpsConfig cfg_;
  Rng rng_;
  double bias_e_ = 0.0;
  double bias_n_ = 0.0;
};

struct ImuSample {
  TimePoint time;
  double accel_east = 0.0;   // world-frame acceleration, m/s^2
  double accel_north = 0.0;
  double yaw_rate_dps = 0.0; // gyro, degrees/second
};

struct ImuConfig {
  double accel_noise = 0.15;        // m/s^2 white noise
  double accel_bias = 0.05;         // constant bias magnitude
  double gyro_noise_dps = 0.8;
  double gyro_bias_dps = 0.3;
  Duration period = Duration::Millis(10);  // 100 Hz
};

class ImuModel {
 public:
  ImuModel(ImuConfig cfg, std::uint64_t seed);

  // Needs the previous truth state to differentiate velocity.
  ImuSample Sample(const TruthState& prev, const TruthState& curr);

 private:
  ImuConfig cfg_;
  Rng rng_;
  double bias_ae_, bias_an_, bias_g_;
};

// A recognized visual landmark: the camera "sees" a known map feature and
// reports range + bearing to it. This stands in for the feature-matching
// front end of a visual tracking system.
struct FeatureObservation {
  TimePoint time;
  std::uint64_t landmark_id = 0;
  double range_m = 0.0;
  double bearing_deg = 0.0;  // relative to true north (already gravity-aligned)
};

struct CameraConfig {
  double max_range_m = 60.0;
  double fov_deg = 70.0;
  double range_noise_m = 0.4;
  double bearing_noise_deg = 1.0;
  double detection_rate = 0.8;  // per visible landmark per frame
  Duration period = Duration::Millis(33);  // ~30 fps
};

class CameraFeatureModel {
 public:
  CameraFeatureModel(CameraConfig cfg, std::uint64_t seed) : cfg_(cfg), rng_(seed) {}

  // Landmarks are (id, east, north); visibility respects range, the
  // camera's field of view around the user's yaw, and building occlusion.
  std::vector<FeatureObservation> Sample(
      const TruthState& truth, const std::vector<std::tuple<std::uint64_t, double, double>>& landmarks,
      const geo::CityModel* city = nullptr);

 private:
  CameraConfig cfg_;
  Rng rng_;
};

// Wearable vitals (§3.3): heart rate with circadian drift, exercise
// response to movement speed, and injectable anomaly episodes
// (tachycardia) for the alerting experiment (E9).
struct VitalsSample {
  TimePoint time;
  double heart_rate_bpm = 70.0;
  double spo2_pct = 98.0;
  bool truth_anomaly = false;  // ground-truth label for alert evaluation
};

struct VitalsConfig {
  double resting_hr = 68.0;
  double hr_noise = 1.5;
  double anomaly_rate_per_hour = 0.0;  // episodes per hour
  Duration anomaly_duration = Duration::Seconds(45);
  double anomaly_hr_boost = 65.0;
  Duration period = Duration::Millis(1000);
};

class VitalsModel {
 public:
  VitalsModel(VitalsConfig cfg, std::uint64_t seed) : cfg_(cfg), rng_(seed) {}

  VitalsSample Sample(const TruthState& truth);

 private:
  VitalsConfig cfg_;
  Rng rng_;
  TimePoint anomaly_until_ = TimePoint::Min();
  double hr_state_ = 0.0;  // smoothed exercise component
};

}  // namespace arbd::sensors
