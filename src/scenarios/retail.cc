#include "scenarios/retail.h"

#include <algorithm>
#include <cmath>

namespace arbd::scenarios {
namespace {

// 2D segment vs AABB test (shelves are tall boxes; a segment below shelf
// height that crosses the footprint is blocked).
bool SegmentHitsBox(double x0, double y0, double x1, double y1, double min_x, double min_y,
                    double max_x, double max_y) {
  double t0 = 0.0, t1 = 1.0;
  const double dx = x1 - x0, dy = y1 - y0;
  const double p[4] = {-dx, dx, -dy, dy};
  const double q[4] = {x0 - min_x, max_x - x0, y0 - min_y, max_y - y0};
  for (int i = 0; i < 4; ++i) {
    if (std::abs(p[i]) < 1e-12) {
      if (q[i] < 0) return false;
      continue;
    }
    const double r = q[i] / p[i];
    if (p[i] < 0) {
      t0 = std::max(t0, r);
    } else {
      t1 = std::min(t1, r);
    }
    if (t0 > t1) return false;
  }
  return true;
}

}  // namespace

StoreModel StoreModel::Generate(const Config& cfg, std::uint64_t seed) {
  StoreModel store;
  Rng rng(seed);
  std::uint64_t next_shelf = 1;
  std::size_t sku = 0;
  for (std::size_t a = 0; a < cfg.aisles; ++a) {
    for (std::size_t s = 0; s < cfg.shelves_per_aisle; ++s) {
      Shelf shelf;
      shelf.id = next_shelf++;
      shelf.center_east = static_cast<double>(a) * cfg.aisle_pitch_m;
      shelf.center_north = static_cast<double>(s) * (cfg.shelf_length_m + 0.5);
      shelf.half_width = 0.4;
      shelf.half_depth = cfg.shelf_length_m / 2.0;
      store.shelves_.push_back(shelf);

      for (std::size_t p = 0; p < cfg.products_per_shelf; ++p) {
        Product prod;
        prod.sku = "sku" + std::to_string(sku++);
        prod.name = "product-" + prod.sku;
        prod.shelf_id = shelf.id;
        // Alternate faces of the shelf.
        const double face = (p % 2 == 0) ? 1.0 : -1.0;
        prod.east = shelf.center_east + face * (shelf.half_width + 0.05);
        prod.north = shelf.center_north +
                     rng.Uniform(-shelf.half_depth * 0.9, shelf.half_depth * 0.9);
        prod.height = rng.Uniform(0.3, 1.7);
        prod.price = rng.Uniform(1.0, 120.0);
        store.products_.push_back(std::move(prod));
      }
    }
  }
  return store;
}

bool StoreModel::IsOccluded(double eye_e, double eye_n, double eye_h,
                            const Product& target) const {
  (void)eye_h;  // shelves are treated as full-height occluders below 1.8 m
  for (const auto& s : shelves_) {
    if (s.id == target.shelf_id) continue;
    if (SegmentHitsBox(eye_e, eye_n, target.east, target.north,
                       s.center_east - s.half_width, s.center_north - s.half_depth,
                       s.center_east + s.half_width, s.center_north + s.half_depth)) {
      return true;
    }
  }
  return false;
}

const Product* StoreModel::FindSku(const std::string& sku) const {
  for (const auto& p : products_) {
    if (p.sku == sku) return &p;
  }
  return nullptr;
}

SearchResult SimulateProductSearch(const StoreModel& store, const std::string& sku,
                                   const SearchConfig& cfg, std::uint64_t seed) {
  SearchResult result;
  const Product* target = store.FindSku(sku);
  if (target == nullptr) return result;

  Rng rng(seed);
  // Shopper starts at the store entrance (south-west corner).
  double e = -2.0, n = -2.0;
  const double step = cfg.walk_speed_mps * 0.5;  // 0.5 s ticks
  Duration elapsed = Duration::Zero();

  // Unguided sweep: visit each aisle end in order. Guided: head straight
  // for the target.
  std::vector<std::pair<double, double>> route;
  if (cfg.guided) {
    route.emplace_back(target->east, target->north);
  } else {
    for (const auto& s : store.shelves()) {
      route.emplace_back(s.center_east + 1.2, s.center_north);
    }
    route.emplace_back(target->east, target->north);
  }

  std::size_t leg = 0;
  while (elapsed < cfg.time_limit) {
    // Found check: in range and (visible or x-ray).
    const double de = target->east - e;
    const double dn = target->north - n;
    const double dist = std::sqrt(de * de + dn * dn);
    if (dist <= cfg.found_range_m) {
      const bool occluded = store.IsOccluded(e, n, 1.6, *target);
      if (!occluded || cfg.xray_enabled) {
        result.found = true;
        result.time_to_find = elapsed;
        return result;
      }
    }
    // X-ray also extends the effective discovery range: the shopper sees
    // the highlight through shelves from farther away and beelines.
    if (cfg.xray_enabled && dist <= cfg.found_range_m * 6.0) {
      route.clear();
      route.emplace_back(target->east, target->north);
      leg = 0;
    }

    if (leg >= route.size()) {
      // Lost: wander randomly.
      e += rng.Uniform(-step, step);
      n += rng.Uniform(-step, step);
    } else {
      auto [tx, ty] = route[leg];
      const double le = tx - e, ln = ty - n;
      const double ldist = std::sqrt(le * le + ln * ln);
      if (ldist < step) {
        e = tx;
        n = ty;
        ++leg;
      } else {
        e += step * le / ldist;
        n += step * ln / ldist;
      }
    }
    result.distance_walked_m += step;
    elapsed += Duration::Millis(500);
  }
  result.time_to_find = elapsed;
  return result;
}

std::vector<RecoSweepPoint> RunRecommendationSweep(
    const analytics::RetailWorkloadConfig& workload_cfg,
    const std::vector<std::size_t>& volumes, std::size_t k, std::uint64_t seed) {
  std::vector<RecoSweepPoint> out;
  Rng rng(seed);

  // One big workload; prefixes of it are the increasing volumes. The test
  // set is a held-out fresh tail generated from the same distribution.
  analytics::RetailWorkloadConfig big = workload_cfg;
  const std::size_t max_volume = *std::max_element(volumes.begin(), volumes.end());
  big.interactions = max_volume + workload_cfg.users * 5;  // extra for test split
  const auto all = analytics::GenerateRetailWorkload(big, rng);

  const std::vector<analytics::Interaction> test(all.end() - static_cast<std::ptrdiff_t>(workload_cfg.users * 5),
                                                 all.end());

  for (std::size_t volume : volumes) {
    RecoSweepPoint point;
    point.events = volume;
    const std::vector<analytics::Interaction> train(all.begin(),
                                                    all.begin() + static_cast<std::ptrdiff_t>(volume));
    {
      analytics::ItemCfRecommender cf;
      const auto r = analytics::EvaluateRecommender(cf, train, test, k);
      point.cf_precision = r.precision_at_k;
      point.cf_hit_rate = r.hit_rate;
    }
    {
      analytics::PopularityRecommender pop;
      const auto r = analytics::EvaluateRecommender(pop, train, test, k);
      point.pop_precision = r.precision_at_k;
      point.pop_hit_rate = r.hit_rate;
    }
    out.push_back(point);
  }
  return out;
}

}  // namespace arbd::scenarios
