// Tourism scenario (§3.2): a geo-guided AR tour. The guide resolves the
// tourist's context against the POI store (k-NN / category queries),
// produces translated-sign and place-info annotations, recommends rest
// stops by walking distance, and runs an Ingress-style portal game over
// landmarks. Drives experiment E7's realistic query mix and the
// gamification ablation.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ar/content.h"
#include "common/clock.h"
#include "common/rng.h"
#include "geo/city.h"
#include "geo/route.h"

namespace arbd::scenarios {

struct TourismConfig {
  double guide_radius_m = 150.0;
  std::size_t max_place_cards = 8;
  double rest_recommend_after_m = 800.0;  // walked distance trigger
  std::string tourist_language = "en";
};

// A sign in a foreign language the guide knows how to translate.
struct Sign {
  geo::PoiId at_poi = 0;
  std::string original;
  std::string translated;
};

class TouristGuide {
 public:
  TouristGuide(const geo::CityModel& city, TourismConfig cfg, std::uint64_t seed);

  // Tick the guide with the tourist's current position; returns the
  // annotations the AR layer should show now.
  std::vector<ar::content::Annotation> Update(const geo::LatLon& pos, TimePoint now);

  // Register translatable signage at a POI.
  void AddSign(Sign sign);

  double distance_walked_m() const { return walked_m_; }
  std::uint64_t queries_issued() const { return queries_; }

 private:
  const geo::CityModel& city_;
  TourismConfig cfg_;
  geo::RoutePlanner planner_;  // §3.2: recommend by *walking* distance
  Rng rng_;
  geo::LatLon last_pos_;
  bool has_last_ = false;
  double walked_m_ = 0.0;
  double next_rest_at_m_;
  std::map<geo::PoiId, Sign> signs_;
  std::uint64_t queries_ = 0;
};

// Ingress-style portal game (§3.2's gamification): landmarks become
// portals; walking within capture range claims them for the player's
// faction; metrics show how gamification changes coverage of spots.
class PortalGame {
 public:
  PortalGame(const geo::CityModel& city, double capture_range_m, std::uint64_t seed);

  // Visit tick: captures any uncaptured portal in range. Returns newly
  // captured portal ids.
  std::vector<geo::PoiId> Visit(const std::string& player, const geo::LatLon& pos);

  std::size_t portal_count() const { return portals_.size(); }
  std::size_t captured_count() const;
  const std::map<geo::PoiId, std::string>& ownership() const { return owners_; }

 private:
  const geo::CityModel& city_;
  double range_m_;
  std::vector<geo::PoiId> portals_;
  std::map<geo::PoiId, std::string> owners_;
};

// Simulated tour: a tourist walks a waypoint route; with the guide on,
// they divert to recommended spots (portals/POIs); metrics compare spots
// visited and annotations consumed with and without gamification.
struct TourMetrics {
  double distance_m = 0.0;
  std::size_t spots_visited = 0;
  std::size_t portals_captured = 0;
  std::size_t annotations_shown = 0;
  std::uint64_t geo_queries = 0;
};

TourMetrics SimulateTour(const geo::CityModel& city, const TourismConfig& cfg,
                         bool gamified, Duration tour_length, std::uint64_t seed);

}  // namespace arbd::scenarios
