// Retail scenario (§3.1): a store of shelved products, simulated shoppers
// whose purchases stream into the platform, an incrementally trained
// recommender, and the AR overlay that (a) shows personalized
// recommendations in the shopper's context and (b) locates products behind
// shelves with "X-ray vision". Drives experiments E3 and E6.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analytics/recommend.h"
#include "common/clock.h"
#include "common/rng.h"
#include "geo/city.h"

namespace arbd::scenarios {

struct Product {
  std::string sku;
  std::string name;
  // Shelf position inside the store, ENU metres from the store origin.
  double east = 0.0;
  double north = 0.0;
  double height = 1.2;
  std::uint64_t shelf_id = 0;  // acts as occluder id
  double price = 0.0;
};

struct Shelf {
  std::uint64_t id = 0;
  double center_east = 0.0, center_north = 0.0;
  double half_width = 0.0, half_depth = 0.0;
  double height = 1.8;
};

// A store laid out as parallel aisles of shelves with products on both
// faces. Self-contained (does not use CityModel) because in-store
// occlusion is shelf-scale, not building-scale.
class StoreModel {
 public:
  struct Config {
    std::size_t aisles = 6;
    std::size_t shelves_per_aisle = 8;
    std::size_t products_per_shelf = 10;
    double aisle_pitch_m = 4.0;
    double shelf_length_m = 3.0;
  };

  static StoreModel Generate(const Config& cfg, std::uint64_t seed);

  const std::vector<Product>& products() const { return products_; }
  const std::vector<Shelf>& shelves() const { return shelves_; }

  // Is the straight line from (eye) to (target product) blocked by a shelf
  // other than the product's own?
  bool IsOccluded(double eye_e, double eye_n, double eye_h, const Product& target) const;

  const Product* FindSku(const std::string& sku) const;

 private:
  std::vector<Product> products_;
  std::vector<Shelf> shelves_;
};

// Walks a shopper through the store until the target product is "found":
// the product must be within `found_range_m` AND either directly visible
// or revealed by X-ray mode. Returns simulated search time.
struct SearchResult {
  Duration time_to_find;
  double distance_walked_m = 0.0;
  bool found = false;
};

struct SearchConfig {
  bool xray_enabled = false;
  double found_range_m = 3.0;
  double walk_speed_mps = 1.2;
  Duration time_limit = Duration::Seconds(600);
  // With AR guidance the shopper walks toward the target's aisle; without,
  // they sweep aisles in order.
  bool guided = true;
};

SearchResult SimulateProductSearch(const StoreModel& store, const std::string& sku,
                                   const SearchConfig& cfg, std::uint64_t seed);

// End-to-end retail recommendation flow: streams a Zipf/cluster purchase
// workload through both recommenders at increasing volumes.
struct RecoSweepPoint {
  std::size_t events;
  double cf_precision = 0.0;
  double cf_hit_rate = 0.0;
  double pop_precision = 0.0;
  double pop_hit_rate = 0.0;
};

std::vector<RecoSweepPoint> RunRecommendationSweep(
    const analytics::RetailWorkloadConfig& workload_cfg,
    const std::vector<std::size_t>& volumes, std::size_t k, std::uint64_t seed);

}  // namespace arbd::scenarios
