#include "scenarios/chaos.h"

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "common/rng.h"
#include "fault/injector.h"
#include "stream/log.h"

namespace arbd::scenarios {
namespace {

// Out-of-orderness slack far beyond any soak's event-time span: windows
// only fire at the final Flush, which makes the committed-results table
// independent of how partition polling interleaves across crash/replay
// schedules (per-key order is already fixed by key-hash partitioning).
constexpr double kSoakLatenessSlackS = 1e6;

std::vector<stream::Event> MakeWorkload(const ChaosConfig& cfg) {
  Rng rng(cfg.seed * 0x9e3779b97f4a7c15ULL + 1);
  std::vector<stream::Event> events;
  events.reserve(cfg.records);
  TimePoint t;
  if (cfg.workload == ChaosWorkload::kRetail) {
    // §3.1 purchase stream: Zipf-skewed product popularity.
    ZipfGenerator zipf(80, 1.1);
    for (std::size_t i = 0; i < cfg.records; ++i) {
      t += Duration::Millis(static_cast<std::int64_t>(5 + rng.NextBelow(10)));
      stream::Event e;
      e.key = "sku" + std::to_string(zipf.Next(rng));
      e.attribute = "purchase";
      e.value = rng.Uniform(1.0, 50.0);
      e.event_time = t;
      events.push_back(std::move(e));
    }
  } else {
    // §3.4 IoT detection stream: uniform grid cells, binary detections.
    constexpr int kGrid = 12;
    for (std::size_t i = 0; i < cfg.records; ++i) {
      t += Duration::Millis(static_cast<std::int64_t>(5 + rng.NextBelow(10)));
      stream::Event e;
      const auto cell = rng.NextBelow(kGrid * kGrid);
      e.key = "c" + std::to_string(cell / kGrid) + "_" + std::to_string(cell % kGrid);
      e.attribute = "detect";
      e.value = rng.Bernoulli(0.3) ? 1.0 : 0.0;
      e.event_time = t;
      events.push_back(std::move(e));
    }
  }
  return events;
}

stream::PipelineFactory MakeFactory(ChaosResultTable* table) {
  return [table]() {
    auto p = std::make_unique<stream::Pipeline>(
        Duration::Seconds(kSoakLatenessSlackS));
    p->WindowAggregate(stream::WindowSpec::Tumbling(Duration::Seconds(1)),
                       stream::AggKind::kSum)
        .Sink([table](const stream::WindowResult& r) {
          (*table)[r.key + "|" + std::to_string(r.window_start.millis())] = {
              r.value, r.count};
        });
    return p;
  };
}

}  // namespace

Expected<ChaosReport> RunChaosSoak(const ChaosConfig& cfg) {
  auto plan = fault::FaultPlan::Parse(cfg.fault_spec);
  if (!plan.ok()) return plan.status();

  ChaosReport report;
  fault::FaultInjector injector(*plan, cfg.seed, &report.metrics);

  SimClock clock;
  stream::Broker broker(clock);
  auto created = broker.CreateTopic("chaos", {.partitions = cfg.partitions});
  if (!created.ok()) return created;

  // Produce the whole workload up front (producer-path chaos is exercised
  // separately by RunProducerChaos; this soak stresses the consume side).
  for (const auto& e : MakeWorkload(cfg)) {
    auto r = broker.Produce("chaos", stream::Record::Make(e.key, e.Encode(), e.event_time));
    if (!r.ok()) return r.status();
    clock.Advance(Duration::Millis(1));
  }

  stream::CheckpointedJob job(broker, "chaos", "chaos-job",
                              MakeFactory(&report.results), cfg.checkpoint_every);
  broker.set_fault_injector(&injector);
  job.set_fault_injector(&injector);

  const std::size_t cap = cfg.max_pump_iterations != 0
                              ? cfg.max_pump_iterations
                              : 1000 + (cfg.records / std::max<std::size_t>(1, cfg.batch) + 1) * 200;
  std::size_t iterations = 0;
  while (true) {
    if (++iterations > cap) {
      report.wedged = true;
      break;
    }
    auto n = job.Pump(cfg.batch);
    if (!n.ok()) return n.status();
    if (job.Lag() == 0 && !job.crashed()) break;
    if (*n == 0 && !job.crashed()) {
      // Nothing polled but records remain uncommitted: either an injected
      // fetch-error blip (retry the poll) or an uncommitted tail / torn
      // checkpoint write (retry the commit). Both resolve by looping.
      auto s = job.Checkpoint();
      if (!s.ok() && s.code() != StatusCode::kUnavailable) return s;
    }
  }

  // A crash on the very last record leaves a committed-but-crashed job;
  // recover so the pipeline can flush its final windows.
  if (job.crashed()) {
    auto s = job.Recover();
    if (!s.ok()) return s;
  }
  job.pipeline()->Flush();

  report.stats = job.stats();
  report.fault_events = injector.total_injected();
  report.fault_opportunities = injector.opportunities();
  report.fault_log = injector.events();
  const std::uint64_t unique =
      report.stats.records_processed - report.stats.records_replayed;
  report.goodput = report.stats.records_processed == 0
                       ? 0.0
                       : static_cast<double>(unique) /
                             static_cast<double>(report.stats.records_processed);
  return report;
}

Expected<ProducerChaosReport> RunProducerChaos(std::size_t records,
                                               const std::string& fault_spec,
                                               std::uint64_t seed) {
  auto plan = fault::FaultPlan::Parse(fault_spec);
  if (!plan.ok()) return plan.status();

  fault::FaultInjector injector(*plan, seed);
  SimClock clock;
  stream::Broker broker(clock);
  auto created = broker.CreateTopic("produce", {.partitions = 2});
  if (!created.ok()) return created;
  broker.set_fault_injector(&injector);

  ProducerChaosReport report;
  constexpr std::size_t kMaxSendAttempts = 16;
  for (std::size_t i = 0; i < records; ++i) {
    const std::string key = "r" + std::to_string(i);
    for (std::size_t attempt = 0; attempt < kMaxSendAttempts; ++attempt) {
      ++report.attempts;
      auto r = broker.Produce("produce",
                              stream::Record::MakeText(key, "payload", TimePoint{}));
      if (r.ok()) break;
      if (r.status().code() != StatusCode::kUnavailable) return r.status();
      ++report.retries;
    }
  }

  // Audit the log: every key must have landed at least once; extra copies
  // are the torn-append duplicates.
  auto topic = broker.GetTopic("produce");
  if (!topic.ok()) return topic.status();
  std::map<std::string, std::uint64_t> copies;
  std::uint64_t appended = 0;
  for (stream::PartitionId p = 0; p < (*topic)->partition_count(); ++p) {
    const auto& part = (*topic)->partition(p);
    auto fetched = part.Fetch(part.log_start_offset(), part.size());
    if (!fetched.ok()) return fetched.status();
    for (const auto& sr : *fetched) {
      ++copies[sr.record.key];
      ++appended;
    }
  }
  for (std::size_t i = 0; i < records; ++i) {
    if (!copies.contains("r" + std::to_string(i))) ++report.lost;
  }
  report.duplicates = appended - (records - report.lost);
  return report;
}

}  // namespace arbd::scenarios
