#include "scenarios/replay.h"

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "geo/city.h"
#include "scenarios/tourism.h"
#include "stream/consumer.h"
#include "stream/log.h"
#include "stream/segment.h"

namespace arbd::scenarios {

namespace {

constexpr char kReplayTopic[] = "replay.sessions";

std::string TouristKey(std::size_t u) { return "t" + std::to_string(u); }

// Tourist sessions are staggered so partitions interleave tourists — the
// seek path then has to cope with event times that are not globally
// monotone within a partition, like real multi-device ingest.
TimePoint SessionStart(std::size_t u) {
  return TimePoint::FromMillis(static_cast<std::int64_t>(u) * 37);
}

struct SessionEvent {
  std::int64_t event_ns = 0;
  std::string payload;
};

}  // namespace

SessionReplayReport RunSessionReplay(const SessionReplayConfig& cfg) {
  // Install the requested seal target for the duration of the run; the
  // differential callers flip this between 0 and a small value to prove
  // replay output is independent of segmentation.
  const std::size_t prev_target = stream::SegmentBytesTarget();
  stream::SetSegmentBytesTarget(cfg.segment_bytes);

  SessionReplayReport rep;
  SimClock clock;
  stream::Broker broker(clock);
  stream::TopicConfig tc;
  tc.partitions = cfg.partitions;
  (void)broker.CreateTopic(kReplayTopic, tc);

  const geo::CityModel city =
      geo::CityModel::Generate(geo::CityConfig{}, cfg.seed ^ 0xC17Full);
  PortalGame game(city, /*capture_range_m=*/25.0, cfg.seed);
  const auto& pois = city.pois().All();

  // --- tour: every step, every tourist emits one session event ----------
  std::vector<std::vector<SessionEvent>> originals(cfg.tourists);
  Rng rng(cfg.seed ^ 0x5e55101ULL);
  for (std::size_t s = 0; s < cfg.events_per_tourist; ++s) {
    for (std::size_t u = 0; u < cfg.tourists; ++u) {
      // Seeded hop across the POI map; captures come from the shared
      // portal game so payloads depend on every tourist's history.
      const geo::Poi* poi = pois[rng.NextBelow(pois.size())];
      const auto captured = game.Visit(TouristKey(u), poi->pos);
      const TimePoint event_time =
          SessionStart(u) + Duration::Nanos(cfg.step.nanos() * static_cast<std::int64_t>(s));
      const std::string payload = "s=" + std::to_string(s) + ";poi=" +
                                  std::to_string(poi->id) + ";cap=" +
                                  std::to_string(captured.size());
      auto r = broker.Produce(kReplayTopic,
                              stream::Record::MakeText(TouristKey(u), payload, event_time));
      if (r.ok()) {
        ++rep.produced;
        originals[u].push_back(SessionEvent{event_time.nanos(), payload});
      }
    }
    clock.Advance(cfg.step);
  }

  auto topic = broker.GetTopic(kReplayTopic);
  if (topic.ok()) {
    for (stream::PartitionId p = 0; p < (*topic)->partition_count(); ++p) {
      rep.sealed_segments += (*topic)->partition(p).sealed_segment_count();
    }
  }

  // --- replay 1: QueryTime over each session window ----------------------
  BinaryWriter fold;
  fold.WriteU64(cfg.seed);
  fold.WriteU64(rep.produced);
  for (std::size_t u = 0; u < cfg.tourists; ++u) {
    const std::string key = TouristKey(u);
    const TimePoint lo = SessionStart(u);
    const TimePoint hi =
        lo + Duration::Nanos(cfg.step.nanos() *
                             static_cast<std::int64_t>(cfg.events_per_tourist));
    const stream::PartitionId p =
        topic.ok() ? (*topic)->PartitionFor(key) : 0;
    auto res = broker.QueryTime(kReplayTopic, p, lo, hi);
    if (!res.ok()) continue;
    rep.query_stats.Merge(res->stats);
    std::size_t matched = 0;
    bool clean = true;
    for (const stream::StoredRecord& sr : res->rows) {
      if (sr.record.key != key) continue;  // co-resident tourists
      ++rep.replayed_rows;
      if (matched >= originals[u].size() ||
          sr.record.event_time.nanos() != originals[u][matched].event_ns ||
          sr.record.TextPayload() != originals[u][matched].payload) {
        ++rep.mismatches;
        clean = false;
      } else {
        fold.WriteString(key);
        fold.WriteI64(originals[u][matched].event_ns);
        fold.WriteString(originals[u][matched].payload);
      }
      ++matched;
    }
    if (clean && matched == originals[u].size()) ++rep.sessions_verified;
  }
  rep.digest = Fnv1a(fold.bytes());

  // --- replay 2: SeekToTimestamp + Poll to the end ------------------------
  stream::ConsumerGroup group(broker, "replay-readers", kReplayTopic);
  auto consumer = group.Join("replayer");
  if (consumer.ok()) {
    const TimePoint t_mid =
        TimePoint::FromMillis(0) +
        Duration::Nanos(cfg.step.nanos() *
                        static_cast<std::int64_t>(cfg.events_per_tourist / 2));
    (void)(*consumer)->SeekToTimestamp(t_mid);
    std::map<std::string, std::vector<SessionEvent>> polled;
    for (;;) {
      const auto rows = (*consumer)->Poll(256);
      if (rows.empty()) break;
      for (const auto& sr : rows) {
        polled[sr.record.key].push_back(
            SessionEvent{sr.record.event_time.nanos(), sr.record.TextPayload()});
      }
      rep.seek_replays += rows.size();
    }
    for (std::size_t u = 0; u < cfg.tourists; ++u) {
      const auto& orig = originals[u];
      const auto& got = polled[TouristKey(u)];
      // (a) the polled rows must be a contiguous suffix of the session,
      if (got.size() > orig.size()) {
        ++rep.seek_errors;
        continue;
      }
      const std::size_t suffix_at = orig.size() - got.size();
      bool suffix_ok = true;
      for (std::size_t i = 0; i < got.size(); ++i) {
        if (got[i].event_ns != orig[suffix_at + i].event_ns ||
            got[i].payload != orig[suffix_at + i].payload) {
          suffix_ok = false;
          break;
        }
      }
      // (b) …containing every event at/after the seek timestamp.
      std::size_t first_at_or_after = orig.size();
      for (std::size_t i = 0; i < orig.size(); ++i) {
        if (orig[i].event_ns >= t_mid.nanos()) {
          first_at_or_after = i;
          break;
        }
      }
      if (!suffix_ok || suffix_at > first_at_or_after) ++rep.seek_errors;
    }
  }

  stream::SetSegmentBytesTarget(prev_target);
  return rep;
}

namespace {

constexpr char kVitalsTopic[] = "replay.vitals";

std::string PatientKey(std::size_t u) { return "p" + std::to_string(u); }

struct VitalsSample {
  std::int64_t event_ns = 0;
  std::string payload;
  bool anomalous = false;
};

}  // namespace

AnomalyReplayReport RunAnomalyReplay(const AnomalyReplayConfig& cfg) {
  const std::size_t prev_target = stream::SegmentBytesTarget();
  stream::SetSegmentBytesTarget(cfg.segment_bytes);

  AnomalyReplayReport rep;
  SimClock clock;
  stream::Broker broker(clock);
  stream::TopicConfig tc;
  tc.partitions = cfg.partitions;
  (void)broker.CreateTopic(kVitalsTopic, tc);

  // --- ground truth: seeded episodes in disjoint timeline blocks --------
  struct Episode {
    std::size_t patient = 0;
    std::size_t start_s = 0;  // first elevated sample index
    std::size_t end_s = 0;    // one past the last
  };
  Rng rng(cfg.seed ^ 0xa40a1ULL);
  const std::size_t episodes_per =
      std::min(cfg.episodes_per_patient,
               cfg.episode_samples == 0
                   ? std::size_t{0}
                   : cfg.samples_per_patient / std::max<std::size_t>(cfg.episode_samples, 1));
  std::vector<Episode> episodes;
  // in_episode[u][s]: sample s of patient u reads elevated.
  std::vector<std::vector<bool>> elevated(
      cfg.patients, std::vector<bool>(cfg.samples_per_patient, false));
  for (std::size_t u = 0; u < cfg.patients; ++u) {
    const std::size_t block =
        episodes_per == 0 ? 0 : cfg.samples_per_patient / episodes_per;
    for (std::size_t e = 0; e < episodes_per; ++e) {
      const std::size_t lo = e * block;
      const std::size_t slack = block > cfg.episode_samples
                                    ? block - cfg.episode_samples
                                    : 0;
      const std::size_t start = lo + (slack > 0 ? rng.NextBelow(slack) : 0);
      episodes.push_back(
          {u, start, std::min(start + cfg.episode_samples, cfg.samples_per_patient)});
      for (std::size_t s = start; s < episodes.back().end_s; ++s) elevated[u][s] = true;
    }
  }
  rep.episodes = episodes.size();

  // --- the ward streams: every patient samples at the same instants ----
  // (that simultaneity is what makes any replay window cross sessions).
  std::vector<std::vector<VitalsSample>> originals(cfg.patients);
  std::vector<double> resting(cfg.patients);
  for (std::size_t u = 0; u < cfg.patients; ++u) {
    resting[u] = 60.0 + static_cast<double>(rng.NextBelow(16));
  }
  for (std::size_t s = 0; s < cfg.samples_per_patient; ++s) {
    const TimePoint t =
        TimePoint::FromMillis(0) +
        Duration::Nanos(cfg.sample_period.nanos() * static_cast<std::int64_t>(s));
    for (std::size_t u = 0; u < cfg.patients; ++u) {
      const double noise = static_cast<double>(rng.NextBelow(7)) - 3.0;
      const double hr = resting[u] + noise + (elevated[u][s] ? 55.0 : 0.0);
      const std::string payload =
          "s=" + std::to_string(s) + ";hr=" + std::to_string(static_cast<int>(hr)) +
          (elevated[u][s] ? ";anom=1" : "");
      auto r = broker.Produce(kVitalsTopic,
                              stream::Record::MakeText(PatientKey(u), payload, t));
      if (r.ok()) {
        ++rep.produced;
        originals[u].push_back(VitalsSample{t.nanos(), payload, elevated[u][s]});
      }
    }
    clock.Advance(cfg.sample_period);
  }

  auto topic = broker.GetTopic(kVitalsTopic);
  if (topic.ok()) {
    for (stream::PartitionId p = 0; p < (*topic)->partition_count(); ++p) {
      rep.sealed_segments += (*topic)->partition(p).sealed_segment_count();
    }
  }

  // --- replay: each episode's window, across EVERY partition ------------
  BinaryWriter fold;
  fold.WriteU64(cfg.seed);
  fold.WriteU64(rep.produced);
  for (const Episode& ep : episodes) {
    const std::string key = PatientKey(ep.patient);
    const TimePoint lo =
        TimePoint::FromMillis(0) +
        Duration::Nanos(cfg.sample_period.nanos() * static_cast<std::int64_t>(ep.start_s)) -
        cfg.pre_window;
    const TimePoint hi =
        TimePoint::FromMillis(0) +
        Duration::Nanos(cfg.sample_period.nanos() * static_cast<std::int64_t>(ep.end_s)) +
        cfg.post_window;
    // What the patient's chart must show in that window.
    std::vector<const VitalsSample*> expected;
    for (const VitalsSample& v : originals[ep.patient]) {
      if (v.event_ns >= lo.nanos() && v.event_ns < hi.nanos()) expected.push_back(&v);
    }

    std::size_t matched = 0, anomalous_matched = 0;
    bool clean = true;
    for (stream::PartitionId p = 0; p < cfg.partitions; ++p) {
      auto res = broker.QueryTime(kVitalsTopic, p, lo, hi);
      ++rep.windows_replayed;
      if (!res.ok()) {
        clean = false;
        continue;
      }
      rep.query_stats.Merge(res->stats);
      for (const stream::StoredRecord& sr : res->rows) {
        ++rep.rows_replayed;
        if (sr.record.key != key) {
          ++rep.cross_session_rows;  // a co-resident patient's row
          continue;
        }
        if (matched >= expected.size() ||
            sr.record.event_time.nanos() != expected[matched]->event_ns ||
            sr.record.TextPayload() != expected[matched]->payload) {
          ++rep.mismatches;
          clean = false;
        } else {
          if (expected[matched]->anomalous) {
            ++anomalous_matched;
            ++rep.anomalous_rows;
          }
          fold.WriteString(key);
          fold.WriteI64(expected[matched]->event_ns);
          fold.WriteString(expected[matched]->payload);
        }
        ++matched;
      }
    }
    // Verified = every expected row recovered in order, including the
    // full run of elevated samples.
    const std::size_t want_anomalous = ep.end_s - ep.start_s;
    if (clean && matched == expected.size() && anomalous_matched == want_anomalous) {
      ++rep.episodes_verified;
    }
  }
  rep.digest = Fnv1a(fold.bytes());

  stream::SetSegmentBytesTarget(prev_target);
  return rep;
}

}  // namespace arbd::scenarios
