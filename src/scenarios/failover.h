// Failover soak harness (E22): drives the full exactly-once stack —
// IdempotentProducer -> replicated Broker partitions -> ConsumerGroup ->
// CheckpointedJob with a transactional sink — while replica leaders are
// killed mid-produce (injected `nodecrash` faults) and mid-run by an
// explicit seeded kill schedule. The robustness contract it audits:
//
//   - zero committed loss: every acknowledged record is in the committed
//     log (identity = its unique event time);
//   - zero duplicates: no identity appears twice in the log, and no
//     window result reaches the transactional sink twice;
//   - determinism: the committed digest, high-watermark histories, and
//     fired-fault log are pure functions of (config, seeds) — and with a
//     generous producer retry budget the committed digest is identical
//     across replication factors and crash schedules, because every
//     record eventually commits in producer order.
//
// Shared by bench_replication (E22 gates), the replication determinism
// suite, and the 100-seed failover soak tests.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "fault/injector.h"
#include "scenarios/chaos.h"
#include "stream/recovery.h"
#include "stream/replication.h"

namespace arbd::scenarios {

struct FailoverConfig {
  std::size_t records = 2000;
  std::uint32_t partitions = 2;
  std::uint32_t replication_factor = 3;
  std::size_t checkpoint_every = 16;
  std::size_t batch = 32;          // records pumped per job iteration
  std::size_t produce_chunk = 16;  // records produced between pumps
  // FaultPlan spec (plan.h grammar) — `nodecrash@p=..,x=..` kills the
  // partition leader mid-produce; crash/ckptfail/etc. hit the job as in
  // the chaos soak. Empty = fault-free baseline.
  std::string fault_spec;
  std::uint64_t seed = 1;        // workload (keys, values, event times)
  std::uint64_t fault_seed = 1;  // injected faults + explicit kill schedule
  // Producer retry budget per record (total attempts). Must exceed the
  // crash restore window for lossless runs; small values turn denials
  // into the availability measurement instead.
  std::size_t producer_attempts = 40;
  // Explicit kill schedule: before each pump, with this probability crash
  // the leader of a seeded-random partition (the "mid-checkpoint" kill —
  // the job is between checkpoints whenever it fires).
  double kill_p = 0.0;
  std::size_t kill_restore_ops = 8;  // restore window for explicit kills
  std::size_t max_pump_iterations = 0;  // wedge guard; 0 = automatic bound
};

struct FailoverReport {
  // Producer side.
  std::uint64_t offered = 0;   // records the driver tried to send
  std::uint64_t acked = 0;     // records acknowledged (possibly after retries)
  std::uint64_t denied = 0;    // records that exhausted the retry budget
  std::uint64_t producer_retries = 0;
  double availability = 0.0;   // acked / offered

  // Replication layer (aggregated over partitions).
  stream::ReplicationStats replication;
  // Per-partition (epoch, high-watermark) histories, in advance order.
  std::vector<std::vector<stream::ReplicatedPartition::HwStep>> hw_histories;

  // Committed-log audit (identity = unique event time per record).
  std::uint64_t committed_records = 0;
  std::uint64_t committed_loss = 0;   // acked identities missing (must be 0)
  std::uint64_t log_duplicates = 0;   // identities appearing twice (must be 0)
  std::uint64_t committed_digest = 0; // CommittedTopicDigest over the topic

  // Exactly-once output audit.
  std::uint64_t outputs_delivered = 0;
  std::uint64_t output_duplicates = 0;  // identical window delivered twice (must be 0)
  ChaosResultTable results;             // final windows, for baseline equality

  stream::RecoveryStats job;
  std::vector<fault::FaultEvent> fault_log;
  bool wedged = false;
};

Expected<FailoverReport> RunFailoverSoak(const FailoverConfig& cfg);

}  // namespace arbd::scenarios
