#include "scenarios/autoscale.h"

#include <algorithm>
#include <map>
#include <vector>

#include "stream/consumer.h"
#include "stream/dataflow.h"
#include "stream/log.h"
#include "stream/replication.h"

namespace arbd::scenarios {
namespace {

double Percentile(std::vector<std::uint64_t> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(xs.size()) - 1.0,
                       q * static_cast<double>(xs.size())));
  return static_cast<double>(xs[idx]);
}

}  // namespace

Expected<AutoscaleSoakReport> RunAutoscaleSoak(const AutoscaleSoakConfig& acfg) {
  // This loop is RunClusterSoak's, line for line, plus four read-only or
  // autoscale-gated insertions (armed autoscaler, per-turn hot-rate
  // sample, SyncPartitions, sealed-aware audits). With autoscale off each
  // insertion is a no-op, so the committed digest matches the flat soak.
  const ClusterSoakConfig& cfg = acfg.base;
  AutoscaleSoakReport out;
  ClusterSoakReport& report = out.soak;

  SimClock clock;
  stream::Broker broker(clock);
  cluster::ClusterConfig cc;
  cc.brokers = std::max<std::uint32_t>(cfg.brokers, 1);
  cc.seed = cfg.seed ^ 0xc1a57e12ULL;
  cc.default_restore_ticks = std::max<std::uint64_t>(cfg.restore_ticks, 1);
  cc.autoscale = acfg.thresholds;
  cc.autoscale.enabled = acfg.autoscale;
  cluster::BrokerCluster cluster(broker, cc);

  fault::FaultInjector* injector = nullptr;
  std::unique_ptr<fault::FaultInjector> injector_holder;
  if (!cfg.fault_spec.empty()) {
    auto plan = fault::FaultPlan::Parse(cfg.fault_spec);
    if (!plan.ok()) return plan.status();
    injector_holder = std::make_unique<fault::FaultInjector>(*plan, cfg.fault_seed);
    injector = injector_holder.get();
    cluster.set_fault_injector(injector);
  }

  stream::TopicConfig tc;
  tc.partitions = cfg.partitions;
  tc.replication_factor = std::max<std::uint32_t>(cfg.replication_factor, 1);
  auto created = cluster.CreateTopic("cluster.events", tc);
  if (!created.ok()) return created;

  fault::RetryPolicy retry;
  retry.max_attempts = std::max<std::size_t>(cfg.producer_attempts, 1);
  cluster::ClusterProducer producer(cluster, broker, "cluster.events", retry,
                                    cfg.seed ^ 0x9dULL);

  stream::ConsumerGroup group(broker, "cluster.soak", "cluster.events");
  const std::size_t members = std::max<std::uint32_t>(cfg.consumers, 1);
  std::vector<stream::Consumer*> consumers;
  std::vector<bool> evicted(members, false);
  std::vector<std::vector<std::int64_t>> buffers(members);
  for (std::size_t i = 0; i < members; ++i) {
    auto joined = group.Join("member-" + std::to_string(i));
    if (!joined.ok()) return joined.status();
    consumers.push_back(*joined);
  }

  const auto records = MakeFleetWorkload(cfg.fleet);
  std::vector<std::int64_t> acked_ids;
  acked_ids.reserve(records.size());
  std::map<std::int64_t, std::uint64_t> delivered;

  const std::size_t chunk = std::max<std::size_t>(cfg.produce_chunk, 1);
  const std::size_t cap =
      cfg.max_turns != 0
          ? cfg.max_turns
          : 1000 + (records.size() / chunk + 1) * 50 +
                static_cast<std::size_t>(cfg.brokers) *
                    static_cast<std::size_t>(cfg.restore_ticks + cfg.kill_spacing_ticks);

  // Hot-partition pressure sampling: per turn, the max committed-ingest
  // delta across live leaves, tagged with the split count at sample time.
  // "Before" is the unsplit regime; "after" is the stabilized regime (the
  // final split count), so cascade intermediates — a hot child measured
  // one tick before it splits again — pollute neither bucket.
  std::vector<stream::Offset> last_end;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> hot_samples;

  std::size_t next = 0;
  std::uint32_t next_kill = 0;
  std::size_t turn = 0;

  while (next < records.size() || group.TotalLag() > 0) {
    if (++turn > cap) {
      report.wedged = true;
      break;
    }
    const bool split_now = !cluster.MinoritySide().empty();

    const std::size_t until = std::min(records.size(), next + chunk);
    for (; next < until; ++next) {
      ++report.offered;
      auto sent = producer.Send(records[next]);
      if (sent.ok()) {
        ++report.acked;
        if (split_now) ++report.acked_during_split;
        acked_ids.push_back(records[next].event_time.nanos());
      } else if (sent.status().code() == StatusCode::kUnavailable) {
        ++report.denied;
      } else {
        return sent.status();
      }
      clock.Advance(Duration::Millis(1));
    }

    // Read-only hot-rate sample over this turn's ingest.
    {
      auto t = broker.GetTopic("cluster.events");
      if (!t.ok()) return t.status();
      last_end.resize((*t)->partition_count(), 0);
      std::uint64_t hot = 0;
      for (const stream::PartitionId p : cluster.LiveLeaves("cluster.events")) {
        const stream::Offset end = (*t)->partition(p).end_offset();
        hot = std::max(hot, static_cast<std::uint64_t>(end - last_end[p]));
        last_end[p] = end;
      }
      hot_samples.emplace_back(cluster.stats().splits, hot);
    }

    for (std::size_t i = 0; i < members; ++i) {
      for (const auto& sr : consumers[i]->Poll(cfg.poll_batch)) {
        buffers[i].push_back(sr.record.event_time.nanos());
      }
    }

    cluster.Tick();
    if (cfg.rolling_kill) {
      while (next_kill < cc.brokers &&
             cluster.now_tick() >=
                 cfg.kill_start_tick + next_kill * cfg.kill_spacing_ticks) {
        auto killed = cluster.KillBroker(next_kill, cfg.restore_ticks);
        if (!killed.ok()) return killed;
        ++next_kill;
      }
    }
    if (cfg.netsplit_at_turn != 0 && turn == cfg.netsplit_at_turn) {
      auto split = cluster.NetSplit(cfg.netsplit_heal_ticks);
      if (!split.ok()) return split;
    }
    if (!cluster.MinoritySide().empty()) report.minority_fenced = true;

    // A split or merge added partitions: the group rebalances onto them
    // under the usual generation fence (in-flight polls of the old
    // generation are discarded at commit and redelivered). With no
    // autoscale action this is a no-op — it never touches the generation.
    group.SyncPartitions();

    for (std::size_t i = 0; i < members; ++i) {
      const auto home = static_cast<cluster::BrokerId>(i % cc.brokers);
      const auto minority = cluster.MinoritySide();
      const bool isolated =
          std::find(minority.begin(), minority.end(), home) != minority.end();
      const bool alive = cluster.BrokerUp(home) && !isolated;
      if (!alive && !evicted[i]) {
        auto s = group.Evict(consumers[i]->id());
        if (!s.ok()) return s;
        evicted[i] = true;
        ++report.evictions;
      } else if (alive && evicted[i]) {
        auto s = group.Rejoin(consumers[i]->id());
        if (!s.ok()) return s;
        evicted[i] = false;
        ++report.rejoins;
      }
    }

    for (std::size_t i = 0; i < members; ++i) {
      if (buffers[i].empty()) continue;
      if (consumers[i]->Commit().ok()) {
        for (const std::int64_t id : buffers[i]) ++delivered[id];
      }
      buffers[i].clear();
    }
  }

  // --- audits (identical to the flat soak; sealed parents are still
  // fetchable, so the committed sweep covers parent + children) ---------
  auto topic = broker.GetTopic("cluster.events");
  if (!topic.ok()) return topic.status();
  std::map<std::int64_t, std::uint64_t> copies;
  for (stream::PartitionId p = 0; p < (*topic)->partition_count(); ++p) {
    const auto& part = (*topic)->partition(p);
    auto fetched = part.Fetch(part.log_start_offset(), part.size());
    if (!fetched.ok()) return fetched.status();
    for (const auto& sr : *fetched) {
      ++copies[sr.record.event_time.nanos()];
      ++report.committed_records;
    }
  }
  for (const std::int64_t id : acked_ids) {
    if (!copies.contains(id)) ++report.committed_loss;
  }
  for (const auto& [id, n] : copies) {
    if (n > 1) report.log_duplicates += n - 1;
  }
  for (const auto& [id, n] : delivered) {
    report.delivered += n;
    if (n > 1) report.delivered_duplicates += n - 1;
  }
  if (!report.wedged) {
    for (const auto& [id, n] : copies) {
      if (!delivered.contains(id)) ++report.delivery_gaps;
    }
  }

  report.producer_retries = producer.retries();
  report.producer_rerouted = producer.rerouted();
  report.availability = report.offered == 0
                            ? 1.0
                            : static_cast<double>(report.acked) /
                                  static_cast<double>(report.offered);
  report.committed_digest = stream::CommittedTopicDigest(**topic);

  report.fenced_commits = group.fenced_commit_count();
  report.rebalances = group.rebalance_count();
  report.generation = group.generation();

  report.cluster = cluster.stats();
  report.controller_events = cluster.controller().appended();
  report.controller_state_digest = cluster.controller().StateDigest();
  auto replay = cluster.controller().ReplayDigest();
  if (!replay.ok()) return replay.status();
  report.controller_replay_digest = *replay;
  report.controller_consistent =
      report.controller_replay_digest == report.controller_state_digest;

  out.splits = cluster.stats().splits;
  out.merges = cluster.stats().merges;
  out.producer_handoffs = producer.handoffs();
  out.final_partitions = (*topic)->partition_count();
  out.live_leaves =
      static_cast<std::uint32_t>(cluster.LiveLeaves("cluster.events").size());
  std::vector<std::uint64_t> hot_before, hot_after;
  for (const auto& [splits_at_sample, hot] : hot_samples) {
    if (splits_at_sample == 0) hot_before.push_back(hot);
    if (splits_at_sample == out.splits) hot_after.push_back(hot);
  }
  out.hot_p99_before = Percentile(hot_before, 0.99);
  out.hot_p99_after = Percentile(hot_after, 0.99);
  return out;
}

}  // namespace arbd::scenarios
