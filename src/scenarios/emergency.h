// Emergency response (§3.4): "a virtual bird's eye view directly overlaid
// on an emergency staff's vision will greatly assist in the search and
// rescue of persons trapped in a burning or collapsed building."
//
// A collapsed structure is a grid of cells; victims are hidden in unknown
// cells. Searchers clear cells one at a time. Without AR they sweep
// blindly; with the ARBD bird's-eye overlay they walk toward the highest-
// probability cells first, where the probability map is aggregated from
// in-building IoT sensors (the §3.4 "torrents of data from smart civil
// infrastructure") — noisy per-cell detections fused across sensors.
#pragma once

#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"

namespace arbd::scenarios {

struct EmergencyConfig {
  int grid_w = 12;
  int grid_h = 12;
  std::size_t victims = 5;
  std::size_t searchers = 2;
  Duration cell_clear_time = Duration::Seconds(20);  // search one cell
  double cell_move_time_s = 3.0;                     // per cell of travel
  // IoT sensing quality: per-sensor probability of registering a victim in
  // its cell, and of a false detection in an empty cell.
  std::size_t sensors_per_cell = 3;
  double sensor_hit_rate = 0.6;
  double sensor_false_rate = 0.08;
  bool ar_birdseye = true;  // the toggle under test
  Duration time_limit = Duration::Seconds(3600);
};

struct EmergencyMetrics {
  std::size_t victims_found = 0;
  double mean_rescue_time_s = 0.0;   // over found victims
  double last_rescue_time_s = 0.0;
  std::size_t cells_searched = 0;
  double find_all_fraction = 0.0;    // victims found / victims
};

EmergencyMetrics RunSearchAndRescue(const EmergencyConfig& cfg, std::uint64_t seed);

}  // namespace arbd::scenarios
