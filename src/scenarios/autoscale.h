// Partition-autoscaling soak harness (E26): the E24 cluster soak with the
// controller-driven split/merge autoscaler enabled and a fleet flash
// crowd (surge over the top POIs) driving a hot partition past the split
// threshold mid-run. The harness audits the same exactly-once contract as
// E24 — zero committed loss, zero duplicate delivery, zero delivery gaps,
// controller replay == live state — across split/merge handoffs, plus the
// scaling claim itself: the per-turn ingest of the hottest live partition,
// sampled before the first split and after it, drops once the crowd is
// spread over the children.
//
// With `autoscale = false` the run is the flat E24 soak, record for
// record: same workload, same producer draws, same tick schedule — the
// committed digest must equal RunClusterSoak's on the same base config
// (the ARBD_AUTOSCALE=0 byte-identity gate).
#pragma once

#include <cstdint>

#include "scenarios/cluster.h"

namespace arbd::scenarios {

struct AutoscaleSoakConfig {
  // Workload, kill schedule, consumers, retry budget — E24's knobs.
  ClusterSoakConfig base;

  // Autoscaler toggle + thresholds. `thresholds.enabled` is ignored; the
  // toggle below is what arms the cluster.
  bool autoscale = true;
  cluster::AutoscaleConfig thresholds;
};

struct AutoscaleSoakReport {
  // Everything the flat soak audits (loss/dups/gaps/digests/stats).
  ClusterSoakReport soak;

  // Autoscaler outcome.
  std::uint64_t splits = 0;
  std::uint64_t merges = 0;
  std::uint64_t producer_handoffs = 0;  // sends rerouted off a sealed partition
  std::uint32_t final_partitions = 0;   // total ever created (incl. sealed)
  std::uint32_t live_leaves = 0;        // partitions currently routable

  // Hot-partition pressure: per-turn max ingest across live leaves,
  // p99 over the turns before the first split vs the turns after it.
  // (Both are over the whole run when no split fires.)
  double hot_p99_before = 0.0;
  double hot_p99_after = 0.0;
};

Expected<AutoscaleSoakReport> RunAutoscaleSoak(const AutoscaleSoakConfig& cfg);

}  // namespace arbd::scenarios
