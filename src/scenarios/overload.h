// Overload soak harness (E19): drives an open-loop, priority-mixed record
// workload through the broker at a configurable multiple of service
// capacity and measures what the QoS stack buys. With QoS on, each
// priority class gets a budgeted topic, admission sheds lowest-class-first
// under queue pressure, and a degradation ladder cheapens service under
// sustained SLO violation; with QoS off, one unbounded FIFO queue absorbs
// everything and latency diverges with offered load — the contrast the
// paper's §4.1 timeliness argument predicts.
//
// Deterministic: simulated time, Poisson arrivals from a seeded Rng, and
// stall faults from a seeded FaultInjector plan, so a (config, seed) pair
// replays bit-for-bit. Shared by bench_overload and the chaos-overload
// property tests.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "fault/injector.h"
#include "qos/admission.h"
#include "qos/degradation.h"

namespace arbd::scenarios {

struct OverloadConfig {
  // Offered load as a multiple of level-0 service capacity (1.0 = arrivals
  // match what the server can drain; 4.0 = sustained 4× saturation).
  double load = 1.0;
  double capacity_per_s = 4000.0;  // records served per second at level 0
  Duration duration = Duration::Seconds(3);
  Duration tick = Duration::Millis(1);

  // QoS on: per-class budgeted topics + admission + degradation ladder.
  // QoS off: one unbudgeted FIFO topic, everything admitted.
  bool qos = true;
  std::size_t class_budget_records = 64;  // per-class topic budget (QoS mode)

  // Arrival mix by priority class (frame, interactive, background);
  // normalized internally. Frame-critical work is deliberately the
  // minority share — the tracker produces a bounded stream, the analytics
  // firehose is what scales with users.
  std::array<double, qos::kPriorityClasses> mix = {0.1, 0.3, 0.6};

  qos::AdmissionConfig admission;
  // SLO for violation counting + degradation. 10ms (not the 33ms frame
  // budget): the ladder watches *queue* latency, which must stay well
  // under the frame budget for frame-relevant results to land in time.
  qos::LadderConfig ladder{.slo = Duration::Millis(10)};

  // FaultPlan spec; `stall@ms=…,p=…` pauses service (the injection point
  // is service.tick). Empty = fault-free.
  std::string fault_spec;
  std::uint64_t seed = 1;

  // Drain-phase tick cap (wedge guard). 0 = generous automatic bound.
  std::size_t max_drain_ticks = 0;
};

struct OverloadClassStats {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;   // passed admission AND the broker budget
  std::uint64_t shed = 0;       // admission controller said no
  std::uint64_t rejected = 0;   // broker backpressure (budget backstop)
  std::uint64_t processed = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

struct OverloadReport {
  std::array<OverloadClassStats, qos::kPriorityClasses> classes;
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t processed = 0;
  // Admitted records never served by the end of the drain (must be 0
  // unless the wedge guard tripped).
  std::uint64_t lost = 0;
  // Processed / sim-seconds of the loaded phase: the sustained service
  // rate. Under overload a healthy server holds this at capacity.
  double goodput_per_s = 0.0;
  double aggregate_p50_ms = 0.0;
  double aggregate_p99_ms = 0.0;
  // Ticks on which service latency exceeded cfg.ladder.slo.
  std::uint64_t slo_violations = 0;
  std::size_t max_queue_depth = 0;   // max total retained records, any tick
  // Ticks on which a budgeted topic held more than its budget (the broker
  // backstop makes this structurally 0; asserted by tests and the bench).
  std::uint64_t budget_violations = 0;
  std::uint64_t backpressure_rejects = 0;
  std::uint64_t priority_inversions = 0;
  int max_degradation_level = 0;
  std::uint64_t step_downs = 0;
  std::uint64_t step_ups = 0;
  std::uint64_t fault_events = 0;
  std::vector<fault::FaultEvent> fault_log;
  bool wedged = false;
  MetricRegistry metrics;  // qos.* exports from every layer
};

// Run a single constant-load soak: `duration` of offered load, then drain.
Expected<OverloadReport> RunOverloadSoak(const OverloadConfig& cfg);

// Piecewise-constant load profile for spike/recovery experiments. Each
// phase reuses `base` with its own load and duration; per-phase stats
// attribute each record to the phase during which it was *served*, so a
// recovery phase inherits the spike's backlog — exactly the effect the
// post-spike recovery check measures.
struct OverloadPhase {
  double load = 1.0;
  Duration duration = Duration::Seconds(1);
};

struct OverloadPhaseStats {
  double load = 0.0;
  std::uint64_t offered = 0;
  std::uint64_t processed = 0;
  double goodput_per_s = 0.0;
  double p99_ms = 0.0;  // frame-critical class in QoS mode, aggregate otherwise
};

struct OverloadSpikeReport {
  std::vector<OverloadPhaseStats> phases;
  OverloadReport overall;
};

Expected<OverloadSpikeReport> RunOverloadSpike(const OverloadConfig& base,
                                               const std::vector<OverloadPhase>& phases);

}  // namespace arbd::scenarios
