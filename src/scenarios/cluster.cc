#include "scenarios/cluster.h"

#include <algorithm>
#include <map>
#include <vector>

#include "stream/consumer.h"
#include "stream/dataflow.h"
#include "stream/log.h"
#include "stream/replication.h"

namespace arbd::scenarios {
namespace {

// Fleet events rendered as stream records: keyed by POI (hot partitions
// emerge from the Zipf hotspot skew), event time strictly increasing by
// generation order — each record's unique identity for the audits.
std::vector<stream::Record> MakeWorkload(const offload::FleetLoadConfig& fleet) {
  const auto load = offload::GenerateFleetLoad(fleet);
  std::vector<stream::Record> records;
  records.reserve(load.size());
  TimePoint t;
  for (const auto& e : load) {
    t += Duration::Millis(1);
    stream::Event ev;
    ev.key = "poi" + std::to_string(e.poi);
    ev.attribute = "report";
    ev.value = static_cast<double>(e.user);
    ev.event_time = t;
    records.push_back(stream::Record::Make(ev.key, ev.Encode(), ev.event_time));
  }
  return records;
}

}  // namespace

Expected<ClusterSoakReport> RunClusterSoak(const ClusterSoakConfig& cfg) {
  ClusterSoakReport report;

  SimClock clock;
  stream::Broker broker(clock);
  cluster::ClusterConfig cc;
  cc.brokers = std::max<std::uint32_t>(cfg.brokers, 1);
  cc.seed = cfg.seed ^ 0xc1a57e12ULL;
  cc.default_restore_ticks = std::max<std::uint64_t>(cfg.restore_ticks, 1);
  cluster::BrokerCluster cluster(broker, cc);

  fault::FaultInjector* injector = nullptr;
  std::unique_ptr<fault::FaultInjector> injector_holder;
  if (!cfg.fault_spec.empty()) {
    auto plan = fault::FaultPlan::Parse(cfg.fault_spec);
    if (!plan.ok()) return plan.status();
    injector_holder = std::make_unique<fault::FaultInjector>(*plan, cfg.fault_seed);
    injector = injector_holder.get();
    cluster.set_fault_injector(injector);
  }

  stream::TopicConfig tc;
  tc.partitions = cfg.partitions;
  tc.replication_factor = std::max<std::uint32_t>(cfg.replication_factor, 1);
  auto created = cluster.CreateTopic("cluster.events", tc);
  if (!created.ok()) return created;

  fault::RetryPolicy retry;
  retry.max_attempts = std::max<std::size_t>(cfg.producer_attempts, 1);
  cluster::ClusterProducer producer(cluster, broker, "cluster.events", retry,
                                    cfg.seed ^ 0x9dULL);

  // The consumer group: member i is homed on broker i % brokers — its
  // host dying evicts it mid-flight, the restore rejoins it.
  stream::ConsumerGroup group(broker, "cluster.soak", "cluster.events");
  const std::size_t members = std::max<std::uint32_t>(cfg.consumers, 1);
  std::vector<stream::Consumer*> consumers;
  std::vector<bool> evicted(members, false);
  // In-flight polled identities per member: counted as delivered only when
  // a successful commit covers them; discarded when the commit is fenced
  // (the surviving owners redeliver from the committed offsets).
  std::vector<std::vector<std::int64_t>> buffers(members);
  for (std::size_t i = 0; i < members; ++i) {
    auto joined = group.Join("member-" + std::to_string(i));
    if (!joined.ok()) return joined.status();
    consumers.push_back(*joined);
  }

  const auto records = MakeWorkload(cfg.fleet);
  std::vector<std::int64_t> acked_ids;
  acked_ids.reserve(records.size());
  std::map<std::int64_t, std::uint64_t> delivered;

  const std::size_t chunk = std::max<std::size_t>(cfg.produce_chunk, 1);
  const std::size_t cap =
      cfg.max_turns != 0
          ? cfg.max_turns
          : 1000 + (records.size() / chunk + 1) * 50 +
                static_cast<std::size_t>(cfg.brokers) *
                    static_cast<std::size_t>(cfg.restore_ticks + cfg.kill_spacing_ticks);

  std::size_t next = 0;
  std::uint32_t next_kill = 0;
  std::size_t turn = 0;

  while (next < records.size() || group.TotalLag() > 0) {
    if (++turn > cap) {
      report.wedged = true;
      break;
    }
    const bool split_now = !cluster.MinoritySide().empty();

    // 1. Produce a chunk through the rerouting producer. Retries tick
    // cluster time, so restore windows count down while a send waits out
    // a dead leader broker.
    const std::size_t until = std::min(records.size(), next + chunk);
    for (; next < until; ++next) {
      ++report.offered;
      auto sent = producer.Send(records[next]);
      if (sent.ok()) {
        ++report.acked;
        if (split_now) ++report.acked_during_split;
        acked_ids.push_back(records[next].event_time.nanos());
      } else if (sent.status().code() == StatusCode::kUnavailable) {
        ++report.denied;
      } else {
        return sent.status();
      }
      clock.Advance(Duration::Millis(1));
    }

    // 2. Every live member polls; its rows stay in flight until step 4's
    // commit decides their fate.
    for (std::size_t i = 0; i < members; ++i) {
      for (const auto& sr : consumers[i]->Poll(cfg.poll_batch)) {
        buffers[i].push_back(sr.record.event_time.nanos());
      }
    }

    // 3. Cluster time advances — and the kill/split schedules fire — with
    // those polls in flight, so a broker death lands exactly in the
    // poll-to-commit window the generation fence protects.
    cluster.Tick();
    if (cfg.rolling_kill) {
      while (next_kill < cc.brokers &&
             cluster.now_tick() >=
                 cfg.kill_start_tick + next_kill * cfg.kill_spacing_ticks) {
        auto killed = cluster.KillBroker(next_kill, cfg.restore_ticks);
        if (!killed.ok()) return killed;
        ++next_kill;
      }
    }
    if (cfg.netsplit_at_turn != 0 && turn == cfg.netsplit_at_turn) {
      auto split = cluster.NetSplit(cfg.netsplit_heal_ticks);
      if (!split.ok()) return split;
    }
    if (!cluster.MinoritySide().empty()) report.minority_fenced = true;

    // Home-broker liveness drives membership: death evicts, restore
    // rejoins (the zombie's commits stay fenced in between).
    for (std::size_t i = 0; i < members; ++i) {
      const auto home = static_cast<cluster::BrokerId>(i % cc.brokers);
      const auto minority = cluster.MinoritySide();
      const bool isolated =
          std::find(minority.begin(), minority.end(), home) != minority.end();
      const bool alive = cluster.BrokerUp(home) && !isolated;
      if (!alive && !evicted[i]) {
        auto s = group.Evict(consumers[i]->id());
        if (!s.ok()) return s;
        evicted[i] = true;
        ++report.evictions;
      } else if (alive && evicted[i]) {
        auto s = group.Rejoin(consumers[i]->id());
        if (!s.ok()) return s;
        evicted[i] = false;
        ++report.rejoins;
      }
    }

    // 4. Commits. A successful commit covers exactly this member's
    // in-flight polls (nothing else moved its positions); a fenced or
    // stale-generation commit means a rebalance intervened — the polled
    // records belong to a dead generation and are discarded here, to be
    // redelivered by whoever owns those partitions now.
    for (std::size_t i = 0; i < members; ++i) {
      if (buffers[i].empty()) continue;
      if (consumers[i]->Commit().ok()) {
        for (const std::int64_t id : buffers[i]) ++delivered[id];
      }
      buffers[i].clear();
    }
  }

  // --- audits ---------------------------------------------------------
  auto topic = broker.GetTopic("cluster.events");
  if (!topic.ok()) return topic.status();
  std::map<std::int64_t, std::uint64_t> copies;
  for (stream::PartitionId p = 0; p < (*topic)->partition_count(); ++p) {
    const auto& part = (*topic)->partition(p);
    auto fetched = part.Fetch(part.log_start_offset(), part.size());
    if (!fetched.ok()) return fetched.status();
    for (const auto& sr : *fetched) {
      ++copies[sr.record.event_time.nanos()];
      ++report.committed_records;
    }
  }
  for (const std::int64_t id : acked_ids) {
    if (!copies.contains(id)) ++report.committed_loss;
  }
  for (const auto& [id, n] : copies) {
    if (n > 1) report.log_duplicates += n - 1;
  }
  for (const auto& [id, n] : delivered) {
    report.delivered += n;
    if (n > 1) report.delivered_duplicates += n - 1;
  }
  if (!report.wedged) {
    for (const auto& [id, n] : copies) {
      if (!delivered.contains(id)) ++report.delivery_gaps;
    }
  }

  report.producer_retries = producer.retries();
  report.producer_rerouted = producer.rerouted();
  report.availability = report.offered == 0
                            ? 1.0
                            : static_cast<double>(report.acked) /
                                  static_cast<double>(report.offered);
  report.committed_digest = stream::CommittedTopicDigest(**topic);

  report.fenced_commits = group.fenced_commit_count();
  report.rebalances = group.rebalance_count();
  report.generation = group.generation();

  report.cluster = cluster.stats();
  report.controller_events = cluster.controller().appended();
  report.controller_state_digest = cluster.controller().StateDigest();
  auto replay = cluster.controller().ReplayDigest();
  if (!replay.ok()) return replay.status();
  report.controller_replay_digest = *replay;
  report.controller_consistent =
      report.controller_replay_digest == report.controller_state_digest;
  return report;
}

}  // namespace arbd::scenarios
