#include "scenarios/emergency.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace arbd::scenarios {
namespace {

struct Cell {
  bool victim = false;
  double score = 0.0;  // fused detection score (bird's-eye heat)
  bool searched = false;
};

}  // namespace

EmergencyMetrics RunSearchAndRescue(const EmergencyConfig& cfg, std::uint64_t seed) {
  Rng rng(seed);
  const int w = cfg.grid_w, h = cfg.grid_h;
  std::vector<Cell> grid(static_cast<std::size_t>(w * h));

  // Place victims.
  std::set<int> victim_cells;
  while (victim_cells.size() < cfg.victims) {
    victim_cells.insert(static_cast<int>(rng.NextBelow(static_cast<std::uint64_t>(w * h))));
  }
  for (int c : victim_cells) grid[static_cast<std::size_t>(c)].victim = true;

  // IoT sensor fusion: each cell accumulates detections; the bird's-eye
  // overlay ranks cells by fused score.
  for (auto& cell : grid) {
    for (std::size_t s = 0; s < cfg.sensors_per_cell; ++s) {
      const double p = cell.victim ? cfg.sensor_hit_rate : cfg.sensor_false_rate;
      if (rng.Bernoulli(p)) cell.score += 1.0;
    }
  }

  struct Searcher {
    int x = 0, y = 0;
    double busy_until_s = 0.0;
  };
  std::vector<Searcher> searchers(cfg.searchers);
  for (std::size_t i = 0; i < searchers.size(); ++i) {
    searchers[i].x = static_cast<int>(i) % w;  // start along the entrance wall
    searchers[i].y = 0;
  }

  // Each searcher's sweep order. AR: global priority queue by fused score
  // (ties by distance). No AR: boustrophedon sweep, split by rows.
  auto cell_of = [w](int x, int y) { return y * w + x; };

  EmergencyMetrics m;
  double rescue_sum = 0.0;
  double now_s = 0.0;
  std::set<int> claimed;  // cells assigned to some searcher

  auto next_cell_for = [&](const Searcher& s) -> int {
    if (cfg.ar_birdseye) {
      // Highest score, then nearest.
      int best = -1;
      double best_key = -1e300;
      for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
          const int c = cell_of(x, y);
          if (grid[static_cast<std::size_t>(c)].searched || claimed.contains(c)) continue;
          const double dist = std::abs(x - s.x) + std::abs(y - s.y);
          const double key = grid[static_cast<std::size_t>(c)].score * 1000.0 - dist;
          if (key > best_key) {
            best_key = key;
            best = c;
          }
        }
      }
      return best;
    }
    // Blind boustrophedon from the searcher's position: next unsearched
    // cell in row-major serpentine order.
    for (int y = 0; y < h; ++y) {
      const bool reverse = (y % 2) == 1;
      for (int i = 0; i < w; ++i) {
        const int x = reverse ? w - 1 - i : i;
        const int c = cell_of(x, y);
        if (!grid[static_cast<std::size_t>(c)].searched && !claimed.contains(c)) return c;
      }
    }
    return -1;
  };

  std::size_t found = 0;
  while (now_s < cfg.time_limit.seconds() && found < cfg.victims) {
    // Advance the earliest-free searcher.
    auto* s = &searchers[0];
    for (auto& cand : searchers) {
      if (cand.busy_until_s < s->busy_until_s) s = &cand;
    }
    now_s = std::max(now_s, s->busy_until_s);
    if (now_s >= cfg.time_limit.seconds()) break;

    const int target = next_cell_for(*s);
    if (target < 0) break;
    claimed.insert(target);
    const int tx = target % w, ty = target / w;
    const double travel = (std::abs(tx - s->x) + std::abs(ty - s->y)) * cfg.cell_move_time_s;
    const double done = now_s + travel + cfg.cell_clear_time.seconds();
    s->busy_until_s = done;
    s->x = tx;
    s->y = ty;

    auto& cell = grid[static_cast<std::size_t>(target)];
    cell.searched = true;
    ++m.cells_searched;
    if (cell.victim && done <= cfg.time_limit.seconds()) {
      ++found;
      rescue_sum += done;
      m.last_rescue_time_s = std::max(m.last_rescue_time_s, done);
    }
  }

  m.victims_found = found;
  if (found > 0) m.mean_rescue_time_s = rescue_sum / static_cast<double>(found);
  m.find_all_fraction = static_cast<double>(found) / static_cast<double>(cfg.victims);
  return m;
}

}  // namespace arbd::scenarios
