// Security screening (§3.4, Figure 9): "an analyzed personal profile is
// overlaid on an agency's field of vision for fast security screening
// without direct contact" and "personal information overlaid on passengers
// will enable security specialists to very quickly verify identification
// and reduce screening traffic".
//
// A single screening lane is modelled as an M/D/1-style queue: passengers
// arrive (Poisson), the agent services them one at a time. In manual mode
// every check takes the full document-inspection time; in AR-assisted mode
// face recognition resolves most identities instantly against the profile
// database (fast service, higher watchlist recall), falling back to a
// manual check when recognition fails.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"

namespace arbd::scenarios {

struct PersonProfile {
  std::string person_id;
  bool flagged = false;      // on the watchlist (ground truth)
  double risk_score = 0.0;   // analytics output shown in the overlay
};

// Synthetic profile database with a given watchlist rate.
std::vector<PersonProfile> GenerateProfiles(std::size_t n, double flag_rate,
                                            std::uint64_t seed);

enum class ScreeningMode {
  kManual,      // document check only
  kArAssisted,  // face recognition + overlaid profile, manual fallback
};

struct ScreeningConfig {
  double arrivals_per_minute = 8.0;
  Duration manual_check = Duration::Seconds(14);
  Duration ar_check = Duration::Seconds(3);   // glance at the overlay
  double recognition_rate = 0.92;             // AR identifies successfully
  double manual_flag_recall = 0.80;           // tired human vs watchlist
  double ar_flag_recall = 0.995;              // database match is near-exact
  double flag_rate = 0.02;
  Duration run_length = Duration::Seconds(3600);
  ScreeningMode mode = ScreeningMode::kManual;
};

struct ScreeningMetrics {
  std::size_t arrived = 0;
  std::size_t processed = 0;
  double throughput_per_min = 0.0;
  double mean_wait_s = 0.0;        // queueing delay before service
  double p95_wait_s = 0.0;
  std::size_t max_queue = 0;
  std::size_t flagged_present = 0; // flagged passengers among processed
  std::size_t flagged_caught = 0;
  double flag_recall = 0.0;
  std::size_t recognition_fallbacks = 0;  // AR mode: manual fallbacks
};

ScreeningMetrics RunScreening(const ScreeningConfig& cfg, std::uint64_t seed);

}  // namespace arbd::scenarios
