#include "scenarios/tourism.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "sensors/trajectory.h"

namespace arbd::scenarios {

TouristGuide::TouristGuide(const geo::CityModel& city, TourismConfig cfg,
                           std::uint64_t seed)
    : city_(city),
      cfg_(cfg),
      planner_(city),
      rng_(seed),
      next_rest_at_m_(cfg.rest_recommend_after_m) {}

void TouristGuide::AddSign(Sign sign) { signs_[sign.at_poi] = std::move(sign); }

std::vector<ar::content::Annotation> TouristGuide::Update(const geo::LatLon& pos,
                                                          TimePoint now) {
  std::vector<ar::content::Annotation> out;
  if (has_last_) walked_m_ += geo::DistanceM(last_pos_, pos);
  last_pos_ = pos;
  has_last_ = true;

  // Place cards for the most interesting nearby POIs.
  ++queries_;
  auto nearby = city_.pois().WithinRadius(pos, cfg_.guide_radius_m);
  std::sort(nearby.begin(), nearby.end(),
            [](const geo::Poi* a, const geo::Poi* b) { return a->rating > b->rating; });
  if (nearby.size() > cfg_.max_place_cards) nearby.resize(cfg_.max_place_cards);
  for (const auto* poi : nearby) {
    ar::content::Annotation a;
    a.type = ar::content::SemanticType::kPlaceInfo;
    a.anchor.geo_pos = poi->pos;
    a.anchor.height_m = poi->height_m;
    a.title = poi->name;
    a.body = std::string(geo::PoiCategoryName(poi->category)) + " · rating " +
             std::to_string(poi->rating).substr(0, 3);
    a.priority = 0.3 + poi->rating / 10.0;
    a.created = now;
    a.ttl = Duration::Seconds(10);
    out.push_back(std::move(a));

    // Translated signage overlays at the original place (§3.2).
    if (auto it = signs_.find(poi->id); it != signs_.end()) {
      ar::content::Annotation t;
      t.type = ar::content::SemanticType::kTranslation;
      t.anchor.geo_pos = poi->pos;
      t.anchor.height_m = poi->height_m + 1.0;
      t.title = it->second.translated;
      t.body = "(" + it->second.original + ")";
      t.priority = 0.75;
      t.created = now;
      t.ttl = Duration::Seconds(10);
      out.push_back(std::move(t));
    }
  }

  // Rest-stop recommendation by walked distance (§3.2: "locations of
  // nearby rest sites and restaurants … based on walking distance").
  if (walked_m_ >= next_rest_at_m_) {
    next_rest_at_m_ += cfg_.rest_recommend_after_m;
    ++queries_;
    // Shortlist by crow-flies, then rank by *street walking distance*
    // (§3.2: "based on walking distance and time").
    std::vector<const geo::Poi*> candidates;
    for (const auto* p : city_.pois().NearestOfCategory(pos, geo::PoiCategory::kCafe, 3)) {
      candidates.push_back(p);
    }
    for (const auto* p :
         city_.pois().NearestOfCategory(pos, geo::PoiCategory::kRestaurant, 3)) {
      candidates.push_back(p);
    }
    const geo::Poi* rest = nullptr;
    double best_walk = 1e300;
    for (const auto* p : candidates) {
      const auto walk = planner_.WalkingDistanceM(pos, p->pos);
      if (walk.ok() && *walk < best_walk) {
        best_walk = *walk;
        rest = p;
      }
    }
    if (rest != nullptr) {
      ar::content::Annotation a;
      a.type = ar::content::SemanticType::kRecommendation;
      a.anchor.geo_pos = rest->pos;
      a.anchor.height_m = rest->height_m;
      a.title = "Rest stop: " + rest->name;
      a.body = std::to_string(static_cast<int>(best_walk)) + " m walk from here";
      a.priority = 0.85;
      a.created = now;
      a.ttl = Duration::Seconds(30);
      out.push_back(std::move(a));

      // Navigation hint along the street route's first leg.
      auto route = planner_.Plan(pos, rest->pos);
      if (route.ok() && !route->nodes.empty()) {
        const auto& next_node = planner_.node(route->nodes.size() > 1 ? route->nodes[1]
                                                                      : route->nodes[0]);
        ar::content::Annotation nav;
        nav.type = ar::content::SemanticType::kNavigation;
        nav.anchor.geo_pos = city_.frame().FromEnu(geo::Enu{next_node.east, next_node.north});
        nav.anchor.height_m = 1.0;
        nav.title = "→ " + rest->name;
        nav.body = "follow the street";
        nav.priority = 0.7;
        nav.created = now;
        nav.ttl = Duration::Seconds(30);
        out.push_back(std::move(nav));
      }
    }
  }
  return out;
}

PortalGame::PortalGame(const geo::CityModel& city, double capture_range_m,
                       std::uint64_t seed)
    : city_(city), range_m_(capture_range_m) {
  (void)seed;
  // Landmarks and museums become portals, like Ingress anchoring play to
  // public artworks and monuments.
  for (const auto* poi : city.pois().All()) {
    if (poi->category == geo::PoiCategory::kLandmark ||
        poi->category == geo::PoiCategory::kMuseum) {
      portals_.push_back(poi->id);
    }
  }
}

std::vector<geo::PoiId> PortalGame::Visit(const std::string& player,
                                          const geo::LatLon& pos) {
  std::vector<geo::PoiId> captured;
  for (geo::PoiId id : portals_) {
    if (owners_.contains(id)) continue;
    auto poi = city_.pois().Get(id);
    if (!poi.ok()) continue;
    if (geo::DistanceM(pos, (*poi)->pos) <= range_m_) {
      owners_[id] = player;
      captured.push_back(id);
    }
  }
  return captured;
}

std::size_t PortalGame::captured_count() const { return owners_.size(); }

TourMetrics SimulateTour(const geo::CityModel& city, const TourismConfig& cfg,
                         bool gamified, Duration tour_length, std::uint64_t seed) {
  TourMetrics m;
  TouristGuide guide(city, cfg, seed);
  PortalGame game(city, /*capture_range_m=*/25.0, seed);

  sensors::TrajectoryConfig traj_cfg;
  traj_cfg.kind = sensors::MotionKind::kRandomWalk;
  traj_cfg.speed_mps = 1.3;
  traj_cfg.bounds_half_extent_m = 350.0;
  sensors::TrajectoryGenerator walker(traj_cfg, seed);

  Rng rng(seed ^ 0x7052ULL);
  std::set<geo::PoiId> visited;
  TimePoint now;
  const Duration step = Duration::Seconds(1);
  geo::PoiId diversion_target = 0;

  while (now < TimePoint{} + tour_length) {
    now += step;
    auto truth = walker.Step(step);
    const geo::LatLon pos = city.frame().FromEnu(geo::Enu{truth.east, truth.north});

    const auto annotations = guide.Update(pos, now);
    m.annotations_shown += annotations.size();

    // Count "spot visits": being within 20 m of a landmark-ish POI.
    for (const auto* poi : city.pois().WithinRadius(pos, 20.0)) {
      if (poi->category == geo::PoiCategory::kLandmark ||
          poi->category == geo::PoiCategory::kMuseum) {
        visited.insert(poi->id);
      }
    }

    if (gamified) {
      const auto captured = game.Visit("tourist", pos);
      m.portals_captured += captured.size();
      // Gamification changes behaviour: if an uncaptured portal is within
      // 120 m, divert toward it.
      if (diversion_target == 0 && rng.Bernoulli(0.1)) {
        for (const auto* poi : city.pois().WithinRadius(pos, 120.0)) {
          if ((poi->category == geo::PoiCategory::kLandmark ||
               poi->category == geo::PoiCategory::kMuseum) &&
              !game.ownership().contains(poi->id)) {
            diversion_target = poi->id;
            break;
          }
        }
      }
      if (diversion_target != 0) {
        auto poi = city.pois().Get(diversion_target);
        if (poi.ok()) {
          const geo::Enu t = city.frame().ToEnu((*poi)->pos);
          const double de = t.east - truth.east, dn = t.north - truth.north;
          if (std::sqrt(de * de + dn * dn) < 15.0) {
            diversion_target = 0;  // arrived
          } else {
            walker.set_start(truth.east + 1.2 * de / std::hypot(de, dn),
                             truth.north + 1.2 * dn / std::hypot(de, dn), truth.yaw_deg);
          }
        }
      }
    }
  }
  m.distance_m = guide.distance_walked_m();
  m.spots_visited = visited.size();
  m.geo_queries = guide.queries_issued();
  return m;
}

}  // namespace arbd::scenarios
