// Cluster soak harness (E24): a modeled multi-broker cluster under a
// rolling-kill schedule — every broker is killed once, staggered, while a
// fleet-shaped workload (diurnal volume curve, Zipf users and POI
// hotspots) is produced through a rerouting ClusterProducer and consumed
// by a generation-fenced consumer group whose members are homed on
// brokers (a broker kill evicts its member mid-flight; the restore
// rejoins it). Optionally a seeded netsplit isolates a minority of
// brokers mid-run.
//
// The robustness contract audited after the storm:
//   - zero committed loss: every acknowledged record is in the committed
//     log (identity = its unique event time);
//   - zero duplicate delivery: a record counts as delivered only when a
//     *successful* commit covers it — fenced and stale-generation commits
//     discard the member's in-flight polls (the records are redelivered
//     by the surviving owners from the committed offsets), so nothing is
//     ever counted twice and nothing committed goes missing;
//   - controller consistency: replaying the metadata log through a fresh
//     state machine lands on the live routing table's digest;
//   - determinism: the committed digest is a pure function of
//     (config, seeds) — and with a generous retry budget it is identical
//     across broker counts, because placement only moves replica slots,
//     never the record -> partition routing.
//
// Shared by bench_cluster (E24 gates) and the ClusterRebalance 100-seed
// soak suite.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "cluster/cluster.h"
#include "fault/injector.h"
#include "offload/fleet.h"

namespace arbd::scenarios {

struct ClusterSoakConfig {
  std::uint32_t brokers = 4;
  std::uint32_t partitions = 8;
  std::uint32_t replication_factor = 3;  // clamped to `brokers` at placement
  std::uint32_t consumers = 4;           // group members, homed on broker i % brokers

  // Fleet-shaped workload (diurnal + Zipf hotspots); records are keyed by
  // POI so hot partitions emerge naturally. Event times are strictly
  // increasing — each record's unique identity for the loss/dup audit.
  offload::FleetLoadConfig fleet{.users = 5000,
                                 .hotspots = 64,
                                 .ticks = 24,
                                 .peak_events_per_tick = 120,
                                 .seed = 7};

  // Rolling-kill schedule: broker k dies at cluster tick
  // `kill_start_tick + k * kill_spacing_ticks` with restore window
  // `restore_ticks`. restore_ticks > kill_spacing_ticks overlaps the
  // outages (several brokers down at once) — the availability-vs-broker-
  // count experiment's regime.
  bool rolling_kill = true;
  std::uint64_t kill_start_tick = 2;
  std::uint64_t kill_spacing_ticks = 4;
  std::uint64_t restore_ticks = 6;

  // Turn (produce-poll-commit round) at which a seeded netsplit isolates
  // a minority of brokers; 0 = no split. Heals after `netsplit_heal_ticks`.
  std::size_t netsplit_at_turn = 0;
  std::uint64_t netsplit_heal_ticks = 6;

  // Optional FaultPlan spec (plan.h grammar) fired on every cluster tick:
  // `killbroker@p=..,x=..` at cluster.broker, `netsplit@p=..,x=..` at
  // cluster.link. Empty = only the explicit schedules above.
  std::string fault_spec;
  std::uint64_t fault_seed = 1;

  std::size_t produce_chunk = 16;  // records produced per turn
  std::size_t poll_batch = 64;     // records each member polls per turn
  // Producer retry budget per record (total attempts). Each retry ticks
  // cluster time, so budgets comfortably above restore_ticks make runs
  // lossless; starved budgets turn outages into the availability
  // measurement instead.
  std::size_t producer_attempts = 32;
  std::uint64_t seed = 1;
  std::size_t max_turns = 0;  // wedge guard; 0 = automatic bound
};

struct ClusterSoakReport {
  // Producer side.
  std::uint64_t offered = 0;
  std::uint64_t acked = 0;   // acknowledged (possibly after rerouted retries)
  std::uint64_t denied = 0;  // exhausted the retry budget
  std::uint64_t producer_retries = 0;
  std::uint64_t producer_rerouted = 0;  // retries that followed a leader move
  double availability = 0.0;            // acked / offered

  // Committed-log audit (identity = unique event time per record).
  std::uint64_t committed_records = 0;
  std::uint64_t committed_loss = 0;   // acked identities missing (must be 0)
  std::uint64_t log_duplicates = 0;   // identities stored twice (must be 0)
  std::uint64_t committed_digest = 0; // CommittedTopicDigest over the topic

  // Consumer-group delivery audit.
  std::uint64_t delivered = 0;            // records covered by successful commits
  std::uint64_t delivered_duplicates = 0; // identities delivered twice (must be 0)
  std::uint64_t delivery_gaps = 0;        // committed but never delivered (must be 0)
  std::uint64_t fenced_commits = 0;       // stale/zombie commits rejected
  std::uint64_t rebalances = 0;
  std::uint64_t generation = 0;
  std::uint64_t evictions = 0;  // member fencings driven by broker kills
  std::uint64_t rejoins = 0;

  // Cluster + controller.
  cluster::ClusterStats cluster;
  std::uint64_t controller_events = 0;
  std::uint64_t controller_state_digest = 0;
  std::uint64_t controller_replay_digest = 0;
  bool controller_consistent = false;  // replay digest == live digest

  // Netsplit observability (netsplit_at_turn > 0 runs only).
  bool minority_fenced = false;        // a minority side was observed isolated
  std::uint64_t acked_during_split = 0;  // majority kept committing (> 0)

  bool wedged = false;  // turn cap hit before the group drained
};

Expected<ClusterSoakReport> RunClusterSoak(const ClusterSoakConfig& cfg);

// The fleet trace rendered as stream records — keyed by POI, event time
// strictly increasing (the unique identity every audit keys on). Shared
// with the autoscale soak so flat and autoscaled runs see the identical
// record sequence, draw for draw.
std::vector<stream::Record> MakeFleetWorkload(const offload::FleetLoadConfig& fleet);

}  // namespace arbd::scenarios
