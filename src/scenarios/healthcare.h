// Healthcare scenario (§3.3): a fleet of monitored patients streaming
// vitals through the platform; windowed analytics raise tachycardia
// alerts that the AR layer surfaces in the caregiver's view; an EHR store
// backs the "virtual viewfinder over the patient" use case. Drives
// experiment E9 (alert latency / precision / recall vs patient count and
// sampling rate).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analytics/stats.h"
#include "common/clock.h"
#include "common/rng.h"
#include "sensors/models.h"
#include "sensors/trajectory.h"

namespace arbd::scenarios {

// Minimal electronic health record (§3.3's EHR digitalization).
struct HealthRecord {
  std::string patient_id;
  int age = 0;
  std::string blood_type;
  std::vector<std::string> conditions;
  std::vector<std::string> medications;
  double resting_hr = 68.0;
};

class EhrStore {
 public:
  void Put(HealthRecord record);
  Expected<const HealthRecord*> Get(const std::string& patient_id) const;
  std::size_t size() const { return records_.size(); }

  // Populates `n` synthetic records.
  static EhrStore Synthetic(std::size_t n, std::uint64_t seed);

 private:
  std::map<std::string, HealthRecord> records_;
};

struct AlertEvent {
  std::string patient_id;
  TimePoint raised_at;
  double observed_hr = 0.0;
};

struct MonitorConfig {
  std::size_t patients = 50;
  Duration sample_period = Duration::Millis(1000);
  Duration window = Duration::Seconds(10);
  double alert_hr_threshold = 115.0;   // windowed mean above this alerts
  double anomaly_rate_per_hour = 2.0;  // injected ground-truth episodes
  Duration run_length = Duration::Seconds(600);
  // Personalized thresholds: alert at resting_hr + delta instead of the
  // global threshold (the "big data enables personalization" ablation).
  bool personalized = false;
  double personalized_delta = 45.0;
  // Self-calibrating z-score detection on the raw vitals stream (learns
  // each patient's baseline instead of using any threshold). Overrides
  // both threshold modes when set.
  bool zscore = false;
  double zscore_threshold = 4.0;
};

struct MonitorMetrics {
  std::size_t episodes = 0;        // ground-truth anomaly episodes
  std::size_t detected = 0;        // episodes with ≥1 alert during them
  std::size_t false_alerts = 0;    // alerts outside any episode
  double recall = 0.0;
  double precision = 0.0;
  double mean_detection_latency_s = 0.0;  // episode start → first alert
  std::uint64_t samples_processed = 0;
  std::vector<AlertEvent> alerts;
};

// Runs the monitoring fleet on simulated time: per-patient vitals models
// feed keyed incremental windows; threshold crossings raise alerts which
// are matched against ground-truth episodes.
MonitorMetrics RunPatientMonitor(const MonitorConfig& cfg, std::uint64_t seed);

}  // namespace arbd::scenarios
