// Public-services / transport scenario (§3.4): a VANET of vehicles
// sharing GPS/speed/heading beacons. Each vehicle maintains a neighbour
// table from received beacons, runs closest-approach threat assessment,
// and raises AR collision warnings; occluded vehicles in blind spots are
// surfaced with "see-through" hints using the city geometry. Drives
// experiment E10 (warning lead time and recall vs beacon rate & density).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "geo/city.h"
#include "sensors/trajectory.h"

namespace arbd::scenarios {

struct Beacon {
  std::string vehicle_id;
  TimePoint sent_at;
  double east = 0.0;
  double north = 0.0;
  double vel_east = 0.0;
  double vel_north = 0.0;
};

struct ThreatConfig {
  double horizon_s = 6.0;        // look-ahead for closest approach
  double warn_distance_m = 12.0; // predicted miss distance that warns
  Duration beacon_staleness = Duration::Millis(1500);
};

struct Threat {
  std::string other_id;
  double time_to_closest_s = 0.0;
  double closest_distance_m = 0.0;
  bool occluded = false;  // other vehicle hidden behind a building
};

// Neighbour table + constant-velocity closest-approach prediction.
class ThreatAssessor {
 public:
  explicit ThreatAssessor(ThreatConfig cfg) : cfg_(cfg) {}

  void OnBeacon(const Beacon& beacon, TimePoint now);
  std::size_t ExpireStale(TimePoint now);

  // Threats against own state; if `city` given, marks occluded neighbours.
  std::vector<Threat> Assess(const Beacon& self, TimePoint now,
                             const geo::CityModel* city = nullptr) const;

  std::size_t neighbour_count() const { return neighbours_.size(); }

 private:
  ThreatConfig cfg_;
  std::map<std::string, Beacon> neighbours_;
};

struct VanetConfig {
  std::size_t vehicles = 60;
  Duration beacon_period = Duration::Millis(200);
  double drop_rate = 0.05;        // beacon loss
  Duration run_length = Duration::Seconds(120);
  double speed_mps = 12.0;
  double near_miss_distance_m = 8.0;  // ground-truth "dangerous encounter"
  ThreatConfig threat;
  bool use_city_occlusion = true;
};

struct VanetMetrics {
  std::size_t encounters = 0;        // ground-truth near misses
  std::size_t warned = 0;            // near misses preceded by a warning
  double recall = 0.0;
  double mean_lead_time_s = 0.0;     // warning → closest approach
  std::size_t warnings_issued = 0;
  std::size_t occluded_warnings = 0; // would be invisible without x-ray
  std::uint64_t beacons_sent = 0;
};

VanetMetrics RunVanetSimulation(const VanetConfig& cfg, const geo::CityModel& city,
                                std::uint64_t seed);

}  // namespace arbd::scenarios
