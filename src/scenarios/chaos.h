// Chaos soak harness: streams a scenario-flavored event workload through
// the full durability stack (Broker -> ConsumerGroup -> CheckpointedJob ->
// windowed Pipeline) with a FaultPlan injected at every layer, and checks
// the §4.1 robustness contract — committed results must match a fault-free
// run exactly, with degradation showing up as replay/retry overhead, never
// as lost records. Shared by bench_chaos and the soak property tests.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "common/metrics.h"
#include "common/status.h"
#include "fault/injector.h"
#include "stream/recovery.h"

namespace arbd::scenarios {

// Which scenario's event stream feeds the soak: retail purchase events
// (Zipf-skewed product keys, §3.1) or emergency IoT detections (uniform
// grid-cell keys, §3.4).
enum class ChaosWorkload { kRetail, kEmergency };

struct ChaosConfig {
  ChaosWorkload workload = ChaosWorkload::kRetail;
  std::size_t records = 4000;
  std::uint32_t partitions = 2;
  std::size_t checkpoint_every = 16;
  std::size_t batch = 32;
  // FaultPlan spec (plan.h grammar); empty = fault-free baseline run.
  std::string fault_spec;
  // Seeds both the workload generator and the fault schedule, so a failing
  // (spec, seed) pair replays bit-for-bit.
  std::uint64_t seed = 1;
  // Pump-iteration cap (wedge guard). 0 = generous automatic bound.
  std::size_t max_pump_iterations = 0;
};

// Final committed window results: "key|window_start_ms" -> (value, count).
// Keyed (not appended) because at-least-once recovery may legitimately
// re-emit a window with identical contents; upserts make that idempotent.
using ChaosResultTable =
    std::map<std::string, std::pair<double, std::uint64_t>>;

struct ChaosReport {
  stream::RecoveryStats stats;
  ChaosResultTable results;
  std::uint64_t fault_events = 0;     // total injected across all layers
  std::uint64_t fault_opportunities = 0;
  // The full fired-fault schedule, for reproducibility checks: identical
  // (spec, seed) pairs must yield identical logs.
  std::vector<fault::FaultEvent> fault_log;
  bool wedged = false;                // pump-iteration guard tripped
  // Unique records committed / total pushes (replays included): 1.0 when
  // fault-free, degrading smoothly as replay overhead grows.
  double goodput = 0.0;
  MetricRegistry metrics;             // fault.injected.* / fault.survived.*
};

// Runs the soak to completion (all produced records committed) or until
// the wedge guard trips. Identical (cfg.workload, records, seed) with an
// empty fault_spec gives the baseline the results table must match.
Expected<ChaosReport> RunChaosSoak(const ChaosConfig& cfg);

// Producer-path chaos: a retrying producer pushes `records` uniquely-keyed
// records through a broker injecting torn appends and clean append errors.
// Torn appends duplicate records (at-least-once produce, the lost-ack
// case); the check is that nothing is ever lost.
struct ProducerChaosReport {
  std::uint64_t attempts = 0;    // send calls including retries
  std::uint64_t retries = 0;     // sends retried after an injected error
  std::uint64_t duplicates = 0;  // extra copies appended by torn appends
  std::uint64_t lost = 0;        // produced keys missing from the log (must be 0)
};

Expected<ProducerChaosReport> RunProducerChaos(std::size_t records,
                                               const std::string& fault_spec,
                                               std::uint64_t seed);

}  // namespace arbd::scenarios
