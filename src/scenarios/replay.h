// Session replay for the tourism scenario (ISSUE 8): the paper's
// historical-read workload — "replay this tourist's session" — driven
// end-to-end through the segmented log's query tier. Seeded tourists walk
// a city playing the portal game, every step producing a keyed session
// event into a broker topic; afterwards each session is replayed two ways
// and verified against the original:
//
//   1. QueryTime over the tourist's session window on their partition
//      (key-hash routing pins a tourist to one partition), filtered by
//      key — must reproduce the session exactly, in order.
//   2. Consumer::SeekToTimestamp to mid-session, then Poll to the end —
//      the polled rows per tourist must form a contiguous suffix of the
//      original session containing every event at/after the seek point.
//
// The report's digest folds only produced/replayed row data (never
// segment structure), so a segmented and an unsegmented run of the same
// config must produce equal digests — the property bench_storage (E25)
// and storage_segment_test gate on.
#pragma once

#include <cstdint>

#include "common/clock.h"
#include "stream/query.h"

namespace arbd::scenarios {

struct SessionReplayConfig {
  std::size_t tourists = 6;
  std::size_t events_per_tourist = 400;
  std::uint32_t partitions = 2;
  // Segment seal target installed for the run (SetSegmentBytesTarget);
  // 0 runs unsegmented. The previous global value is restored on return.
  std::size_t segment_bytes = 2048;
  // Virtual time between a tourist's consecutive session events.
  Duration step = Duration::Millis(250);
  std::uint64_t seed = 42;
};

struct SessionReplayReport {
  std::size_t produced = 0;
  std::size_t replayed_rows = 0;     // rows returned by the QueryTime replays
  std::size_t sessions_verified = 0; // tourists whose full replay matched
  std::size_t mismatches = 0;        // replayed rows differing from the original
  std::size_t seek_replays = 0;      // rows polled after SeekToTimestamp
  std::size_t seek_errors = 0;       // suffix/coverage violations after seek
  std::size_t sealed_segments = 0;   // across partitions when the tour ended
  std::uint64_t digest = 0;          // FNV-1a over replayed session bytes
  stream::QueryStats query_stats;    // merged across all session queries

  bool AllVerified(const SessionReplayConfig& cfg) const {
    return sessions_verified == cfg.tourists && mismatches == 0 && seek_errors == 0;
  }
};

SessionReplayReport RunSessionReplay(const SessionReplayConfig& cfg);

// Healthcare anomaly replay (ISSUE 10 satellite): the §3.3 caregiver
// workflow "show me what led up to this alert". A ward of monitored
// patients streams vitals into one topic — every patient samples at the
// same instants, so any time window crosses *many* patient sessions at
// once (the property the session replay above never exercises: its
// QueryTime windows are single-tourist). Seeded tachycardia episodes are
// injected as ground truth; afterwards each episode's surrounding window
// [start - pre, end + post] is replayed with QueryTime across EVERY
// partition and verified:
//
//   - the episode patient's samples inside the window come back exactly,
//     in order (payload + event time), including every anomalous sample;
//   - the window also returns other patients' co-resident rows
//     (cross_session_rows > 0) — the multi-session property itself.
//
// The digest folds only verified row data, never segment structure, so
// flat and segmented runs of one config must produce equal digests.
struct AnomalyReplayConfig {
  std::size_t patients = 12;
  std::size_t samples_per_patient = 240;
  std::uint32_t partitions = 4;
  // Segment seal target installed for the run; 0 runs unsegmented. The
  // previous global value is restored on return.
  std::size_t segment_bytes = 2048;
  Duration sample_period = Duration::Millis(500);
  // Seeded ground-truth episodes per patient, each `episode_samples`
  // consecutive elevated readings, placed in disjoint blocks of the
  // patient's timeline.
  std::size_t episodes_per_patient = 2;
  std::size_t episode_samples = 10;
  // Replay window margins around an episode.
  Duration pre_window = Duration::Seconds(2);
  Duration post_window = Duration::Seconds(2);
  std::uint64_t seed = 42;
};

struct AnomalyReplayReport {
  std::size_t produced = 0;
  std::size_t episodes = 0;           // injected ground-truth episodes
  std::size_t windows_replayed = 0;   // QueryTime calls (episodes × partitions)
  std::size_t rows_replayed = 0;      // total rows the replays returned
  std::size_t cross_session_rows = 0; // rows from other patients (must be > 0)
  std::size_t anomalous_rows = 0;     // elevated samples recovered
  std::size_t mismatches = 0;         // expected rows missing / wrong / out of order
  std::size_t episodes_verified = 0;  // episodes whose window replay matched
  std::size_t sealed_segments = 0;
  std::uint64_t digest = 0;           // FNV-1a over verified row data only
  stream::QueryStats query_stats;

  bool AllVerified() const {
    return episodes_verified == episodes && mismatches == 0 &&
           cross_session_rows > 0;
  }
};

AnomalyReplayReport RunAnomalyReplay(const AnomalyReplayConfig& cfg);

}  // namespace arbd::scenarios
