#include "scenarios/security.h"

#include <algorithm>

namespace arbd::scenarios {

std::vector<PersonProfile> GenerateProfiles(std::size_t n, double flag_rate,
                                            std::uint64_t seed) {
  Rng rng(seed);
  std::vector<PersonProfile> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    PersonProfile p;
    p.person_id = "person-" + std::to_string(i);
    p.flagged = rng.Bernoulli(flag_rate);
    // Flagged individuals skew high but overlap with the benign mass —
    // the analytics score is informative, not oracular.
    p.risk_score = p.flagged ? std::clamp(rng.Gaussian(0.8, 0.15), 0.0, 1.0)
                             : std::clamp(rng.Gaussian(0.25, 0.15), 0.0, 1.0);
    out.push_back(std::move(p));
  }
  return out;
}

ScreeningMetrics RunScreening(const ScreeningConfig& cfg, std::uint64_t seed) {
  ScreeningMetrics m;
  Rng rng(seed);

  struct Passenger {
    TimePoint arrival;
    bool flagged;
  };
  std::deque<Passenger> queue;

  TimePoint now;
  TimePoint next_arrival =
      now + Duration::Seconds(rng.Exponential(cfg.arrivals_per_minute / 60.0));
  TimePoint agent_free;  // when the agent finishes the current passenger
  std::vector<double> waits;

  while (now < TimePoint{} + cfg.run_length) {
    // Advance to the next interesting instant.
    TimePoint next = next_arrival;
    if (!queue.empty() && agent_free > now && agent_free < next) next = agent_free;
    if (!queue.empty() && agent_free <= now) next = now;  // serve immediately
    now = std::max(now, next);
    if (now >= TimePoint{} + cfg.run_length) break;

    // Arrival?
    if (now >= next_arrival) {
      queue.push_back({next_arrival, rng.Bernoulli(cfg.flag_rate)});
      ++m.arrived;
      m.max_queue = std::max(m.max_queue, queue.size());
      next_arrival += Duration::Seconds(rng.Exponential(cfg.arrivals_per_minute / 60.0));
    }

    // Service?
    if (!queue.empty() && agent_free <= now) {
      const Passenger p = queue.front();
      queue.pop_front();
      waits.push_back((now - p.arrival).seconds());

      Duration service = cfg.manual_check;
      double recall = cfg.manual_flag_recall;
      if (cfg.mode == ScreeningMode::kArAssisted) {
        if (rng.Bernoulli(cfg.recognition_rate)) {
          service = cfg.ar_check;
          recall = cfg.ar_flag_recall;
        } else {
          ++m.recognition_fallbacks;  // overlay shows "unidentified": manual
          service = cfg.ar_check + cfg.manual_check;
        }
      }
      agent_free = now + service;
      ++m.processed;
      if (p.flagged) {
        ++m.flagged_present;
        if (rng.Bernoulli(recall)) ++m.flagged_caught;
      }
    } else if (queue.empty()) {
      now = next_arrival;  // idle until someone shows up
    } else {
      now = agent_free;  // busy: jump to service completion
    }
  }

  const double minutes = cfg.run_length.seconds() / 60.0;
  m.throughput_per_min = static_cast<double>(m.processed) / minutes;
  if (!waits.empty()) {
    double sum = 0.0;
    for (double w : waits) sum += w;
    m.mean_wait_s = sum / static_cast<double>(waits.size());
    std::sort(waits.begin(), waits.end());
    m.p95_wait_s = waits[std::min(waits.size() - 1,
                                  static_cast<std::size_t>(waits.size() * 0.95))];
  }
  if (m.flagged_present > 0) {
    m.flag_recall =
        static_cast<double>(m.flagged_caught) / static_cast<double>(m.flagged_present);
  }
  return m;
}

}  // namespace arbd::scenarios
