#include "scenarios/digest.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "core/platform.h"
#include "geo/city.h"
#include "scenarios/tourism.h"
#include "stream/parallel.h"

namespace arbd::scenarios {

namespace {

constexpr char kDigestTopic[] = "ovl.digest";

void FoldTour(BinaryWriter& w, const TourMetrics& m) {
  w.WriteF64(m.distance_m);
  w.WriteU64(m.spots_visited);
  w.WriteU64(m.portals_captured);
  w.WriteU64(m.annotations_shown);
  w.WriteU64(m.geo_queries);
}

}  // namespace

std::uint64_t TourismDigest(std::uint64_t seed, const exec::ExecConfig& exec_cfg) {
  SimClock clock;
  const geo::CityModel city = geo::CityModel::Generate(geo::CityConfig{}, 51);
  core::PlatformConfig pc;
  pc.exec = exec_cfg;
  core::Platform platform(pc, city, clock);

  const geo::Poi* poi = city.pois().All().front();
  platform.SetEntityResolver([poi](const std::string&) {
    core::EntityContext ctx;
    ctx.has_position = true;
    ctx.pos = poi->pos;
    ctx.height_m = 2.0;
    return ctx;
  });
  core::AggregationSpec speed;
  speed.attribute = "speed";
  speed.window = stream::WindowSpec::Tumbling(Duration::Seconds(1));
  speed.agg = stream::AggKind::kMean;
  platform.AddAggregation(speed);
  core::AggregationSpec visits;
  visits.attribute = "visits";
  visits.window = stream::WindowSpec::Tumbling(Duration::Seconds(2));
  visits.agg = stream::AggKind::kCount;
  platform.AddAggregation(visits);
  core::InterpretationRule speed_rule;
  speed_rule.attribute = "speed";
  platform.AddRule(speed_rule);
  core::InterpretationRule visits_rule;
  visits_rule.attribute = "visits";
  platform.AddRule(visits_rule);

  // Seeded event streams published serially on the driver; ingestion then
  // runs through the (possibly parallel) dataflow path.
  Rng rng(seed ^ 0x70c9a11ULL);
  constexpr int kEvents = 400;
  for (int i = 0; i < kEvents; ++i) {
    stream::Event e;
    e.key = (i % 3 == 0) ? poi->name : "tourist-" + std::to_string(i % 4);
    e.attribute = (i % 2 == 0) ? "speed" : "visits";
    e.value = 1.0 + rng.NextDouble() * 4.0;
    e.event_time = TimePoint::FromMillis(i * 25);
    (void)platform.Publish(e);
  }
  clock.Advance(Duration::Seconds(12));
  std::size_t processed = 0;
  for (;;) {
    const std::size_t n = platform.ProcessPending();
    processed += n;
    if (n == 0) break;
  }

  platform.AddUser("digest-user");
  const auto frame = platform.ComposeFrame("digest-user");

  // Independent per-tourist tour simulations fan out one shard each;
  // results land in tourist-indexed slots (canonical merge order).
  constexpr std::size_t kTourists = 4;
  std::vector<TourMetrics> tours(kTourists);
  exec::Executor& ex = platform.executor();
  for (std::size_t u = 0; u < kTourists; ++u) {
    ex.Submit(u, [&city, &tours, seed, u] {
      tours[u] = SimulateTour(city, TourismConfig{}, (u % 2) == 1,
                              Duration::Seconds(20), seed ^ (0xA0ULL + u));
    });
  }
  ex.Drain();

  BinaryWriter w;
  w.WriteU64(seed);
  w.WriteU64(processed);
  for (std::size_t j = 0; j < platform.job_count(); ++j) {
    w.WriteBytes(platform.job_pipeline(j).Checkpoint());
  }
  w.WriteU64(platform.results_interpreted());
  w.WriteU64(platform.annotations().size());
  w.WriteU64(platform.broker().total_produced());
  auto topic = platform.broker().GetTopic(pc.event_topic);
  if (topic.ok()) {
    for (stream::PartitionId p = 0; p < (*topic)->partition_count(); ++p) {
      w.WriteI64((*topic)->partition(p).log_start_offset());
      w.WriteI64((*topic)->partition(p).end_offset());
    }
  }
  if (frame.ok()) {
    w.WriteU64(frame->live_annotations);
    w.WriteU64(frame->in_view);
    w.WriteU64(frame->occluded);
    w.WriteU64(frame->expired);
  }
  for (const auto& t : tours) FoldTour(w, t);
  return Fnv1a(w.bytes());
}

std::uint64_t OverloadDigest(std::uint64_t seed, const exec::ExecConfig& exec_cfg) {
  SimClock clock;
  stream::Broker broker(clock);
  exec::Executor ex(exec_cfg);

  stream::TopicConfig tc;
  tc.partitions = 8;
  tc.max_records = 256;
  (void)broker.CreateTopic(kDigestTopic, tc);

  Rng rng(seed ^ 0x0ff10adULL);
  BinaryWriter w;
  w.WriteU64(seed);

  std::uint64_t served = 0;
  std::uint64_t deferred = 0;
  constexpr int kRounds = 20;
  for (int round = 0; round < kRounds; ++round) {
    // Seeded keyed batch; sometimes bigger than the topic's headroom.
    const std::size_t want = 40 + static_cast<std::size_t>(rng.NextU64() % 120);
    std::vector<stream::Record> batch;
    batch.reserve(want);
    for (std::size_t i = 0; i < want; ++i) {
      const std::string key = "k" + std::to_string(rng.NextU64() % 64);
      Bytes payload(16 + (rng.NextU64() % 48), static_cast<std::uint8_t>(round));
      batch.push_back(stream::Record::Make(key, std::move(payload), clock.Now()));
    }
    // Credit clamp on the driver: admission decisions are made serially,
    // so the set of accepted records is worker-count independent even
    // though the appends run in parallel.
    const std::size_t credit = broker.Credit(kDigestTopic);
    if (batch.size() > credit) {
      deferred += batch.size() - credit;
      batch.resize(credit);
    }
    const auto rep =
        stream::ParallelProduce(ex, broker, kDigestTopic, std::move(batch),
                                Duration::Micros(2));
    w.WriteU64(rep.produced);
    w.WriteU64(rep.rejected);
    for (const std::size_t c : rep.per_partition) w.WriteU64(c);

    // Serve: drain every partition in parallel, fold consumed records in
    // partition-major order, then return budget via TruncateBefore.
    const auto fetched =
        stream::ParallelFetchAll(ex, broker, kDigestTopic, 1024, Duration::Micros(1));
    for (std::size_t p = 0; p < fetched.size(); ++p) {
      for (const auto& sr : fetched[p]) {
        w.WriteU64(Fnv1a(sr.record.key));
        w.WriteI64(sr.offset);
        ++served;
      }
      if (!fetched[p].empty()) {
        (void)broker.TruncateBefore(kDigestTopic, static_cast<stream::PartitionId>(p),
                                    fetched[p].back().offset + 1);
      }
    }
    clock.Advance(Duration::Millis(5));
  }

  auto topic = broker.GetTopic(kDigestTopic);
  if (topic.ok()) {
    for (stream::PartitionId p = 0; p < (*topic)->partition_count(); ++p) {
      w.WriteI64((*topic)->partition(p).log_start_offset());
      w.WriteI64((*topic)->partition(p).end_offset());
    }
  }
  w.WriteU64(broker.total_produced());
  w.WriteU64(broker.backpressure_rejects());
  w.WriteU64(served);
  w.WriteU64(deferred);
  return Fnv1a(w.bytes());
}

}  // namespace arbd::scenarios
