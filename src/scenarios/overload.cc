#include "scenarios/overload.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "stream/log.h"

namespace arbd::scenarios {
namespace {

using qos::PriorityClass;

constexpr const char* kClassTopics[qos::kPriorityClasses] = {
    "ovl.frame", "ovl.interactive", "ovl.background"};
constexpr const char* kSharedTopic = "ovl.all";
constexpr char kClassKeys[qos::kPriorityClasses] = {'f', 'i', 'b'};

PriorityClass ClassOfKey(const std::string& key) {
  for (int c = 0; c < qos::kPriorityClasses; ++c) {
    if (!key.empty() && key[0] == kClassKeys[c]) return static_cast<PriorityClass>(c);
  }
  return PriorityClass::kBackground;
}

double HistMs(const Histogram& h, double q) {
  return static_cast<double>(h.Quantile(q)) / 1e6;
}

// One queue the engine serves: a broker topic plus the service cursor.
struct ServedTopic {
  std::string name;
  stream::Offset next = 0;
};

}  // namespace

static Expected<OverloadReport> RunPhases(const OverloadConfig& cfg,
                                          const std::vector<OverloadPhase>& phases,
                                          OverloadSpikeReport* spike_out) {
  auto plan = fault::FaultPlan::Parse(cfg.fault_spec);
  if (!plan.ok()) return plan.status();
  if (cfg.capacity_per_s <= 0.0) {
    return Status::InvalidArgument("capacity_per_s must be positive");
  }
  if (cfg.tick <= Duration::Zero()) {
    return Status::InvalidArgument("tick must be positive");
  }

  OverloadReport report;
  SimClock clock;
  fault::FaultInjector injector(*plan, cfg.seed, &report.metrics);
  stream::Broker broker(clock);
  broker.set_metrics(&report.metrics);
  broker.set_fault_injector(&injector);

  // Workload stream and fault schedule draw from distinct seeded streams
  // so adding a fault rule never reshapes the arrival process.
  Rng arrivals_rng(cfg.seed ^ 0x0ff10adULL);

  std::vector<ServedTopic> queues;
  if (cfg.qos) {
    for (const char* name : kClassTopics) {
      stream::TopicConfig tc;
      tc.partitions = 1;
      tc.max_records = cfg.class_budget_records;
      const Status s = broker.CreateTopic(name, tc);
      if (!s.ok()) return s;
      queues.push_back({name, 0});
    }
  } else {
    stream::TopicConfig tc;
    tc.partitions = 1;
    const Status s = broker.CreateTopic(kSharedTopic, tc);
    if (!s.ok()) return s;
    queues.push_back({kSharedTopic, 0});
  }

  qos::AdmissionController admission(cfg.admission, &report.metrics);
  qos::DegradationLadder ladder(cfg.ladder, &report.metrics);

  std::array<double, qos::kPriorityClasses> mix = cfg.mix;
  double mix_sum = 0.0;
  for (double m : mix) mix_sum += std::max(0.0, m);
  if (mix_sum <= 0.0) return Status::InvalidArgument("mix must have positive mass");
  for (double& m : mix) m = std::max(0.0, m) / mix_sum;

  const double tick_s = cfg.tick.seconds();
  std::array<Histogram, qos::kPriorityClasses> class_lat;
  Histogram aggregate_lat;
  std::vector<Histogram> phase_lat(phases.size());
  std::vector<std::uint64_t> phase_offered(phases.size(), 0);
  std::vector<std::uint64_t> phase_processed(phases.size(), 0);

  TimePoint server_vt = clock.Now();
  Duration stall_remaining = Duration::Zero();
  std::uint64_t processed_loaded = 0;
  std::size_t loaded_ticks_total = 0;
  for (const auto& ph : phases) {
    loaded_ticks_total +=
        static_cast<std::size_t>(std::llround(ph.duration.seconds() / tick_s));
  }

  // `phase` < phases.size() while offered load is on; == size during drain.
  std::size_t phase = 0;
  std::size_t phase_ticks_left =
      phases.empty()
          ? 0
          : static_cast<std::size_t>(std::llround(phases[0].duration.seconds() / tick_s));
  std::size_t drain_ticks = 0;
  const std::size_t max_drain =
      cfg.max_drain_ticks > 0 ? cfg.max_drain_ticks
                              : std::max<std::size_t>(10'000, 16 * loaded_ticks_total);

  auto queued_records = [&]() {
    std::size_t n = 0;
    for (const auto& q : queues) {
      auto t = broker.GetTopic(q.name);
      n += (*t)->TotalRecords();
    }
    return n;
  };

  // Continuous-time single server: each record's completion time is the
  // server's virtual time plus its service cost, so latencies are not
  // quantized to ticks (the tick only batches arrivals and bookkeeping).
  auto serve_tick = [&]() {
    const TimePoint tick_end = clock.Now();
    const TimePoint tick_start = tick_end - cfg.tick;
    if (server_vt < tick_start) server_vt = tick_start;  // non-idling server
    // Stall faults freeze the server for the fault's duration.
    if (stall_remaining > Duration::Zero()) {
      stall_remaining = stall_remaining - cfg.tick;
      server_vt = std::max(server_vt, tick_end);
      return;
    }
    const Duration stall =
        injector.FireDuration(fault::FaultKind::kStall, fault::InjectionPoint::kServiceTick);
    if (stall > Duration::Zero()) {
      stall_remaining = stall - cfg.tick;  // this tick is already lost
      server_vt = std::max(server_vt, tick_end);
      return;
    }
    Duration tick_worst = Duration::Zero();
    bool served_any = false;
    while (server_vt < tick_end) {
      // Degradation cheapens service: a level-k record costs its
      // cost_multiplier fraction of the level-0 budget.
      const Duration cost = Duration::Seconds(
          (cfg.qos ? ladder.profile().cost_multiplier : 1.0) / cfg.capacity_per_s);
      // Strict priority: the frame queue drains before interactive before
      // background (a single shared topic is just a 1-entry scan).
      bool found = false;
      for (auto& q : queues) {
        auto topic = broker.GetTopic(q.name);
        if (q.next >= (*topic)->partition(0).end_offset()) continue;
        auto fetched = broker.Fetch(q.name, 0, q.next, 1);
        if (!fetched.ok() || fetched->empty()) {
          // Injected fetch error: retry the same record next tick.
          if (served_any && cfg.qos) ladder.Observe(tick_worst);
          return;
        }
        found = true;
        const stream::StoredRecord& sr = fetched->front();
        server_vt = server_vt + cost;
        const Duration latency = server_vt - sr.record.ingest_time;
        tick_worst = std::max(tick_worst, latency);
        served_any = true;
        const PriorityClass cls =
            cfg.qos ? ClassOfKey(q.name.substr(4)) : ClassOfKey(sr.record.key);
        class_lat[static_cast<int>(cls)].RecordDuration(latency);
        aggregate_lat.RecordDuration(latency);
        if (latency > cfg.ladder.slo) ++report.slo_violations;
        if (phase < phases.size()) {
          if (!cfg.qos || cls == PriorityClass::kFrameCritical) {
            phase_lat[phase].RecordDuration(latency);
          }
          ++phase_processed[phase];
          ++processed_loaded;
        }
        ++report.classes[static_cast<int>(cls)].processed;
        ++report.processed;
        ++q.next;
        // Return the budget to producers (the credit half of backpressure).
        (void)broker.TruncateBefore(q.name, 0, q.next);
        break;
      }
      if (!found) {
        server_vt = tick_end;
        break;
      }
    }
    // The ladder watches per-tick worst service latency: "sustained" SLO
    // violation means consecutive ticks over budget, and one fast frame
    // record cannot mask a drowning background queue.
    if (served_any && cfg.qos) ladder.Observe(tick_worst);
  };

  auto arrive_tick = [&](double load) {
    for (int c = 0; c < qos::kPriorityClasses; ++c) {
      const double mean = load * cfg.capacity_per_s * tick_s * mix[c];
      const std::int64_t n = arrivals_rng.Poisson(mean);
      auto& cs = report.classes[c];
      for (std::int64_t i = 0; i < n; ++i) {
        ++cs.offered;
        ++report.offered;
        if (phase < phases.size()) ++phase_offered[phase];
        const auto cls = static_cast<PriorityClass>(c);
        if (cfg.qos) {
          admission.UpdatePressure(cls, broker.Pressure(kClassTopics[c]));
          if (!admission.Admit(cls)) {
            ++cs.shed;
            if (cls == PriorityClass::kFrameCritical) ladder.ObserveShed();
            continue;
          }
        }
        const std::string& topic = cfg.qos ? kClassTopics[c] : kSharedTopic;
        auto produced = broker.Produce(
            topic, stream::Record::MakeText(std::string(1, kClassKeys[c]), "r",
                                            clock.Now()));
        if (!produced.ok()) {
          if (produced.status().code() == StatusCode::kResourceExhausted) {
            ++cs.rejected;
          } else {
            ++cs.shed;  // injected append error: counted as shed work
          }
          continue;
        }
        ++cs.admitted;
        ++report.admitted;
      }
    }
  };

  while (true) {
    const bool loaded = phase < phases.size();
    if (!loaded) {
      if (queued_records() == 0) break;
      if (++drain_ticks > max_drain) {
        report.wedged = true;
        break;
      }
    }
    clock.Advance(cfg.tick);
    serve_tick();
    if (loaded) arrive_tick(phases[phase].load);

    // Per-tick bookkeeping: depth watermarks and budget assertions.
    std::size_t depth = 0;
    for (const auto& q : queues) {
      auto t = broker.GetTopic(q.name);
      const std::size_t d = (*t)->TotalRecords();
      depth += d;
      if (cfg.qos && d > cfg.class_budget_records) ++report.budget_violations;
    }
    report.max_queue_depth = std::max(report.max_queue_depth, depth);
    report.max_degradation_level = std::max(report.max_degradation_level, ladder.level());

    if (loaded && --phase_ticks_left == 0) {
      ++phase;
      if (phase < phases.size()) {
        phase_ticks_left = static_cast<std::size_t>(
            std::llround(phases[phase].duration.seconds() / tick_s));
      }
    }
  }

  report.lost = report.admitted - report.processed;
  const double loaded_s = static_cast<double>(loaded_ticks_total) * tick_s;
  report.goodput_per_s =
      loaded_s > 0.0 ? static_cast<double>(processed_loaded) / loaded_s : 0.0;
  report.aggregate_p50_ms = HistMs(aggregate_lat, 0.50);
  report.aggregate_p99_ms = HistMs(aggregate_lat, 0.99);
  for (int c = 0; c < qos::kPriorityClasses; ++c) {
    auto& cs = report.classes[c];
    cs.p50_ms = HistMs(class_lat[c], 0.50);
    cs.p99_ms = HistMs(class_lat[c], 0.99);
    cs.max_ms = static_cast<double>(class_lat[c].max()) / 1e6;
  }
  report.backpressure_rejects = broker.backpressure_rejects();
  report.priority_inversions = admission.priority_inversions();
  report.step_downs = ladder.step_downs();
  report.step_ups = ladder.step_ups();
  report.fault_events = injector.total_injected();
  report.fault_log = injector.events();

  if (spike_out != nullptr) {
    spike_out->phases.clear();
    for (std::size_t i = 0; i < phases.size(); ++i) {
      OverloadPhaseStats ps;
      ps.load = phases[i].load;
      ps.offered = phase_offered[i];
      ps.processed = phase_processed[i];
      ps.goodput_per_s = phases[i].duration.seconds() > 0.0
                             ? static_cast<double>(phase_processed[i]) /
                                   phases[i].duration.seconds()
                             : 0.0;
      ps.p99_ms = HistMs(phase_lat[i], 0.99);
      spike_out->phases.push_back(ps);
    }
  }
  return report;
}

Expected<OverloadReport> RunOverloadSoak(const OverloadConfig& cfg) {
  return RunPhases(cfg, {{cfg.load, cfg.duration}}, nullptr);
}

Expected<OverloadSpikeReport> RunOverloadSpike(const OverloadConfig& base,
                                               const std::vector<OverloadPhase>& phases) {
  OverloadSpikeReport spike;
  auto overall = RunPhases(base, phases, &spike);
  if (!overall.ok()) return overall.status();
  spike.overall = std::move(*overall);
  return spike;
}

}  // namespace arbd::scenarios
