#include "scenarios/healthcare.h"

#include <algorithm>

namespace arbd::scenarios {

void EhrStore::Put(HealthRecord record) {
  records_[record.patient_id] = std::move(record);
}

Expected<const HealthRecord*> EhrStore::Get(const std::string& patient_id) const {
  auto it = records_.find(patient_id);
  if (it == records_.end()) return Status::NotFound("patient '" + patient_id + "'");
  return &it->second;
}

EhrStore EhrStore::Synthetic(std::size_t n, std::uint64_t seed) {
  EhrStore store;
  Rng rng(seed);
  static constexpr const char* kBlood[] = {"A+", "A-", "B+", "B-", "O+", "O-", "AB+", "AB-"};
  static constexpr const char* kConditions[] = {"hypertension", "diabetes", "asthma",
                                                "arrhythmia", "none"};
  static constexpr const char* kMeds[] = {"beta-blocker", "insulin", "statin", "none"};
  for (std::size_t i = 0; i < n; ++i) {
    HealthRecord r;
    r.patient_id = "patient-" + std::to_string(i);
    r.age = static_cast<int>(rng.UniformInt(18, 90));
    r.blood_type = kBlood[rng.NextBelow(std::size(kBlood))];
    r.conditions.push_back(kConditions[rng.NextBelow(std::size(kConditions))]);
    r.medications.push_back(kMeds[rng.NextBelow(std::size(kMeds))]);
    r.resting_hr = rng.Gaussian(70.0, 10.0);
    store.Put(std::move(r));
  }
  return store;
}

MonitorMetrics RunPatientMonitor(const MonitorConfig& cfg, std::uint64_t seed) {
  MonitorMetrics m;
  Rng rng(seed);
  EhrStore ehr = EhrStore::Synthetic(cfg.patients, seed ^ 0xE48ULL);

  struct Patient {
    std::string id;
    sensors::TrajectoryGenerator trajectory;
    sensors::VitalsModel vitals;
    double resting_hr;
    bool in_episode = false;
    bool detected = false;
    TimePoint episode_start = TimePoint::Min();
    TimePoint last_alert = TimePoint::Min();
    TimePoint last_episode_end = TimePoint::Min();
  };

  std::vector<Patient> patients;
  patients.reserve(cfg.patients);
  for (std::size_t i = 0; i < cfg.patients; ++i) {
    const std::string id = "patient-" + std::to_string(i);
    const HealthRecord* record = *ehr.Get(id);

    sensors::TrajectoryConfig traj;
    traj.kind = sensors::MotionKind::kRandomWalk;
    traj.speed_mps = 0.8;

    sensors::VitalsConfig vit;
    vit.resting_hr = record->resting_hr;
    vit.anomaly_rate_per_hour = cfg.anomaly_rate_per_hour;
    vit.period = cfg.sample_period;

    patients.push_back(Patient{id,
                               sensors::TrajectoryGenerator(traj, seed + i),
                               sensors::VitalsModel(vit, seed * 31 + i),
                               record->resting_hr});
  }

  analytics::KeyedWindows windows(cfg.window);
  analytics::ZScoreDetector::Config zcfg;
  zcfg.z_threshold = cfg.zscore_threshold;
  analytics::ZScoreDetector zscore(zcfg);
  const Duration refractory = cfg.window;  // one alert per window per patient
  double latency_sum_s = 0.0;
  TimePoint now;

  while (now < TimePoint{} + cfg.run_length) {
    now += cfg.sample_period;
    for (auto& p : patients) {
      p.trajectory.Step(cfg.sample_period);
      auto truth = p.trajectory.state();
      truth.time = now;
      const auto sample = p.vitals.Sample(truth);
      ++m.samples_processed;

      // Ground-truth episode bookkeeping.
      if (sample.truth_anomaly && !p.in_episode) {
        p.in_episode = true;
        p.detected = false;
        p.episode_start = now;
      } else if (!sample.truth_anomaly && p.in_episode) {
        p.in_episode = false;
        p.last_episode_end = now;
        ++m.episodes;
        if (p.detected) ++m.detected;
      }

      windows.Add(p.id, now, sample.heart_rate_bpm);
      const auto snap = windows.Query(p.id, now);
      if (snap.count < 3) continue;  // need a few samples before judging

      bool triggered;
      if (cfg.zscore) {
        triggered = zscore.Observe(p.id, sample.heart_rate_bpm);
      } else {
        const double threshold = cfg.personalized
                                     ? p.resting_hr + cfg.personalized_delta
                                     : cfg.alert_hr_threshold;
        triggered = snap.mean > threshold;
      }
      const bool refractory_clear =
          p.last_alert == TimePoint::Min() || now - p.last_alert >= refractory;
      if (triggered && refractory_clear) {
        p.last_alert = now;
        m.alerts.push_back({p.id, now, snap.mean});
        if (p.in_episode) {
          if (!p.detected) {
            p.detected = true;
            latency_sum_s += (now - p.episode_start).seconds();
          }
        } else if (p.last_episode_end == TimePoint::Min() ||
                   now - p.last_episode_end > cfg.window) {
          // Not during an episode and not the detector's lag tail.
          ++m.false_alerts;
        }
      }
    }
  }

  // Close out any episodes still open at the end of the run.
  for (auto& p : patients) {
    if (p.in_episode) {
      ++m.episodes;
      if (p.detected) ++m.detected;
    }
  }

  if (m.episodes > 0) {
    m.recall = static_cast<double>(m.detected) / static_cast<double>(m.episodes);
  }
  const std::size_t true_alert_count = m.alerts.size() - m.false_alerts;
  if (!m.alerts.empty()) {
    m.precision = static_cast<double>(true_alert_count) / static_cast<double>(m.alerts.size());
  }
  if (m.detected > 0) {
    m.mean_detection_latency_s = latency_sum_s / static_cast<double>(m.detected);
  }
  return m;
}

}  // namespace arbd::scenarios
