#include "scenarios/transport.h"

#include <algorithm>
#include <cmath>

namespace arbd::scenarios {

void ThreatAssessor::OnBeacon(const Beacon& beacon, TimePoint now) {
  (void)now;
  neighbours_[beacon.vehicle_id] = beacon;
}

std::size_t ThreatAssessor::ExpireStale(TimePoint now) {
  std::size_t dropped = 0;
  for (auto it = neighbours_.begin(); it != neighbours_.end();) {
    if (now - it->second.sent_at > cfg_.beacon_staleness) {
      it = neighbours_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

std::vector<Threat> ThreatAssessor::Assess(const Beacon& self, TimePoint now,
                                           const geo::CityModel* city) const {
  std::vector<Threat> threats;
  for (const auto& [id, nb] : neighbours_) {
    if (id == self.vehicle_id) continue;
    // Extrapolate the neighbour to "now" from its last beacon, then solve
    // constant-velocity closest approach.
    const double age = (now - nb.sent_at).seconds();
    const double ne = nb.east + nb.vel_east * age;
    const double nn = nb.north + nb.vel_north * age;

    const double pe = ne - self.east;
    const double pn = nn - self.north;
    const double ve = nb.vel_east - self.vel_east;
    const double vn = nb.vel_north - self.vel_north;
    const double v2 = ve * ve + vn * vn;
    double t_star = 0.0;
    if (v2 > 1e-9) t_star = std::clamp(-(pe * ve + pn * vn) / v2, 0.0, cfg_.horizon_s);
    const double ce = pe + ve * t_star;
    const double cn = pn + vn * t_star;
    const double dist = std::sqrt(ce * ce + cn * cn);
    if (dist > cfg_.warn_distance_m) continue;

    Threat t;
    t.other_id = id;
    t.time_to_closest_s = t_star;
    t.closest_distance_m = dist;
    if (city != nullptr) {
      t.occluded = city->IsOccluded(self.east, self.north, 1.2, ne, nn, 1.2);
    }
    threats.push_back(std::move(t));
  }
  return threats;
}

VanetMetrics RunVanetSimulation(const VanetConfig& cfg, const geo::CityModel& city,
                                std::uint64_t seed) {
  VanetMetrics m;
  Rng rng(seed);

  struct Vehicle {
    std::string id;
    sensors::TrajectoryGenerator trajectory;
    ThreatAssessor assessor;
  };

  std::vector<Vehicle> vehicles;
  vehicles.reserve(cfg.vehicles);
  for (std::size_t i = 0; i < cfg.vehicles; ++i) {
    sensors::TrajectoryConfig traj;
    traj.kind = sensors::MotionKind::kVehicle;
    traj.speed_mps = cfg.speed_mps;
    traj.bounds_half_extent_m = 300.0;
    Vehicle v{"veh-" + std::to_string(i),
              sensors::TrajectoryGenerator(traj, seed + i * 7919),
              ThreatAssessor(cfg.threat)};
    v.trajectory.set_start(rng.Uniform(-250.0, 250.0), rng.Uniform(-250.0, 250.0),
                           rng.Uniform(0.0, 360.0));
    vehicles.push_back(std::move(v));
  }

  // Per unordered pair: encounter state.
  struct PairState {
    bool inside = false;           // currently below near-miss distance
    TimePoint first_warning = TimePoint::Min();
    TimePoint last_warning = TimePoint::Min();
  };
  std::map<std::pair<std::size_t, std::size_t>, PairState> pairs;
  double lead_sum_s = 0.0;

  TimePoint now;
  while (now < TimePoint{} + cfg.run_length) {
    now += cfg.beacon_period;

    // Move everyone and broadcast beacons (lossy).
    std::vector<Beacon> beacons(vehicles.size());
    for (std::size_t i = 0; i < vehicles.size(); ++i) {
      const auto s = vehicles[i].trajectory.Step(cfg.beacon_period);
      Beacon b;
      b.vehicle_id = vehicles[i].id;
      b.sent_at = now;
      b.east = s.east;
      b.north = s.north;
      b.vel_east = s.vel_east;
      b.vel_north = s.vel_north;
      beacons[i] = b;
    }
    for (std::size_t i = 0; i < vehicles.size(); ++i) {
      for (std::size_t j = 0; j < vehicles.size(); ++j) {
        if (i == j) continue;
        if (rng.Bernoulli(cfg.drop_rate)) continue;
        // 300 m radio range.
        const double de = beacons[j].east - beacons[i].east;
        const double dn = beacons[j].north - beacons[i].north;
        if (de * de + dn * dn > 300.0 * 300.0) continue;
        vehicles[i].assessor.OnBeacon(beacons[j], now);
      }
      ++m.beacons_sent;
      vehicles[i].assessor.ExpireStale(now);
    }

    // Threat assessment + warning bookkeeping.
    for (std::size_t i = 0; i < vehicles.size(); ++i) {
      const auto threats = vehicles[i].assessor.Assess(
          beacons[i], now, cfg.use_city_occlusion ? &city : nullptr);
      for (const auto& t : threats) {
        ++m.warnings_issued;
        if (t.occluded) ++m.occluded_warnings;
        // Record against the pair.
        std::size_t j = 0;
        for (; j < vehicles.size(); ++j) {
          if (vehicles[j].id == t.other_id) break;
        }
        if (j >= vehicles.size()) continue;
        auto key = std::minmax(i, j);
        auto& ps = pairs[{key.first, key.second}];
        if (ps.first_warning == TimePoint::Min() ||
            now - ps.last_warning > Duration::Seconds(10)) {
          ps.first_warning = now;  // new interaction window
        }
        ps.last_warning = now;
      }
    }

    // Ground-truth near-miss detection.
    for (std::size_t i = 0; i < vehicles.size(); ++i) {
      for (std::size_t j = i + 1; j < vehicles.size(); ++j) {
        const double de = beacons[j].east - beacons[i].east;
        const double dn = beacons[j].north - beacons[i].north;
        const double dist = std::sqrt(de * de + dn * dn);
        auto& ps = pairs[{i, j}];
        if (!ps.inside && dist < cfg.near_miss_distance_m) {
          ps.inside = true;
          ++m.encounters;
          if (ps.last_warning != TimePoint::Min() &&
              now - ps.last_warning < Duration::Seconds(8)) {
            ++m.warned;
            lead_sum_s += (now - ps.first_warning).seconds();
          }
        } else if (ps.inside && dist > cfg.near_miss_distance_m * 2.0) {
          ps.inside = false;
        }
      }
    }
  }

  if (m.encounters > 0) {
    m.recall = static_cast<double>(m.warned) / static_cast<double>(m.encounters);
  }
  if (m.warned > 0) {
    m.mean_lead_time_s = lead_sum_s / static_cast<double>(m.warned);
  }
  return m;
}

}  // namespace arbd::scenarios
