#include "scenarios/failover.h"

#include <algorithm>
#include <memory>

#include "common/rng.h"
#include "stream/log.h"

namespace arbd::scenarios {
namespace {

// Same out-of-orderness trick as the chaos soak: windows only fire at the
// final Finish, so the results table is independent of how partition
// polling interleaves across crash schedules.
constexpr double kSoakLatenessSlackS = 1e6;

// Retail-flavored workload with strictly increasing event times — the
// event time is each record's unique identity for the loss/duplicate
// audit (a duplicate append is two log entries with the same identity).
std::vector<stream::Event> MakeWorkload(const FailoverConfig& cfg) {
  Rng rng(cfg.seed * 0x9e3779b97f4a7c15ULL + 7);
  ZipfGenerator zipf(60, 1.1);
  std::vector<stream::Event> events;
  events.reserve(cfg.records);
  TimePoint t;
  for (std::size_t i = 0; i < cfg.records; ++i) {
    t += Duration::Millis(static_cast<std::int64_t>(5 + rng.NextBelow(10)));
    stream::Event e;
    e.key = "sku" + std::to_string(zipf.Next(rng));
    e.attribute = "purchase";
    e.value = rng.Uniform(1.0, 50.0);
    e.event_time = t;
    events.push_back(std::move(e));
  }
  return events;
}

stream::PipelineFactory MakeFactory() {
  return []() {
    auto p = std::make_unique<stream::Pipeline>(Duration::Seconds(kSoakLatenessSlackS));
    p->WindowAggregate(stream::WindowSpec::Tumbling(Duration::Seconds(1)),
                       stream::AggKind::kSum);
    return p;
  };
}

}  // namespace

Expected<FailoverReport> RunFailoverSoak(const FailoverConfig& cfg) {
  auto plan = fault::FaultPlan::Parse(cfg.fault_spec);
  if (!plan.ok()) return plan.status();

  FailoverReport report;
  fault::FaultInjector injector(*plan, cfg.fault_seed);
  Rng kill_rng(cfg.fault_seed ^ 0xfa11fa11u);

  SimClock clock;
  stream::Broker broker(clock);
  stream::TopicConfig tc;
  tc.partitions = cfg.partitions;
  tc.replication_factor = std::max<std::uint32_t>(1, cfg.replication_factor);
  auto created = broker.CreateTopic("failover", tc);
  if (!created.ok()) return created;

  fault::RetryPolicy retry;
  retry.max_attempts = std::max<std::size_t>(1, cfg.producer_attempts);
  stream::IdempotentProducer producer(broker, "failover", retry,
                                      cfg.fault_seed ^ 0x9d);

  // The exactly-once job: results buffer inside the job and reach this
  // sink only when the covering checkpoint commits.
  std::map<std::string, std::uint64_t> delivered;
  stream::CheckpointedJob job(broker, "failover", "failover-job", MakeFactory(),
                              cfg.checkpoint_every);
  job.SetTransactionalSink([&](const stream::WindowResult& r) {
    const std::string id = r.key + "|" + std::to_string(r.window_start.millis()) +
                           "|" + std::to_string(r.window_end.millis());
    ++delivered[id];
    report.results[r.key + "|" + std::to_string(r.window_start.millis())] = {r.value,
                                                                             r.count};
  });
  broker.set_fault_injector(&injector);
  job.set_fault_injector(&injector);

  const auto events = MakeWorkload(cfg);
  // Acked identities (event-time nanos): the records the audit holds the
  // log accountable for.
  std::vector<std::int64_t> acked_ids;
  acked_ids.reserve(events.size());

  const std::size_t chunk = std::max<std::size_t>(1, cfg.produce_chunk);
  const std::size_t cap =
      cfg.max_pump_iterations != 0
          ? cfg.max_pump_iterations
          : 1000 + (cfg.records / std::max<std::size_t>(1, cfg.batch) + 1) * 200;
  std::size_t iterations = 0;
  std::size_t next = 0;

  auto pump_once = [&]() -> Status {
    if (cfg.kill_p > 0.0 && kill_rng.Bernoulli(cfg.kill_p)) {
      // Mid-run leader kill: the job is between checkpoints, the producer
      // between chunks — the successor must serve both without loss.
      const auto p = static_cast<stream::PartitionId>(kill_rng.NextBelow(cfg.partitions));
      (void)broker.CrashLeader("failover", p, cfg.kill_restore_ops);
    }
    auto n = job.Pump(cfg.batch);
    if (!n.ok()) return n.status();
    if (*n == 0 && !job.crashed() && job.Lag() > 0) {
      auto s = job.Checkpoint();
      if (!s.ok() && s.code() != StatusCode::kUnavailable) return s;
    }
    return Status::Ok();
  };

  while (next < events.size()) {
    const std::size_t until = std::min(events.size(), next + chunk);
    for (; next < until; ++next) {
      const auto& e = events[next];
      ++report.offered;
      auto r = producer.Send(stream::Record::Make(e.key, e.Encode(), e.event_time));
      if (r.ok()) {
        ++report.acked;
        acked_ids.push_back(e.event_time.nanos());
      } else if (r.status().code() == StatusCode::kUnavailable) {
        ++report.denied;
      } else {
        return r.status();
      }
      clock.Advance(Duration::Millis(1));
    }
    if (++iterations > cap) {
      report.wedged = true;
      break;
    }
    auto s = pump_once();
    if (!s.ok()) return s;
  }

  // Drain: everything committed to the log must flow through the job.
  while (!report.wedged && (job.Lag() > 0 || job.crashed())) {
    if (++iterations > cap) {
      report.wedged = true;
      break;
    }
    auto s = pump_once();
    if (!s.ok()) return s;
  }
  auto fin = job.Finish();
  if (!fin.ok()) return fin;

  // --- audits ---------------------------------------------------------
  auto topic = broker.GetTopic("failover");
  if (!topic.ok()) return topic.status();
  std::map<std::int64_t, std::uint64_t> copies;
  for (stream::PartitionId p = 0; p < (*topic)->partition_count(); ++p) {
    const auto& part = (*topic)->partition(p);
    auto fetched = part.Fetch(part.log_start_offset(), part.size());
    if (!fetched.ok()) return fetched.status();
    for (const auto& sr : *fetched) {
      ++copies[sr.record.event_time.nanos()];
      ++report.committed_records;
    }
    auto& rp = (*topic)->replication(p);
    const auto stats = rp.stats();
    report.replication.failovers += stats.failovers;
    report.replication.node_crashes += stats.node_crashes;
    report.replication.node_restores += stats.node_restores;
    report.replication.truncated_entries += stats.truncated_entries;
    report.replication.fenced_appends += stats.fenced_appends;
    report.replication.dedup_hits += stats.dedup_hits;
    report.replication.unavailable_rejects += stats.unavailable_rejects;
    report.hw_histories.push_back(rp.hw_history());
  }
  for (const std::int64_t id : acked_ids) {
    auto it = copies.find(id);
    if (it == copies.end()) ++report.committed_loss;
  }
  for (const auto& [id, n] : copies) {
    if (n > 1) report.log_duplicates += n - 1;
  }
  for (const auto& [id, n] : delivered) {
    report.outputs_delivered += n;
    if (n > 1) report.output_duplicates += n - 1;
  }

  report.producer_retries = producer.retries();
  report.availability = report.offered == 0
                            ? 1.0
                            : static_cast<double>(report.acked) /
                                  static_cast<double>(report.offered);
  report.committed_digest = stream::CommittedTopicDigest(**topic);
  report.job = job.stats();
  report.fault_log = injector.events();
  return report;
}

}  // namespace arbd::scenarios
