// Brownout soak harness (E27): a modeled broker cluster under *gray*
// failures — brokers that stay up but serve slowly (`slowbroker`) or drop
// requests on a lossy link (`lossylink`), optionally overlapped with a
// fail-stop kill — while a fleet-shaped workload runs produce/read/commit
// turns, each turn framed by a deadline budget (the AR frame budget of
// ISSUE 10's deadline-propagation tentpole).
//
// Every turn is one "frame": a produce chunk sent through the
// budget-aware ClusterProducer, then one hedged read per partition, all
// charged against the same Deadline. A frame whose budget survives the
// turn is a deadline hit; the hit rate is the headline gray-failure
// metric — bench_brownout (E27) gates that hedged reads strictly improve
// it under a brownout, and that health-driven leadership demotion
// improves read p99 by draining leaderships off the browned-out broker.
//
// The fail-stop audits are inherited verbatim from the cluster soak
// (E24): zero committed loss, zero duplicate delivery, zero delivery
// gaps, controller replay == live state — now required to hold *through*
// brownouts, demotions, and brownout+kill overlap. The committed digest
// must be invariant under hedging and worker count (hedged reads bypass
// the gate and consume no injector randomness).
#pragma once

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/status.h"
#include "cluster/cluster.h"
#include "cluster/hedge.h"
#include "offload/fleet.h"

namespace arbd::scenarios {

struct BrownoutSoakConfig {
  std::uint32_t brokers = 4;
  std::uint32_t partitions = 8;
  std::uint32_t replication_factor = 3;  // clamped to `brokers` at placement
  std::uint32_t consumers = 2;           // group members, homed on broker i % brokers

  // Fleet-shaped workload (diurnal + Zipf hotspots), smaller than the
  // cluster soak's — brownout runs sweep many configurations.
  offload::FleetLoadConfig fleet{.users = 2000,
                                 .hotspots = 32,
                                 .ticks = 12,
                                 .peak_events_per_tick = 60,
                                 .seed = 7};

  // Brownout schedule. At cluster tick `slow_at_tick` broker `slow_broker`
  // is browned out to `slow_factor`× base latency for `slow_ticks`;
  // 0 disables the arm. Likewise for the lossy link.
  std::uint64_t slow_at_tick = 2;
  cluster::BrokerId slow_broker = 0;
  double slow_factor = 8.0;
  std::uint64_t slow_ticks = 24;
  std::uint64_t lossy_at_tick = 0;  // 0 = no lossy window
  cluster::BrokerId lossy_broker = 0;
  double lossy_drop_p = 0.35;
  std::uint64_t lossy_ticks = 8;

  // Optional fail-stop overlap: kill `kill_broker` at `kill_at_tick`
  // (0 = no kill) with restore window `restore_ticks` — the
  // brownout+kill schedules of the E27 robustness gate.
  std::uint64_t kill_at_tick = 0;
  cluster::BrokerId kill_broker = 1;
  std::uint64_t restore_ticks = 6;

  // Optional FaultPlan spec (plan.h grammar) fired on every cluster tick:
  // `slowbroker@p=..,x=..,ms=..` at cluster.broker and
  // `lossylink@p=..,x=..,ms=..` at cluster.link join the kill/netsplit
  // kinds. Empty = only the explicit schedule above.
  std::string fault_spec;
  std::uint64_t fault_seed = 1;

  // Gray-failure machinery under test.
  cluster::HedgeConfig hedge;    // enabled=false = primary-only reads
  cluster::HealthConfig health;  // enabled=false = no demotion verdicts
  // Per-turn frame budget charged by produce retries and hedged reads;
  // Zero = unlimited (every frame hits, the passthrough baseline).
  Duration frame_budget = Duration::Millis(33);
  Duration base_op_latency = Duration::Micros(200);

  std::size_t produce_chunk = 16;  // records produced per frame
  std::size_t read_batch = 32;     // rows each per-partition hedged read asks for
  std::size_t poll_batch = 64;     // records each member polls per turn
  std::size_t producer_attempts = 32;
  std::uint64_t seed = 1;
  std::size_t max_turns = 0;  // wedge guard; 0 = automatic bound
};

struct BrownoutSoakReport {
  // Frame accounting: one frame per turn; a hit = the frame's deadline
  // budget survived its produce chunk and hedged reads.
  std::uint64_t frames = 0;
  std::uint64_t frame_hits = 0;
  double frame_hit_rate = 0.0;

  // Producer side.
  std::uint64_t offered = 0;
  std::uint64_t acked = 0;
  std::uint64_t denied = 0;              // exhausted the retry budget
  std::uint64_t deadline_misses = 0;     // sends stopped by the frame budget
  std::uint64_t producer_retries = 0;
  double availability = 0.0;

  // Hedged-read side (modeled winner cost per read).
  std::uint64_t reads = 0;
  std::uint64_t read_rows = 0;
  std::uint64_t read_errors = 0;
  std::int64_t read_p50_ns = 0;
  std::int64_t read_p99_ns = 0;
  // Reads issued after the first health-driven demotion: the p99 here is
  // what the E27 gate compares against a health-off run's overall p99 —
  // demotion drains the browned-out leaderships, so post-demotion reads
  // should be near base latency again.
  std::uint64_t post_demotion_reads = 0;
  std::int64_t post_demotion_p99_ns = 0;
  cluster::HedgedReader::Stats hedge;

  // Committed-log audit (identity = unique event time per record).
  std::uint64_t committed_records = 0;
  std::uint64_t committed_loss = 0;   // acked identities missing (must be 0)
  std::uint64_t log_duplicates = 0;   // identities stored twice (must be 0)
  std::uint64_t committed_digest = 0; // CommittedTopicDigest over the topic

  // Consumer-group delivery audit.
  std::uint64_t delivered = 0;
  std::uint64_t delivered_duplicates = 0; // must be 0
  std::uint64_t delivery_gaps = 0;        // must be 0
  std::uint64_t fenced_commits = 0;
  std::uint64_t evictions = 0;
  std::uint64_t rejoins = 0;

  // Cluster + controller (stats carries demotions / recoveries /
  // slow_brownouts / lossy_brownouts / lossy_drops).
  cluster::ClusterStats cluster;
  std::uint64_t controller_events = 0;
  std::uint64_t controller_state_digest = 0;
  std::uint64_t controller_replay_digest = 0;
  bool controller_consistent = false;

  bool wedged = false;

  bool AuditClean() const {
    return committed_loss == 0 && log_duplicates == 0 &&
           delivered_duplicates == 0 && delivery_gaps == 0 &&
           controller_consistent && !wedged;
  }
};

Expected<BrownoutSoakReport> RunBrownoutSoak(const BrownoutSoakConfig& cfg);

}  // namespace arbd::scenarios
