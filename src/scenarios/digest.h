// Final-state digests of the tourism and overload scenarios, run on the
// deterministic executor. A digest folds every determinism-sensitive
// observable — pipeline checkpoint bytes, annotation counts, broker
// offsets, integral metric counters, per-tourist tour metrics — into one
// FNV-1a hash. The regression contract (ISSUE 3, satellite b): for a
// given seed the digest is identical at every worker count; the
// cross-worker determinism test asserts this at workers ∈ {1, 4} across
// seeds, and bench_exec (E20) asserts it across {1, 2, 4, 8}.
//
// Floating-point values are folded in as exact bit patterns, which is
// sound because every parallel path either keeps a single writer per
// accumulator or merges partial results in a canonical order — the same
// additions happen in the same order at any worker count.
#pragma once

#include <cstdint>

#include "exec/executor.h"

namespace arbd::scenarios {

// AR-platform path: seeded event streams → parallel ProcessPending
// (pipelined stages) → interpretation → frame composition (parallel
// classify), plus independent per-tourist tour simulations fanned out as
// executor tasks and merged in tourist order.
std::uint64_t TourismDigest(std::uint64_t seed, const exec::ExecConfig& exec_cfg);

// Broker path: seeded keyed batches through ParallelProduce against a
// budgeted topic (batches sized to credit on the driver, so admission is
// deterministic), consumed and truncated partition-by-partition.
std::uint64_t OverloadDigest(std::uint64_t seed, const exec::ExecConfig& exec_cfg);

}  // namespace arbd::scenarios
