#include "scenarios/brownout.h"

#include <algorithm>
#include <map>
#include <vector>

#include "common/metrics.h"
#include "scenarios/cluster.h"
#include "stream/consumer.h"
#include "stream/dataflow.h"
#include "stream/log.h"
#include "stream/replication.h"

namespace arbd::scenarios {

Expected<BrownoutSoakReport> RunBrownoutSoak(const BrownoutSoakConfig& cfg) {
  BrownoutSoakReport report;

  SimClock clock;
  stream::Broker broker(clock);
  cluster::ClusterConfig cc;
  cc.brokers = std::max<std::uint32_t>(cfg.brokers, 1);
  cc.seed = cfg.seed ^ 0xb07a11ULL;
  cc.default_restore_ticks = std::max<std::uint64_t>(cfg.restore_ticks, 1);
  cc.base_op_latency = cfg.base_op_latency;
  cc.health = cfg.health;
  cluster::BrokerCluster cluster(broker, cc);

  fault::FaultInjector* injector = nullptr;
  std::unique_ptr<fault::FaultInjector> injector_holder;
  if (!cfg.fault_spec.empty()) {
    auto plan = fault::FaultPlan::Parse(cfg.fault_spec);
    if (!plan.ok()) return plan.status();
    injector_holder = std::make_unique<fault::FaultInjector>(*plan, cfg.fault_seed);
    injector = injector_holder.get();
    cluster.set_fault_injector(injector);
  }

  stream::TopicConfig tc;
  tc.partitions = cfg.partitions;
  tc.replication_factor = std::max<std::uint32_t>(cfg.replication_factor, 1);
  auto created = cluster.CreateTopic("brownout.events", tc);
  if (!created.ok()) return created;

  fault::RetryPolicy retry;
  retry.max_attempts = std::max<std::size_t>(cfg.producer_attempts, 1);
  cluster::ClusterProducer producer(cluster, broker, "brownout.events", retry,
                                    cfg.seed ^ 0x9dULL);
  cluster::HedgedReader reader(cluster, broker, "brownout.events", cfg.hedge,
                               cfg.seed ^ 0x4ed6eULL);

  // Generation-fenced consumer group, members homed on brokers (the kill
  // overlap evicts a member mid-flight; the restore rejoins it). Delivery
  // polls run unbudgeted: the frame deadline shapes the produce/read
  // path, never the drain the gap audit depends on.
  stream::ConsumerGroup group(broker, "brownout.soak", "brownout.events");
  const std::size_t members = std::max<std::uint32_t>(cfg.consumers, 1);
  std::vector<stream::Consumer*> consumers;
  std::vector<bool> evicted(members, false);
  std::vector<std::vector<std::int64_t>> buffers(members);
  for (std::size_t i = 0; i < members; ++i) {
    auto joined = group.Join("member-" + std::to_string(i));
    if (!joined.ok()) return joined.status();
    consumers.push_back(*joined);
  }

  const auto records = MakeFleetWorkload(cfg.fleet);
  std::vector<std::int64_t> acked_ids;
  acked_ids.reserve(records.size());
  std::map<std::int64_t, std::uint64_t> delivered;

  // Per-partition cursors for the frame's hedged reads — an overlay
  // reader tier, independent of the group's committed positions.
  std::vector<stream::Offset> cursor(cfg.partitions, 0);
  Histogram read_hist;
  Histogram post_demotion_hist;
  bool slow_armed = false, lossy_armed = false, kill_fired = false;

  const std::size_t chunk = std::max<std::size_t>(cfg.produce_chunk, 1);
  const std::size_t cap =
      cfg.max_turns != 0
          ? cfg.max_turns
          : 1000 + (records.size() / chunk + 1) * 50 +
                static_cast<std::size_t>(cfg.brokers) *
                    static_cast<std::size_t>(cfg.restore_ticks + cfg.slow_ticks);

  std::size_t next = 0;
  std::size_t turn = 0;

  while (next < records.size() || group.TotalLag() > 0) {
    if (++turn > cap) {
      report.wedged = true;
      break;
    }
    // One frame per turn. With frame_budget zero the deadline is
    // unlimited — it tallies spent() but never expires, and every path
    // behaves exactly as without a deadline.
    Deadline frame = cfg.frame_budget > Duration::Zero()
                         ? Deadline::WithBudget(cfg.frame_budget)
                         : Deadline();

    // 1. Produce a chunk under the frame budget. A send the budget cuts
    // off is a deadline miss — the record is dropped at the producer
    // (never acked), which is the paper's frame semantics: stale sensor
    // data is worthless next frame.
    const std::size_t until = std::min(records.size(), next + chunk);
    for (; next < until; ++next) {
      ++report.offered;
      auto sent = producer.Send(records[next], &frame);
      if (sent.ok()) {
        ++report.acked;
        acked_ids.push_back(records[next].event_time.nanos());
      } else if (sent.status().code() == StatusCode::kDeadlineExceeded) {
        ++report.deadline_misses;
      } else if (sent.status().code() == StatusCode::kUnavailable) {
        ++report.denied;
      } else {
        return sent.status();
      }
      clock.Advance(Duration::Millis(1));
    }

    // 2. One hedged read per partition, each charged to the frame at the
    // winning attempt's modeled cost. Reads that no longer fit the frame
    // are skipped (they would blow the deadline anyway).
    for (stream::PartitionId p = 0; p < cfg.partitions; ++p) {
      if (frame.expired()) break;
      Deadline probe;  // unlimited: a pure cost meter for this read
      auto rows = reader.Fetch(p, cursor[p], cfg.read_batch, &probe);
      const Duration cost = probe.spent();
      frame.Charge(cost);
      read_hist.RecordDuration(cost);
      if (report.cluster.demotions > 0) post_demotion_hist.RecordDuration(cost);
      ++report.reads;
      if (rows.ok()) {
        report.read_rows += rows->size();
        cursor[p] += static_cast<stream::Offset>(rows->size());
      } else {
        ++report.read_errors;
      }
    }

    // 3. Every live member polls (in-flight until step 6's commit).
    for (std::size_t i = 0; i < members; ++i) {
      for (const auto& sr : consumers[i]->Poll(cfg.poll_batch)) {
        buffers[i].push_back(sr.record.event_time.nanos());
      }
    }

    // 4. Cluster time advances, then the brownout/kill schedule fires.
    cluster.Tick();
    report.cluster = cluster.stats();
    if (cfg.slow_at_tick != 0 && !slow_armed &&
        cluster.now_tick() >= cfg.slow_at_tick) {
      auto s = cluster.SlowBroker(cfg.slow_broker, cfg.slow_factor, cfg.slow_ticks);
      if (!s.ok()) return s;
      slow_armed = true;
    }
    if (cfg.lossy_at_tick != 0 && !lossy_armed &&
        cluster.now_tick() >= cfg.lossy_at_tick) {
      auto s = cluster.LossyLink(cfg.lossy_broker, cfg.lossy_drop_p, cfg.lossy_ticks);
      if (!s.ok()) return s;
      lossy_armed = true;
    }
    if (cfg.kill_at_tick != 0 && !kill_fired &&
        cluster.now_tick() >= cfg.kill_at_tick) {
      auto s = cluster.KillBroker(cfg.kill_broker, cfg.restore_ticks);
      if (!s.ok()) return s;
      kill_fired = true;
    }

    // 5. Home-broker liveness drives membership (kill overlap only; a
    // browned-out broker is up, so brownouts never evict anyone).
    for (std::size_t i = 0; i < members; ++i) {
      const auto home = static_cast<cluster::BrokerId>(i % cc.brokers);
      const bool alive = cluster.BrokerUp(home);
      if (!alive && !evicted[i]) {
        auto s = group.Evict(consumers[i]->id());
        if (!s.ok()) return s;
        evicted[i] = true;
        ++report.evictions;
      } else if (alive && evicted[i]) {
        auto s = group.Rejoin(consumers[i]->id());
        if (!s.ok()) return s;
        evicted[i] = false;
        ++report.rejoins;
      }
    }

    // 6. Commits: successful commits deliver this member's in-flight
    // polls; fenced commits discard them for redelivery.
    for (std::size_t i = 0; i < members; ++i) {
      if (buffers[i].empty()) continue;
      if (consumers[i]->Commit().ok()) {
        for (const std::int64_t id : buffers[i]) ++delivered[id];
      }
      buffers[i].clear();
    }

    ++report.frames;
    if (!frame.expired()) ++report.frame_hits;
  }

  // --- audits (identical contract to the E24 cluster soak) -------------
  auto topic = broker.GetTopic("brownout.events");
  if (!topic.ok()) return topic.status();
  std::map<std::int64_t, std::uint64_t> copies;
  for (stream::PartitionId p = 0; p < (*topic)->partition_count(); ++p) {
    const auto& part = (*topic)->partition(p);
    auto fetched = part.Fetch(part.log_start_offset(), part.size());
    if (!fetched.ok()) return fetched.status();
    for (const auto& sr : *fetched) {
      ++copies[sr.record.event_time.nanos()];
      ++report.committed_records;
    }
  }
  for (const std::int64_t id : acked_ids) {
    if (!copies.contains(id)) ++report.committed_loss;
  }
  for (const auto& [id, n] : copies) {
    if (n > 1) report.log_duplicates += n - 1;
  }
  for (const auto& [id, n] : delivered) {
    report.delivered += n;
    if (n > 1) report.delivered_duplicates += n - 1;
  }
  if (!report.wedged) {
    for (const auto& [id, n] : copies) {
      if (!delivered.contains(id)) ++report.delivery_gaps;
    }
  }

  report.frame_hit_rate =
      report.frames == 0
          ? 1.0
          : static_cast<double>(report.frame_hits) / static_cast<double>(report.frames);
  report.availability = report.offered == 0
                            ? 1.0
                            : static_cast<double>(report.acked) /
                                  static_cast<double>(report.offered);
  report.producer_retries = producer.retries();
  report.read_p50_ns = read_hist.p50();
  report.read_p99_ns = read_hist.p99();
  report.post_demotion_reads = post_demotion_hist.count();
  report.post_demotion_p99_ns = post_demotion_hist.p99();
  report.hedge = reader.stats();
  report.committed_digest = stream::CommittedTopicDigest(**topic);

  report.fenced_commits = group.fenced_commit_count();
  report.cluster = cluster.stats();
  report.controller_events = cluster.controller().appended();
  report.controller_state_digest = cluster.controller().StateDigest();
  auto replay = cluster.controller().ReplayDigest();
  if (!replay.ok()) return replay.status();
  report.controller_replay_digest = *replay;
  report.controller_consistent =
      report.controller_replay_digest == report.controller_state_digest;
  return report;
}

}  // namespace arbd::scenarios
