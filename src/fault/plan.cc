#include "fault/plan.h"

#include <array>
#include <cstdlib>
#include <utility>

namespace arbd::fault {
namespace {

constexpr std::array<std::pair<FaultKind, const char*>, 18> kKindNames = {{
    {FaultKind::kCrash, "crash"},
    {FaultKind::kTornAppend, "torn"},
    {FaultKind::kAppendError, "apperr"},
    {FaultKind::kFetchError, "fetcherr"},
    {FaultKind::kCheckpointFail, "ckptfail"},
    {FaultKind::kSnapshotCorrupt, "snapcorrupt"},
    {FaultKind::kNetLoss, "netloss"},
    {FaultKind::kOutage, "outage"},
    {FaultKind::kLatencySpike, "spike"},
    {FaultKind::kStall, "stall"},
    {FaultKind::kTaskFail, "taskfail"},
    {FaultKind::kNodeCrash, "nodecrash"},
    {FaultKind::kKillBroker, "killbroker"},
    {FaultKind::kNetSplit, "netsplit"},
    {FaultKind::kAutoSplit, "autosplit"},
    {FaultKind::kAutoMerge, "automerge"},
    {FaultKind::kSlowBroker, "slowbroker"},
    {FaultKind::kLossyLink, "lossylink"},
}};

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  for (const auto& [k, name] : kKindNames) {
    if (k == kind) return name;
  }
  return "unknown";
}

Expected<FaultPlan> FaultPlan::Parse(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty()) return plan;
  for (const std::string& token : Split(spec, ';')) {
    if (token.empty()) {
      return Status::InvalidArgument("empty rule in fault spec '" + spec + "'");
    }
    const std::size_t at = token.find('@');
    if (at == std::string::npos) {
      return Status::InvalidArgument("rule '" + token + "' missing '@params'");
    }
    const std::string kind_name = token.substr(0, at);
    FaultRule rule;
    bool known = false;
    for (const auto& [k, name] : kKindNames) {
      if (kind_name == name) {
        rule.kind = k;
        known = true;
        break;
      }
    }
    if (!known) {
      return Status::InvalidArgument("unknown fault kind '" + kind_name + "'");
    }
    bool have_p = false;
    for (const std::string& param : Split(token.substr(at + 1), ',')) {
      const std::size_t eq = param.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("param '" + param + "' is not key=value");
      }
      const std::string key = param.substr(0, eq);
      double value = 0.0;
      if (!ParseDouble(param.substr(eq + 1), &value)) {
        return Status::InvalidArgument("bad number in param '" + param + "'");
      }
      if (key == "p") {
        if (value < 0.0 || value > 1.0) {
          return Status::InvalidArgument("p must be in [0,1] in '" + token + "'");
        }
        rule.probability = value;
        have_p = true;
      } else if (key == "ms") {
        if (value < 0.0) {
          return Status::InvalidArgument("ms must be >= 0 in '" + token + "'");
        }
        rule.duration = Duration::Seconds(value / 1000.0);
      } else if (key == "x") {
        if (value < 0.0) {
          return Status::InvalidArgument("x must be >= 0 in '" + token + "'");
        }
        rule.magnitude = value;
      } else {
        return Status::InvalidArgument("unknown param key '" + key + "'");
      }
    }
    if (!have_p) {
      return Status::InvalidArgument("rule '" + token + "' must set p=");
    }
    auto s = plan.Add(rule);
    if (!s.ok()) return s;
  }
  return plan;
}

Status FaultPlan::Add(FaultRule rule) {
  if (Find(rule.kind) != nullptr) {
    return Status::InvalidArgument(std::string("duplicate rule for kind '") +
                                   FaultKindName(rule.kind) + "'");
  }
  rules_.push_back(rule);
  return Status::Ok();
}

const FaultRule* FaultPlan::Find(FaultKind kind) const {
  for (const auto& r : rules_) {
    if (r.kind == kind) return &r;
  }
  return nullptr;
}

std::string FaultPlan::ToString() const {
  std::string out;
  for (const auto& r : rules_) {
    if (!out.empty()) out += ';';
    out += FaultKindName(r.kind);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "@p=%g", r.probability);
    out += buf;
    if (r.duration > Duration::Zero()) {
      std::snprintf(buf, sizeof(buf), ",ms=%g", r.duration.seconds() * 1000.0);
      out += buf;
    }
    if (r.magnitude > 0.0) {
      std::snprintf(buf, sizeof(buf), ",x=%g", r.magnitude);
      out += buf;
    }
  }
  return out;
}

}  // namespace arbd::fault
