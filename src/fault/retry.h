// Retry with capped exponential backoff and jitter — how the offload
// layer (and anything else talking over the faulty link) turns injected
// task failures into graceful degradation instead of dropped work.
#pragma once

#include <cstddef>
#include <algorithm>

#include "common/clock.h"
#include "common/deadline.h"
#include "common/rng.h"

namespace arbd::fault {

struct RetryPolicy {
  std::size_t max_attempts = 4;                 // total tries, first included
  Duration base_backoff = Duration::Millis(5);  // before the first retry
  double multiplier = 2.0;                      // growth per retry
  double jitter = 0.2;                          // uniform fraction, ±
  Duration max_backoff = Duration::Seconds(1);  // cap before jitter

  // Retries permitted after the first attempt. max_attempts == 0 means "no
  // attempts at all" — 0 retries, not SIZE_MAX from unsigned underflow.
  std::size_t MaxRetries() const { return max_attempts == 0 ? 0 : max_attempts - 1; }

  // Backoff before retry number `retry` (1-based: retry 1 follows the
  // first failed attempt). Jitter never drives the result negative. The
  // growth loop stops as soon as the cap is reached, so huge retry counts
  // stay O(log(cap/base)) and never overflow the double to infinity.
  Duration BackoffFor(std::size_t retry, Rng& rng) const {
    if (retry == 0) return Duration::Zero();
    const double cap = max_backoff.seconds();
    double backoff_s = base_backoff.seconds();
    if (multiplier > 1.0) {
      for (std::size_t i = 1; i < retry && backoff_s < cap; ++i) backoff_s *= multiplier;
    }
    backoff_s = std::min(backoff_s, cap);
    const double jittered =
        backoff_s * (1.0 + rng.Uniform(-jitter, jitter));
    return Duration::Seconds(std::max(0.0, jittered));
  }

  // Budget-aware backoff (ISSUE 10): the sampled backoff, clamped to what
  // the deadline has left — a retry may be the last useful work inside
  // the frame, but its backoff must never sleep past the frame's end.
  // Consumes exactly the randomness BackoffFor does (one Uniform draw for
  // retry >= 1), so threading a deadline through an existing retry loop
  // cannot shift any seeded schedule; with an unlimited deadline the
  // result is bit-identical to BackoffFor.
  Duration BackoffForBudget(std::size_t retry, Rng& rng, const Deadline& deadline) const {
    const Duration sampled = BackoffFor(retry, rng);
    return std::min(sampled, deadline.remaining());
  }
};

}  // namespace arbd::fault
