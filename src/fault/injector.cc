#include "fault/injector.h"

#include <algorithm>
#include <string>

namespace arbd::fault {

const char* InjectionPointName(InjectionPoint point) {
  switch (point) {
    case InjectionPoint::kBrokerAppend: return "broker.append";
    case InjectionPoint::kBrokerFetch: return "broker.fetch";
    case InjectionPoint::kJobPumpRecord: return "job.pump";
    case InjectionPoint::kJobCheckpoint: return "job.checkpoint";
    case InjectionPoint::kJobRecover: return "job.recover";
    case InjectionPoint::kNetTransfer: return "net.transfer";
    case InjectionPoint::kTaskExecute: return "task.execute";
    case InjectionPoint::kServiceTick: return "service.tick";
    case InjectionPoint::kReplicaAppend: return "replica.append";
    case InjectionPoint::kClusterBroker: return "cluster.broker";
    case InjectionPoint::kClusterLink: return "cluster.link";
    case InjectionPoint::kClusterAutoscale: return "cluster.autoscale";
  }
  return "unknown";
}

bool FaultInjector::Fire(FaultKind kind, InjectionPoint point) {
  const FaultRule* rule = plan_.Find(kind);
  if (rule == nullptr) return false;
  const std::uint64_t opportunity = opportunities_++;
  if (!rng_.Bernoulli(rule->probability)) return false;
  events_.push_back({opportunity, kind, point});
  ++injected_[kind];
  if (metrics_ != nullptr) {
    metrics_->Add(std::string("fault.injected.") + FaultKindName(kind));
  }
  return true;
}

Duration FaultInjector::FireDuration(FaultKind kind, InjectionPoint point) {
  if (!Fire(kind, point)) return Duration::Zero();
  const FaultRule* rule = plan_.Find(kind);
  return std::max(Duration::Zero(), rule->duration);
}

double FaultInjector::FireScale(FaultKind kind, InjectionPoint point) {
  if (!Fire(kind, point)) return 1.0;
  const FaultRule* rule = plan_.Find(kind);
  return std::max(1.0, rule->magnitude);
}

void FaultInjector::RecordSurvival(FaultKind kind) {
  ++survived_[kind];
  if (metrics_ != nullptr) {
    metrics_->Add(std::string("fault.survived.") + FaultKindName(kind));
  }
}

std::uint64_t FaultInjector::injected(FaultKind kind) const {
  auto it = injected_.find(kind);
  return it == injected_.end() ? 0 : it->second;
}

std::uint64_t FaultInjector::survived(FaultKind kind) const {
  auto it = survived_.find(kind);
  return it == survived_.end() ? 0 : it->second;
}

}  // namespace arbd::fault
