// Deterministic fault-injection plans (§4.1 robustness): a FaultPlan is a
// set of rules parsed from a compact spec string, e.g.
//
//   "crash@p=1e-4;netloss@p=0.02;stall@ms=50,p=1e-3"
//
// Each rule names a fault kind, its per-opportunity probability, and the
// kind-specific parameters (duration, magnitude). Plans are pure data;
// FaultInjector (injector.h) turns a plan plus a seed into a
// bit-reproducible schedule of fault events.
#pragma once

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"

namespace arbd::fault {

enum class FaultKind {
  kCrash,           // process crash between records (CheckpointedJob)
  kTornAppend,      // broker append persists the record but reports failure
  kAppendError,     // broker append rejected cleanly (nothing persisted)
  kFetchError,      // broker fetch returns Unavailable
  kCheckpointFail,  // snapshot write torn; previous checkpoint kept
  kSnapshotCorrupt, // snapshot decode fails once on recovery (retried)
  kNetLoss,         // loss burst: extra retransmission round trips
  kOutage,          // link outage: transfer stalls for the outage duration
  kLatencySpike,    // sampled RTT multiplied by the spike factor
  kStall,           // worker stall: injected pause while pumping
  kTaskFail,        // offloaded task attempt fails (retry with backoff)
  kNodeCrash,       // replica node (the partition leader) crashes mid-produce;
                    // `x=` is how many subsequent produce attempts pass before
                    // the node restores (0 = the layer's default window)
  kKillBroker,      // a modeled cluster broker dies (all its replica slots
                    // crash, leaderships drain to surviving brokers); `x=` is
                    // how many cluster ticks pass before it restarts
                    // (0 = the cluster's default restore window)
  kNetSplit,        // seeded link partition between modeled brokers: the
                    // minority side fences, the majority keeps committing;
                    // `x=` is the heal window in cluster ticks
  kAutoSplit,       // autoscale chaos: force-split the hottest live
                    // partition this tick, thresholds notwithstanding
  kAutoMerge,       // autoscale chaos: force-merge the coldest live
                    // sibling pair this tick, cold windows notwithstanding
  kSlowBroker,      // gray failure: a modeled cluster broker browns out —
                    // alive and answering, but every operation it serves
                    // costs `x=` times the base latency; `ms=` is the
                    // window in cluster ticks (0 = the cluster's default
                    // restore window)
  kLossyLink,       // gray failure: a broker's link drops requests without
                    // fail-stop — each admitted produce/fetch/query is
                    // dropped (Unavailable, retriable) with probability
                    // `x=`, decided by a pure seeded hash; `ms=` is the
                    // window in cluster ticks (0 = the default window)
};

// Spec-string token for each kind (also used in ToString / metrics names).
const char* FaultKindName(FaultKind kind);

struct FaultRule {
  FaultKind kind = FaultKind::kCrash;
  double probability = 0.0;                // per opportunity, in [0, 1]
  Duration duration = Duration::Zero();    // stall / outage length (`ms=`)
  double magnitude = 0.0;                  // spike factor / burst size (`x=`)
};

class FaultPlan {
 public:
  FaultPlan() = default;

  // Grammar:  plan  := rule (';' rule)*
  //           rule  := kind '@' param (',' param)*
  //           param := 'p=' float | 'ms=' float | 'x=' float
  // Every rule must set `p`. An empty spec is the empty (fault-free) plan.
  static Expected<FaultPlan> Parse(const std::string& spec);

  // Canonical spec string that re-parses to this plan.
  std::string ToString() const;

  Status Add(FaultRule rule);
  const FaultRule* Find(FaultKind kind) const;
  const std::vector<FaultRule>& rules() const { return rules_; }
  bool empty() const { return rules_.empty(); }

 private:
  std::vector<FaultRule> rules_;
};

}  // namespace arbd::fault
