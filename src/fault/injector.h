// Seed-driven fault injector. Each call site that can fail declares a
// named injection point and asks the injector whether the fault fires on
// this opportunity. Decisions come from a private xoshiro stream
// (arbd::Rng), so a (plan, seed) pair yields a bit-reproducible fault
// schedule: the whole point, per "Toward Scalable and Controllable AR
// Experimentation", is that chaos runs are repeatable experiments.
//
// Determinism contract: an opportunity consumes randomness only when the
// plan has a rule for the queried kind, so instrumenting new call sites
// never perturbs the schedules of plans that do not exercise them.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "fault/plan.h"

namespace arbd::fault {

// Where in the system an opportunity arose (for logs and counters).
enum class InjectionPoint {
  kBrokerAppend,
  kBrokerFetch,
  kJobPumpRecord,
  kJobCheckpoint,
  kJobRecover,
  kNetTransfer,
  kTaskExecute,
  kServiceTick,   // the overload harness's per-tick service loop
  kReplicaAppend, // the replicated-partition leader append path
  kClusterBroker, // the cluster tick that can kill a modeled broker node
  kClusterLink,   // the cluster tick that can partition the broker network
  kClusterAutoscale, // the cluster tick's split/merge decision point
};

const char* InjectionPointName(InjectionPoint point);

// One fired fault. `opportunity` is the index of the decision (among
// decisions that consumed randomness) that fired, so two schedules can be
// compared position-by-position.
struct FaultEvent {
  std::uint64_t opportunity = 0;
  FaultKind kind = FaultKind::kCrash;
  InjectionPoint point = InjectionPoint::kBrokerAppend;

  bool operator==(const FaultEvent&) const = default;
};

class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, std::uint64_t seed,
                MetricRegistry* metrics = nullptr)
      : plan_(std::move(plan)), rng_(seed), metrics_(metrics) {}

  // Does `kind` fire at `point` on this opportunity?
  bool Fire(FaultKind kind, InjectionPoint point);

  // Duration-valued faults (stall, outage): the rule's duration when it
  // fires, zero otherwise.
  Duration FireDuration(FaultKind kind, InjectionPoint point);

  // Multiplier faults (latency spike): the rule's magnitude when it fires
  // (>= 1 enforced), 1.0 otherwise.
  double FireScale(FaultKind kind, InjectionPoint point);

  // The caller absorbed a fired fault without losing data — the number the
  // chaos harness checks against injected counts.
  void RecordSurvival(FaultKind kind);

  const FaultPlan& plan() const { return plan_; }
  const std::vector<FaultEvent>& events() const { return events_; }
  std::uint64_t opportunities() const { return opportunities_; }
  std::uint64_t injected(FaultKind kind) const;
  std::uint64_t survived(FaultKind kind) const;
  std::uint64_t total_injected() const { return events_.size(); }

 private:
  FaultPlan plan_;
  Rng rng_;
  MetricRegistry* metrics_;
  std::uint64_t opportunities_ = 0;
  std::vector<FaultEvent> events_;
  std::map<FaultKind, std::uint64_t> injected_;
  std::map<FaultKind, std::uint64_t> survived_;
};

}  // namespace arbd::fault
