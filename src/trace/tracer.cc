#include "trace/tracer.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <thread>

#include "common/serialize.h"

namespace arbd::trace {

namespace {

// SplitMix64 finalizer: cheap, well-mixed, and stable across platforms.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t HashName(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

TracerConfig TracerConfig::FromEnv() {
  TracerConfig cfg;
  const char* on = std::getenv("ARBD_TRACE");
  cfg.enabled = on != nullptr && (std::strcmp(on, "1") == 0 || std::strcmp(on, "true") == 0);
  if (const char* ring = std::getenv("ARBD_TRACE_RING")) {
    const long v = std::strtol(ring, nullptr, 10);
    if (v > 0) cfg.ring_capacity = static_cast<std::size_t>(v);
  }
  if (const char* seed = std::getenv("ARBD_TRACE_SEED")) {
    const unsigned long long v = std::strtoull(seed, nullptr, 10);
    if (v != 0) cfg.seed = static_cast<std::uint64_t>(v);
  }
  return cfg;
}

Tracer::Tracer(TracerConfig cfg) : cfg_(cfg), enabled_(cfg.enabled) {
  if (cfg_.ring_capacity == 0) cfg_.ring_capacity = 1;
}

Tracer& Tracer::Global() {
  static Tracer tracer(TracerConfig::FromEnv());
  return tracer;
}

TraceId Tracer::StartTrace(std::uint64_t key) const {
  const TraceId id = Mix64(cfg_.seed ^ Mix64(key));
  return id == 0 ? 1 : id;
}

SpanId DeriveSpanId(std::uint64_t seed, TraceId trace, SpanId parent,
                    const std::string& name, std::int64_t start_ns, std::uint64_t salt) {
  std::uint64_t h = Mix64(seed ^ trace);
  h = Mix64(h ^ (parent * 0x9e3779b97f4a7c15ULL));
  h = Mix64(h ^ HashName(name));
  h = Mix64(h ^ static_cast<std::uint64_t>(start_ns));
  h = Mix64(h ^ salt);
  return h == 0 ? 1 : h;
}

std::size_t Tracer::ThisThreadShard() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
}

void Tracer::Push(Span span) {
  Shard& shard = shards_[ThisThreadShard()];
  std::lock_guard<std::mutex> lk(shard.mu);
  if (shard.ring.size() < cfg_.ring_capacity) {
    shard.ring.push_back(std::move(span));
    ++shard.filled;
  } else {
    shard.ring[shard.next] = std::move(span);
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.next = (shard.next + 1) % cfg_.ring_capacity;
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

SpanContext Tracer::Record(const std::string& name, const SpanContext& parent,
                           Duration cost, std::vector<Tag> tags, std::uint64_t salt) {
  if (!enabled() || !parent.valid()) return parent;
  return RecordAt(name, parent, parent.at, parent.at + cost, std::move(tags), salt);
}

SpanContext Tracer::RecordAt(const std::string& name, const SpanContext& parent,
                             TimePoint start, TimePoint end, std::vector<Tag> tags,
                             std::uint64_t salt) {
  if (!enabled() || !parent.valid()) return parent;
  Span s;
  s.trace_id = parent.trace_id;
  s.parent_id = parent.span_id;
  s.span_id = DeriveSpanId(cfg_.seed, parent.trace_id, parent.span_id, name,
                           start.nanos(), salt);
  s.name = name;
  s.start = start;
  s.end = end;
  s.tags = std::move(tags);
  const SpanContext child{parent.trace_id, s.span_id, end};
  Push(std::move(s));
  return child;
}

std::vector<Span> Tracer::Drain() {
  std::vector<Span> out;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard.mu);
    for (Span& s : shard.ring) out.push_back(std::move(s));
    shard.ring.clear();
    shard.next = 0;
    shard.filled = 0;
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
    if (a.start != b.start) return a.start < b.start;
    if (a.name != b.name) return a.name < b.name;
    return a.span_id < b.span_id;
  });
  return out;
}

void Tracer::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard.mu);
    shard.ring.clear();
    shard.next = 0;
    shard.filled = 0;
  }
  recorded_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

std::uint64_t SpanTreeDigest(const std::vector<Span>& spans) {
  BinaryWriter w;
  w.WriteU64(spans.size());
  for (const Span& s : spans) {
    w.WriteU64(s.trace_id);
    w.WriteU64(s.span_id);
    w.WriteU64(s.parent_id);
    w.WriteString(s.name);
    w.WriteI64(s.start.nanos());
    w.WriteI64(s.end.nanos());
    w.WriteU64(s.tags.size());
    for (const Tag& t : s.tags) {
      w.WriteString(t.key);
      w.WriteString(t.value);
    }
  }
  return Fnv1a(w.bytes());
}

}  // namespace arbd::trace
