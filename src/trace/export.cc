#include "trace/export.h"

#include <cinttypes>
#include <cstdio>

namespace arbd::trace {

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendHexU64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  out += buf;
}

}  // namespace

std::string ToChromeTraceJson(const std::vector<Span>& spans) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const Span& s : spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    AppendEscaped(out, s.name);
    out += "\",\"cat\":\"arbd\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    // One row per trace: chrome renders tid as the track. Trace ids are
    // 64-bit; fold to a stable positive int for the track and keep the
    // full id in args.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, s.trace_id % 1'000'000'007ULL);
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f,",
                  static_cast<double>(s.start.nanos()) / 1e3,
                  static_cast<double>(s.duration().nanos()) / 1e3);
    out += buf;
    out += "\"args\":{\"trace_id\":\"";
    AppendHexU64(out, s.trace_id);
    out += "\",\"span_id\":\"";
    AppendHexU64(out, s.span_id);
    out += "\",\"parent_id\":\"";
    AppendHexU64(out, s.parent_id);
    out += '"';
    for (const Tag& t : s.tags) {
      out += ",\"";
      AppendEscaped(out, t.key);
      out += "\":\"";
      AppendEscaped(out, t.value);
      out += '"';
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

Status WriteChromeTrace(const std::vector<Span>& spans, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Unavailable("cannot open trace output file '" + path + "'");
  }
  const std::string json = ToChromeTraceJson(spans);
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::DataLoss("short write to trace output file '" + path + "'");
  }
  return Status::Ok();
}

}  // namespace arbd::trace
