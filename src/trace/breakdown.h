// Per-stage latency breakdown over a drained span set — the aggregator
// that answers the paper's timeliness question: *which stage ate the
// frame budget*. Spans are grouped per trace (one trace = one frame /
// causal unit); each span is attributed its *self time* — its interval
// minus the union of its direct children's intervals — so nested spans
// (a frame root over its stages) never double-count, and sequential
// chains attribute their full duration. For traces whose spans tile the
// root interval (the serial frame pipeline), the per-stage self times sum
// exactly to the end-to-end latency — E21 gates this within 1%.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "trace/tracer.h"

namespace arbd::trace {

struct StageStats {
  std::string name;
  std::uint64_t spans = 0;
  Histogram self_times;        // per-span self time, nanoseconds
  Duration total_self;         // Σ self over every span of this name
  double critical_share = 0.0; // total_self / Σ end-to-end across traces
};

struct BreakdownReport {
  std::vector<StageStats> stages;       // sorted by descending total_self
  std::uint64_t traces = 0;
  Histogram end_to_end;                 // per-trace makespan, nanoseconds
  Duration total_end_to_end;            // Σ per-trace (max end − min start)
  Duration total_attributed;            // Σ self over all spans
  // total_attributed / total_end_to_end: 1.0 when every trace's spans tile
  // its interval (nothing missed, nothing double-counted).
  double coverage = 0.0;

  const StageStats* Stage(const std::string& name) const;
};

class LatencyBreakdown {
 public:
  void Add(const Span& span);
  void AddAll(const std::vector<Span>& spans);

  BreakdownReport Compute() const;

 private:
  // Spans grouped by trace; attribution is per-trace so sibling traces
  // never shadow each other's intervals.
  std::map<TraceId, std::vector<Span>> traces_;
};

}  // namespace arbd::trace
