#include "trace/breakdown.h"

#include <algorithm>

namespace arbd::trace {

namespace {

// Total length of the union of [lo, hi) intervals, clipped to [clip_lo,
// clip_hi). Intervals need not be sorted or disjoint.
std::int64_t UnionLength(std::vector<std::pair<std::int64_t, std::int64_t>> iv,
                         std::int64_t clip_lo, std::int64_t clip_hi) {
  std::int64_t covered = 0;
  std::sort(iv.begin(), iv.end());
  std::int64_t cursor = clip_lo;
  for (const auto& [lo, hi] : iv) {
    const std::int64_t a = std::max(lo, cursor);
    const std::int64_t b = std::min(hi, clip_hi);
    if (b > a) {
      covered += b - a;
      cursor = b;
    }
  }
  return covered;
}

}  // namespace

const StageStats* BreakdownReport::Stage(const std::string& name) const {
  for (const auto& s : stages) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

void LatencyBreakdown::Add(const Span& span) { traces_[span.trace_id].push_back(span); }

void LatencyBreakdown::AddAll(const std::vector<Span>& spans) {
  for (const Span& s : spans) Add(s);
}

BreakdownReport LatencyBreakdown::Compute() const {
  BreakdownReport report;
  std::map<std::string, StageStats> by_name;

  for (const auto& [trace_id, spans] : traces_) {
    (void)trace_id;
    if (spans.empty()) continue;
    ++report.traces;

    std::int64_t lo = spans.front().start.nanos();
    std::int64_t hi = spans.front().end.nanos();
    std::map<SpanId, std::vector<std::pair<std::int64_t, std::int64_t>>> child_iv;
    for (const Span& s : spans) {
      lo = std::min(lo, s.start.nanos());
      hi = std::max(hi, s.end.nanos());
      child_iv[s.parent_id].emplace_back(s.start.nanos(), s.end.nanos());
    }
    report.end_to_end.Record(hi - lo);
    report.total_end_to_end += Duration::Nanos(hi - lo);

    for (const Span& s : spans) {
      std::int64_t self = s.end.nanos() - s.start.nanos();
      auto it = child_iv.find(s.span_id);
      if (it != child_iv.end()) {
        self -= UnionLength(it->second, s.start.nanos(), s.end.nanos());
      }
      StageStats& stats = by_name[s.name];
      stats.name = s.name;
      ++stats.spans;
      stats.self_times.Record(self);
      stats.total_self += Duration::Nanos(self);
      report.total_attributed += Duration::Nanos(self);
    }
  }

  const double denom = static_cast<double>(report.total_end_to_end.nanos());
  for (auto& [name, stats] : by_name) {
    (void)name;
    stats.critical_share =
        denom > 0.0 ? static_cast<double>(stats.total_self.nanos()) / denom : 0.0;
    report.stages.push_back(std::move(stats));
  }
  std::sort(report.stages.begin(), report.stages.end(),
            [](const StageStats& a, const StageStats& b) {
              if (a.total_self != b.total_self) return a.total_self > b.total_self;
              return a.name < b.name;
            });
  report.coverage =
      denom > 0.0 ? static_cast<double>(report.total_attributed.nanos()) / denom : 0.0;
  return report;
}

}  // namespace arbd::trace
