// Chrome trace-event exporter: serializes a drained span set to the
// chrome://tracing / Perfetto JSON array format ("X" complete events,
// microsecond timestamps). One row (tid) per trace, so frames stack
// vertically and each frame's stage chain reads left-to-right on the
// modeled-time axis.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "trace/tracer.h"

namespace arbd::trace {

// {"traceEvents": [...]} JSON document for the given spans. Tags become
// "args" entries; span/parent ids are emitted as hex strings so a span
// tree survives the round trip.
std::string ToChromeTraceJson(const std::vector<Span>& spans);

// Convenience: write ToChromeTraceJson to `path` (truncating).
Status WriteChromeTrace(const std::vector<Span>& spans, const std::string& path);

}  // namespace arbd::trace
