// Deterministic causal tracing — the Dapper-shaped observability layer
// for the paper's timeliness axis. A trace is a tree of spans covering one
// causal unit of work (a frame, a record's journey through the stream
// stack); spans live on the *modeled* time axis, not wall time, so for a
// given {seed, workers} pair the span set is bit-identical — the same
// contract the deterministic executor gives every other observable.
//
// Design:
//   - SpanContext is the propagated header: {trace id, span id, causal
//     cursor}. The cursor is the virtual completion time of the span the
//     context names; a downstream span starts at its parent's cursor and
//     ends cursor + modeled cost. Contexts piggyback on stream::Record
//     headers through Broker produce/fetch and on stream::Event through
//     Pipeline stages (including ProcessBatchParallel task chains).
//   - Span ids are seeded hashes of (trace, parent, name, start, salt),
//     never allocation order or thread ids, so ids are identical at every
//     worker count.
//   - Completed spans land in fixed-capacity per-thread ring shards
//     (MetricRegistry's striping discipline): no locks shared between
//     workers on the hot path, bounded memory, oldest spans overwritten
//     under overflow (counted in dropped()).
//   - Off-path: when disabled, the only cost at an instrumentation site is
//     one relaxed atomic bool load — no allocation, no locking, no time
//     math. bench_trace (E21) gates this at <1% of modeled makespan.
//
// Determinism caveat: Drain() returns spans in a canonical sort (ring
// insertion order is thread-dependent), so span *sets* — and
// SpanTreeDigest over them — are worker-count independent as long as no
// ring overflowed. Size rings above the workload's span volume when
// asserting digest equality; dropped() says whether a comparison is valid.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"

namespace arbd::trace {

using TraceId = std::uint64_t;
using SpanId = std::uint64_t;

// Propagated causal context. `at` is the virtual-time cursor: when this
// context names a completed span, `at` is that span's end time, i.e. the
// earliest instant causally-downstream work can start.
struct SpanContext {
  TraceId trace_id = 0;
  SpanId span_id = 0;   // 0 at the root: children of the root have parent 0
  TimePoint at;
  bool valid() const { return trace_id != 0; }
};

struct Tag {
  std::string key;
  std::string value;
};

struct Span {
  TraceId trace_id = 0;
  SpanId span_id = 0;
  SpanId parent_id = 0;
  std::string name;
  TimePoint start;
  TimePoint end;
  std::vector<Tag> tags;

  Duration duration() const { return end - start; }
};

struct TracerConfig {
  bool enabled = false;
  // Completed-span ring capacity per thread shard (kShards rings total).
  std::size_t ring_capacity = 16384;
  std::uint64_t seed = 0x7ace5eedULL;

  // Reads ARBD_TRACE (1/true enables), ARBD_TRACE_RING, ARBD_TRACE_SEED.
  static TracerConfig FromEnv();
};

class Tracer {
 public:
  explicit Tracer(TracerConfig cfg = {});

  // Process-wide tracer configured from the environment once (ARBD_TRACE=1
  // turns the whole platform's instrumentation on without touching call
  // sites — the "always-on with cheap off-path" discipline).
  static Tracer& Global();

  // The off-path check every instrumentation site performs first.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  std::uint64_t seed() const { return cfg_.seed; }

  // Seeded, nonzero trace id for causal unit `key` (frame index, record
  // sequence number…). Same seed + key => same id at any worker count.
  TraceId StartTrace(std::uint64_t key) const;

  // Root context for a trace starting at virtual time `at`.
  SpanContext RootContext(TraceId id, TimePoint at) const {
    return SpanContext{id, 0, at};
  }

  // Record a completed span of modeled duration `cost` starting at the
  // parent's cursor; returns the child context downstream work chains
  // from. `salt` disambiguates same-named siblings recorded under the same
  // parent at the same cursor (pass an index/offset). No-op (returns
  // `parent` unchanged) when disabled or the parent is invalid.
  SpanContext Record(const std::string& name, const SpanContext& parent, Duration cost,
                     std::vector<Tag> tags = {}, std::uint64_t salt = 0);

  // Explicit-interval variant for spans that don't start at the parent
  // cursor (frame roots recorded after their children, overlapping
  // branches). The returned context's cursor is `end`.
  SpanContext RecordAt(const std::string& name, const SpanContext& parent,
                       TimePoint start, TimePoint end, std::vector<Tag> tags = {},
                       std::uint64_t salt = 0);

  // Collect and clear every shard's completed spans, in canonical order:
  // (trace_id, start, name, span_id). Driver-only between Drains of the
  // same shard set; concurrent Record from workers is safe.
  std::vector<Span> Drain();

  std::uint64_t recorded() const { return recorded_.load(std::memory_order_relaxed); }
  // Spans overwritten by ring overflow since construction/Clear.
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  void Clear();

 private:
  static constexpr std::size_t kShards = 8;

  struct Shard {
    mutable std::mutex mu;
    std::vector<Span> ring;   // capacity-bounded, oldest overwritten
    std::size_t next = 0;     // ring cursor
    std::size_t filled = 0;   // live spans (<= capacity)
  };

  static std::size_t ThisThreadShard();
  void Push(Span span);

  TracerConfig cfg_;
  std::atomic<bool> enabled_;
  std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

// Deterministic id for a span given its causal coordinates (exposed for
// tests asserting cross-worker-count id stability).
SpanId DeriveSpanId(std::uint64_t seed, TraceId trace, SpanId parent,
                    const std::string& name, std::int64_t start_ns, std::uint64_t salt);

// FNV-1a digest over the canonical serialization of a span set (sort it
// first — Drain already does). Equal digests mean equal span trees:
// ids, parents, names, intervals, and tags all match.
std::uint64_t SpanTreeDigest(const std::vector<Span>& spans);

}  // namespace arbd::trace
