// E13 — Azuma's "registered in 3-D": tracking accuracy of the EKF fusion
// against GPS-only and dead-reckoning baselines, swept over GPS noise and
// with/without camera landmark updates.
#include <benchmark/benchmark.h>

#include "ar/tracker.h"
#include "bench/table.h"
#include "geo/city.h"
#include "sensors/rig.h"

namespace {

using namespace arbd;

struct RunResult {
  double rmse;
  double max_err;
  double yaw_rmse;
};

RunResult RunTracker(ar::TrackerMode mode, double gps_noise, bool camera,
                     std::uint64_t seed) {
  static const geo::CityModel city = geo::CityModel::Generate(geo::CityConfig{}, 55);

  sensors::RigConfig rig_cfg;
  rig_cfg.trajectory.kind = sensors::MotionKind::kRandomWalk;
  rig_cfg.trajectory.speed_mps = 1.4;
  rig_cfg.trajectory.bounds_half_extent_m = 200.0;
  rig_cfg.gps.noise_stddev_m = gps_noise;
  rig_cfg.gps.dropout_rate = 0.05;
  rig_cfg.enable_camera = camera;
  rig_cfg.camera.detection_rate = 0.7;
  sensors::SensorRig rig(rig_cfg, seed);

  // Landmarks = POI anchors from the city (facade features a visual
  // tracker could recognize).
  std::vector<std::tuple<std::uint64_t, double, double>> landmarks;
  std::map<std::uint64_t, std::pair<double, double>> landmark_pos;
  for (const auto* poi : city.pois().All()) {
    const geo::Enu e = city.frame().ToEnu(poi->pos);
    landmarks.emplace_back(poi->id, e.east, e.north);
    landmark_pos[poi->id] = {e.east, e.north};
  }
  rig.SetLandmarks(landmarks);
  rig.SetCity(&city);

  ar::TrackerConfig cfg;
  cfg.mode = mode;
  cfg.gps_sigma_m = gps_noise;
  ar::EkfTracker tracker(cfg);
  ar::PoseEstimate init;
  tracker.Reset(init);

  ar::TrackingError err;
  sensors::RigCallbacks cbs;
  cbs.on_imu = [&](const sensors::ImuSample& s) { tracker.PredictImu(s); };
  cbs.on_gps = [&](const sensors::GpsFix& f) { tracker.UpdateGps(f); };
  cbs.on_features = [&](const std::vector<sensors::FeatureObservation>& obs) {
    for (const auto& ob : obs) {
      const auto& [e, n] = landmark_pos.at(ob.landmark_id);
      tracker.UpdateFeature(ob, e, n);
    }
  };
  cbs.on_truth = [&](const sensors::TruthState& truth) {
    if (truth.time.millis() % 500 == 0) err.Add(tracker.Estimate(), truth);
  };
  rig.RunUntil(TimePoint::FromSeconds(120.0), cbs);
  return {err.PositionRmseM(), err.MaxErrorM(), err.YawRmseDeg()};
}

void NoiseSweep() {
  bench::Table table({"gps_noise_m", "dead_reck_rmse", "gps_only_rmse", "fusion_rmse",
                      "fusion+cam_rmse"});
  for (double noise : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    const auto dead = RunTracker(ar::TrackerMode::kDeadReckoning, noise, false, 7);
    const auto gps = RunTracker(ar::TrackerMode::kGpsOnly, noise, false, 7);
    const auto fusion = RunTracker(ar::TrackerMode::kFusion, noise, false, 7);
    const auto cam = RunTracker(ar::TrackerMode::kFusion, noise, true, 7);
    table.Row({bench::Fmt("%.0f", noise), bench::Fmt("%.1f", dead.rmse),
               bench::Fmt("%.2f", gps.rmse), bench::Fmt("%.2f", fusion.rmse),
               bench::Fmt("%.2f", cam.rmse)});
  }
  table.Print("E13: position RMSE (m) by tracker mode vs GPS noise, 120 s walk");
  std::printf("Expected shape: dead reckoning drifts unboundedly; GPS-only tracks the "
              "raw noise; fusion filters below it; camera landmarks cut the error "
              "further — the registration quality AR needs (§1, Azuma).\n");
}

void BM_EkfPredict(benchmark::State& state) {
  ar::EkfTracker tracker;
  ar::PoseEstimate init;
  tracker.Reset(init);
  sensors::ImuSample imu;
  std::int64_t t = 0;
  for (auto _ : state) {
    imu.time = TimePoint::FromNanos(t += 10'000'000);
    tracker.PredictImu(imu);
    benchmark::DoNotOptimize(tracker.Estimate());
  }
}
BENCHMARK(BM_EkfPredict);

void BM_EkfGpsUpdate(benchmark::State& state) {
  ar::EkfTracker tracker;
  ar::PoseEstimate init;
  tracker.Reset(init);
  sensors::GpsFix fix;
  std::int64_t t = 0;
  for (auto _ : state) {
    fix.time = TimePoint::FromNanos(t += 1'000'000'000);
    tracker.UpdateGps(fix);
    benchmark::DoNotOptimize(tracker.Estimate());
  }
}
BENCHMARK(BM_EkfGpsUpdate);

}  // namespace

int main(int argc, char** argv) {
  NoiseSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
