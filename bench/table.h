// Tiny fixed-width table printer shared by the experiment harnesses, so
// every bench prints its paper-style rows the same way.
#pragma once

#include <cstdio>
#include <initializer_list>
#include <string>
#include <vector>

namespace arbd::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void Row(std::initializer_list<std::string> cells) {
    rows_.emplace_back(cells);
  }

  void Print(const char* title) const {
    std::printf("\n=== %s ===\n", title);
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& row : rows_) {
      for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        std::printf("%-*s  ", static_cast<int>(widths[i]), cells[i].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::string rule;
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      rule += std::string(widths[i], '-') + "  ";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

inline std::string FmtInt(std::size_t v) { return std::to_string(v); }

}  // namespace arbd::bench
