// E8 — §3.2 crowdsourced world modelling: completeness and accuracy of
// the merged environment model vs contributor count and coverage. The
// "redundant fragmented data → detailed and complete environmental model"
// claim, quantified.
#include <benchmark/benchmark.h>

#include "bench/table.h"
#include "geo/city.h"
#include "geo/crowdsource.h"

namespace {

using namespace arbd;
using namespace arbd::geo;

void ContributorSweep() {
  CityConfig city_cfg;
  city_cfg.blocks_x = 6;
  city_cfg.blocks_y = 6;
  const auto city = CityModel::Generate(city_cfg, 88);

  bench::Table table({"contributors", "observations", "completeness", "precision",
                      "pos_rmse_m", "category_acc"});
  for (std::size_t contributors : {2u, 5u, 10u, 25u, 50u, 100u, 250u}) {
    Rng rng(99);
    ContributionConfig cc;
    cc.contributors = contributors;
    cc.coverage = 0.08;
    const auto obs = GenerateContributions(city.pois(), cc, rng);
    CrowdMerger merger(MergeConfig{.cluster_radius_m = 12.0, .min_support = 2});
    const auto q = EvaluateModel(merger.Merge(obs), city.pois());
    table.Row({bench::FmtInt(contributors), bench::FmtInt(obs.size()),
               bench::Fmt("%.3f", q.completeness), bench::Fmt("%.3f", q.precision),
               bench::Fmt("%.1f", q.position_rmse_m),
               bench::Fmt("%.3f", q.category_accuracy)});
  }
  table.Print("E8a: merged model quality vs contributor count (coverage 8%)");
  std::printf("Expected shape: completeness saturates toward 1.0 as contributors grow; "
              "position error shrinks with aggregation (trust-weighted averaging).\n");
}

void NoiseSweep() {
  CityConfig city_cfg;
  city_cfg.blocks_x = 5;
  city_cfg.blocks_y = 5;
  const auto city = CityModel::Generate(city_cfg, 89);

  bench::Table table({"pos_noise_m", "completeness", "pos_rmse_m", "category_acc"});
  for (double noise : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    Rng rng(7);
    ContributionConfig cc;
    cc.contributors = 80;
    cc.coverage = 0.15;
    cc.pos_noise_stddev_m = noise;
    const auto obs = GenerateContributions(city.pois(), cc, rng);
    CrowdMerger merger(MergeConfig{.cluster_radius_m = 15.0, .min_support = 2});
    const auto q = EvaluateModel(merger.Merge(obs), city.pois(), 40.0);
    table.Row({bench::Fmt("%.0f", noise), bench::Fmt("%.3f", q.completeness),
               bench::Fmt("%.1f", q.position_rmse_m),
               bench::Fmt("%.3f", q.category_accuracy)});
  }
  table.Print("E8b: merged model quality vs observation noise (80 contributors)");
}

void BM_Merge(benchmark::State& state) {
  CityConfig city_cfg;
  city_cfg.blocks_x = 4;
  city_cfg.blocks_y = 4;
  const auto city = CityModel::Generate(city_cfg, 90);
  Rng rng(1);
  ContributionConfig cc;
  cc.contributors = static_cast<std::size_t>(state.range(0));
  cc.coverage = 0.1;
  const auto obs = GenerateContributions(city.pois(), cc, rng);
  CrowdMerger merger;
  for (auto _ : state) benchmark::DoNotOptimize(merger.Merge(obs));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(obs.size()));
}
BENCHMARK(BM_Merge)->Arg(10)->Arg(50)->Arg(200);

}  // namespace

int main(int argc, char** argv) {
  ContributorSweep();
  NoiseSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
