// E2 — §2.1's claim that naive "floating bubbles" are pointless and
// occlusion-aware decluttered layout is required. Sweeps annotation
// density and reports overlap ratio, readable-label count, and layout
// wall-time for both strategies.
#include <benchmark/benchmark.h>

#include <chrono>

#include "ar/layout.h"
#include "bench/table.h"
#include "common/rng.h"
#include "geo/city.h"

namespace {

using namespace arbd;

struct Scene {
  geo::CityModel city = geo::CityModel::Generate(geo::CityConfig{}, 2025);
  std::vector<ar::content::Annotation> annotations;
  ar::PoseEstimate pose;

  explicit Scene(std::size_t n) {
    Rng rng(7);
    pose.east = 0.0;
    pose.north = 0.0;
    pose.yaw_deg = 0.0;
    annotations.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      ar::content::Annotation a;
      // Scatter annotations in a 120° cone ahead of the viewer.
      const double bearing = rng.Uniform(-60.0, 60.0);
      const double dist = rng.Uniform(10.0, 180.0);
      const double east = dist * std::sin(bearing * M_PI / 180.0);
      const double north = dist * std::cos(bearing * M_PI / 180.0);
      a.anchor.geo_pos = city.frame().FromEnu(geo::Enu{east, north});
      a.anchor.height_m = rng.Uniform(1.0, 8.0);
      a.priority = rng.NextDouble();
      a.title = "poi" + std::to_string(i);
      annotations.push_back(std::move(a));
    }
  }
};

ar::LayoutResult RunLayout(const Scene& scene, ar::LayoutStrategy strategy) {
  ar::LayoutConfig cfg;
  cfg.strategy = strategy;
  ar::OcclusionClassifier clf(&scene.city);
  const ar::CameraView view(scene.pose, {});
  std::vector<const ar::content::Annotation*> ptrs;
  for (const auto& a : scene.annotations) ptrs.push_back(&a);
  const auto classified = clf.ClassifyAll(ptrs, view);
  return ar::LabelLayout(cfg).Arrange(classified, {});
}

void BM_NaiveBubbles(benchmark::State& state) {
  Scene scene(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunLayout(scene, ar::LayoutStrategy::kNaiveBubbles));
  }
}
BENCHMARK(BM_NaiveBubbles)->Arg(100)->Arg(1000)->Arg(10000);

void BM_Declutter(benchmark::State& state) {
  Scene scene(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunLayout(scene, ar::LayoutStrategy::kDeclutter));
  }
}
BENCHMARK(BM_Declutter)->Arg(100)->Arg(1000)->Arg(10000);

void PrintExperimentTable() {
  bench::Table table({"annotations", "naive_overlap", "naive_labels", "decl_overlap",
                      "decl_labels", "decl_xray", "decl_dropped"});
  for (std::size_t n : {50u, 100u, 500u, 1000u, 5000u, 10000u}) {
    Scene scene(n);
    const auto naive = RunLayout(scene, ar::LayoutStrategy::kNaiveBubbles);
    const auto decl = RunLayout(scene, ar::LayoutStrategy::kDeclutter);
    std::size_t xray = 0;
    for (const auto& box : decl.labels) xray += box.xray ? 1 : 0;
    table.Row({bench::FmtInt(n), bench::Fmt("%.3f", naive.overlap_ratio),
               bench::FmtInt(naive.placed), bench::Fmt("%.3f", decl.overlap_ratio),
               bench::FmtInt(decl.placed), bench::FmtInt(xray),
               bench::FmtInt(decl.dropped)});
  }
  table.Print("E2: floating bubbles vs occlusion-aware declutter (§2.1)");
  std::printf("Expected shape: naive overlap grows without bound with density; "
              "declutter holds overlap at 0 with a bounded label budget.\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintExperimentTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
