// E17 — §3.4 search-and-rescue with a bird's-eye AR overlay fused from
// in-building IoT sensors: rescue time vs team size and sensing quality,
// AR-guided vs blind sweep.
#include <benchmark/benchmark.h>

#include "bench/table.h"
#include "scenarios/emergency.h"

namespace {

using namespace arbd;
using namespace arbd::scenarios;

EmergencyMetrics Avg(const EmergencyConfig& cfg, int seeds) {
  EmergencyMetrics sum;
  double mean_sum = 0.0, last_sum = 0.0, frac_sum = 0.0;
  std::size_t cells = 0, found = 0;
  for (int s = 0; s < seeds; ++s) {
    const auto m = RunSearchAndRescue(cfg, static_cast<std::uint64_t>(s));
    mean_sum += m.mean_rescue_time_s;
    last_sum += m.last_rescue_time_s;
    frac_sum += m.find_all_fraction;
    cells += m.cells_searched;
    found += m.victims_found;
  }
  sum.mean_rescue_time_s = mean_sum / seeds;
  sum.last_rescue_time_s = last_sum / seeds;
  sum.find_all_fraction = frac_sum / seeds;
  sum.cells_searched = cells / static_cast<std::size_t>(seeds);
  sum.victims_found = found / static_cast<std::size_t>(seeds);
  return sum;
}

void TeamSweep() {
  bench::Table table({"searchers", "mode", "mean_rescue_s", "all_found_s",
                      "cells_searched", "found%"});
  for (std::size_t team : {1u, 2u, 4u, 8u}) {
    for (bool ar : {false, true}) {
      EmergencyConfig cfg;
      cfg.searchers = team;
      cfg.ar_birdseye = ar;
      cfg.time_limit = Duration::Seconds(7200);
      const auto m = Avg(cfg, 8);
      table.Row({bench::FmtInt(team), ar ? "AR bird's-eye" : "blind sweep",
                 bench::Fmt("%.0f", m.mean_rescue_time_s),
                 bench::Fmt("%.0f", m.last_rescue_time_s), bench::FmtInt(m.cells_searched),
                 bench::Fmt("%.0f%%", m.find_all_fraction * 100.0)});
    }
  }
  table.Print("E17a: search-and-rescue vs team size (12x12 grid, 5 victims)");
  std::printf("Expected shape: the AR heat-map overlay cuts rescue time severalfold at "
              "every team size by searching high-probability cells first.\n");
}

void SensorQualitySweep() {
  bench::Table table({"sensor_hit_rate", "mean_rescue_s_AR", "mean_rescue_s_blind",
                      "advantage"});
  for (double hit : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    EmergencyConfig ar;
    ar.ar_birdseye = true;
    ar.sensor_hit_rate = hit;
    ar.time_limit = Duration::Seconds(7200);
    EmergencyConfig blind = ar;
    blind.ar_birdseye = false;
    const auto ma = Avg(ar, 8);
    const auto mb = Avg(blind, 8);
    table.Row({bench::Fmt("%.1f", hit), bench::Fmt("%.0f", ma.mean_rescue_time_s),
               bench::Fmt("%.0f", mb.mean_rescue_time_s),
               bench::Fmt("%.1fx", mb.mean_rescue_time_s /
                                       std::max(1.0, ma.mean_rescue_time_s))});
  }
  table.Print("E17b: AR advantage vs IoT sensing quality (false rate 8%)");
  std::printf("Expected shape: the overlay's value tracks the data quality beneath it — "
              "with sensors barely above the false-positive floor, AR guidance adds "
              "little; with good sensors it dominates (§3.4's smart-infrastructure "
              "dependency).\n");
}

void BM_Rescue(benchmark::State& state) {
  EmergencyConfig cfg;
  cfg.ar_birdseye = state.range(0) == 1;
  for (auto _ : state) benchmark::DoNotOptimize(RunSearchAndRescue(cfg, 1));
}
BENCHMARK(BM_Rescue)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  TeamSweep();
  SensorQualitySweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
