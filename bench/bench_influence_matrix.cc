// E1 — reproduction of Figure 5, the paper's only quantitative-ish
// exhibit: a five-level "influence" rating of AR + big data per field.
// The paper assigns the levels qualitatively; we *measure* them. For each
// of the four §3 fields we run the scenario twice — baseline (no AR
// assist / no big-data personalization) and full ARBD — and bin the
// measured improvement factor into the paper's five levels.
#include <benchmark/benchmark.h>

#include <string>

#include "bench/table.h"
#include "scenarios/healthcare.h"
#include "scenarios/retail.h"
#include "scenarios/tourism.h"
#include "scenarios/transport.h"

namespace {

using namespace arbd;
using namespace arbd::scenarios;

const char* Bin(double improvement) {
  if (improvement >= 3.0) return "very high";
  if (improvement >= 2.0) return "high";
  if (improvement >= 1.3) return "medium";
  if (improvement >= 1.05) return "low";
  return "absent";
}

struct FieldScore {
  std::string field;
  std::string metric;
  double baseline;
  double arbd;
  double improvement;
};

FieldScore ScoreRetail() {
  // Metric: recommendation precision@10 with big data (item CF at 30k
  // events) vs without customer data (popularity).
  analytics::RetailWorkloadConfig wl;
  wl.users = 150;
  wl.items = 300;
  wl.clusters = 6;
  const auto sweep = RunRecommendationSweep(wl, {30'000}, 10, 3);
  const double base = std::max(1e-4, sweep[0].pop_precision);
  return {"retail", "reco precision@10", base, sweep[0].cf_precision,
          sweep[0].cf_precision / base};
}

FieldScore ScoreTourism() {
  // Metric: tourist spots engaged per tour, gamified AR guide vs plain walk.
  geo::CityConfig cc;
  cc.blocks_x = 5;
  cc.blocks_y = 5;
  const auto city = geo::CityModel::Generate(cc, 61);
  const auto plain = SimulateTour(city, TourismConfig{}, false, Duration::Seconds(600), 5);
  const auto gamified = SimulateTour(city, TourismConfig{}, true, Duration::Seconds(600), 5);
  const double base = std::max<double>(1.0, static_cast<double>(plain.spots_visited));
  const double full = static_cast<double>(gamified.spots_visited) +
                      static_cast<double>(gamified.portals_captured);
  return {"tourism", "spots engaged / tour", base, full, full / base};
}

FieldScore ScoreHealthcare() {
  // Metric: alert precision with EHR-personalized thresholds vs a global
  // threshold (same recall target).
  MonitorConfig base_cfg;
  base_cfg.patients = 80;
  base_cfg.run_length = Duration::Seconds(600);
  base_cfg.anomaly_rate_per_hour = 4.0;
  base_cfg.alert_hr_threshold = 100.0;
  const auto global = RunPatientMonitor(base_cfg, 7);
  MonitorConfig pers_cfg = base_cfg;
  pers_cfg.personalized = true;
  const auto pers = RunPatientMonitor(pers_cfg, 7);
  const double base = std::max(0.01, global.precision);
  return {"healthcare", "alert precision", base, pers.precision, pers.precision / base};
}

FieldScore ScoreTransport() {
  // Metric: collision-warning recall with VANET beacons (ARBD) vs what a
  // driver can see unaided — only unoccluded threats, approximated by the
  // non-occluded warning share.
  geo::CityConfig cc;
  cc.blocks_x = 6;
  cc.blocks_y = 6;
  const auto city = geo::CityModel::Generate(cc, 62);
  VanetConfig cfg;
  cfg.vehicles = 60;
  cfg.run_length = Duration::Seconds(90);
  const auto m = RunVanetSimulation(cfg, city, 9);
  const double occluded_share =
      m.warnings_issued ? static_cast<double>(m.occluded_warnings) /
                              static_cast<double>(m.warnings_issued)
                        : 0.0;
  const double unaided = std::max(0.01, m.recall * (1.0 - occluded_share));
  return {"public services", "collision-warning recall", unaided, m.recall,
          m.recall / unaided};
}

void PrintMatrix() {
  bench::Table table({"field", "metric", "baseline", "with ARBD", "improvement",
                      "measured level", "paper (Fig.5)"});
  const FieldScore scores[] = {ScoreRetail(), ScoreTourism(), ScoreHealthcare(),
                               ScoreTransport()};
  // The paper's Figure 5 qualitatively places all four §3 showcase fields
  // in its top influence bands.
  const char* paper_level[] = {"very high", "high", "very high", "high"};
  int i = 0;
  for (const auto& s : scores) {
    table.Row({s.field, s.metric, bench::Fmt("%.3f", s.baseline),
               bench::Fmt("%.3f", s.arbd), bench::Fmt("%.2fx", s.improvement),
               Bin(s.improvement), paper_level[i++]});
  }
  table.Print("E1: Figure 5 reproduction — measured influence levels per field");
  std::printf("The paper assigns these levels by argument; here each level is derived "
              "from a measured improvement factor (>=3x very high, >=2x high, >=1.3x "
              "medium, >=1.05x low, else absent).\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintMatrix();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
