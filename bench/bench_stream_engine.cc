// E12 — the "velocity" substrate itself: broker produce/fetch throughput
// vs partition count, consumer-group scaling, and dataflow window
// throughput.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/table.h"
#include "common/rng.h"
#include "stream/consumer.h"
#include "stream/dataflow.h"
#include "stream/recovery.h"

namespace {

using namespace arbd;
using Clock = std::chrono::steady_clock;

void ThroughputTable() {
  bench::Table table({"partitions", "consumers", "produce_Mev_s", "consume_Mev_s",
                      "end_to_end_Mev_s"});
  const std::size_t kEvents = 200'000;
  for (std::uint32_t partitions : {1u, 4u, 16u}) {
    for (std::size_t consumers : {1u, 2u, 4u}) {
      if (consumers > partitions) continue;
      SimClock clock;
      stream::Broker broker(clock);
      (void)broker.CreateTopic("t", {.partitions = partitions});

      // Produce.
      Rng rng(1);
      const auto p0 = Clock::now();
      for (std::size_t i = 0; i < kEvents; ++i) {
        stream::Event e;
        e.key = "k" + std::to_string(rng.NextBelow(1024));
        e.attribute = "v";
        e.value = 1.0;
        e.event_time = TimePoint::FromNanos(static_cast<std::int64_t>(i) * 1000);
        (void)broker.Produce("t", stream::Record::Make(e.key, e.Encode(), e.event_time));
      }
      const auto p1 = Clock::now();

      // Consume with a group of N members.
      stream::ConsumerGroup group(broker, "g", "t");
      std::vector<stream::Consumer*> members;
      for (std::size_t c = 0; c < consumers; ++c) {
        members.push_back(*group.Join("c" + std::to_string(c)));
      }
      std::size_t consumed = 0;
      const auto c0 = Clock::now();
      bool progress = true;
      while (progress) {
        progress = false;
        for (auto* m : members) {
          const auto batch = m->Poll(512);
          consumed += batch.size();
          progress |= !batch.empty();
        }
      }
      const auto c1 = Clock::now();

      const double produce_s = std::chrono::duration<double>(p1 - p0).count();
      const double consume_s = std::chrono::duration<double>(c1 - c0).count();
      table.Row({bench::FmtInt(partitions), bench::FmtInt(consumers),
                 bench::Fmt("%.2f", kEvents / produce_s / 1e6),
                 bench::Fmt("%.2f", static_cast<double>(consumed) / consume_s / 1e6),
                 bench::Fmt("%.2f", kEvents / (produce_s + consume_s) / 1e6)});
    }
  }
  table.Print("E12a: broker throughput vs partitions & consumer-group size");
}

void DataflowTable() {
  bench::Table table({"window", "agg", "events_Mev_s", "results", "late_dropped"});
  const std::size_t kEvents = 500'000;
  struct Case {
    const char* name;
    stream::WindowSpec spec;
  };
  const Case cases[] = {
      {"tumbling-1s", stream::WindowSpec::Tumbling(Duration::Seconds(1))},
      {"sliding-5s/1s", stream::WindowSpec::Sliding(Duration::Seconds(5), Duration::Seconds(1))},
      {"session-500ms", stream::WindowSpec::Session(Duration::Millis(500))},
  };
  for (const auto& c : cases) {
    stream::Pipeline pipeline(Duration::Millis(100));
    std::size_t results = 0;
    pipeline.WindowAggregate(c.spec, stream::AggKind::kMean)
        .Sink([&](const stream::WindowResult&) { ++results; });
    Rng rng(2);
    TimePoint t;
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < kEvents; ++i) {
      t += Duration::Micros(static_cast<std::int64_t>(rng.NextBelow(4000)));
      stream::Event e;
      e.key = "k" + std::to_string(rng.NextBelow(64));
      e.attribute = "m";
      e.value = rng.NextDouble();
      e.event_time = t;
      pipeline.Push(e);
    }
    pipeline.Flush();
    const auto t1 = Clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    table.Row({c.name, "mean", bench::Fmt("%.2f", kEvents / secs / 1e6),
               bench::FmtInt(results), bench::FmtInt(pipeline.late_dropped())});
  }
  table.Print("E12b: event-time dataflow throughput by window type");
}

void RecoveryTable() {
  // Failure injection: crash the job every `crash_every` records and
  // measure the replay overhead as a function of the checkpoint interval —
  // the knob trading steady-state checkpoint cost against recovery work.
  bench::Table table({"checkpoint_every", "crashes", "records", "replayed",
                      "replay_overhead%", "checkpoints"});
  const std::size_t kEvents = 50'000;
  const std::size_t kCrashEvery = 5'000;
  // Note: a checkpoint interval >= the crash interval would livelock (the
  // job can never commit before dying again) — a real finding this bench
  // documents by keeping every interval below it.
  for (std::size_t cp_every : {100u, 500u, 2'000u, 4'000u}) {
    SimClock clock;
    stream::Broker broker(clock);
    (void)broker.CreateTopic("t", {.partitions = 2});
    Rng rng(3);
    for (std::size_t i = 0; i < kEvents; ++i) {
      stream::Event e;
      e.key = "k" + std::to_string(rng.NextBelow(16));
      e.attribute = "m";
      e.value = 1.0;
      e.event_time = TimePoint::FromNanos(static_cast<std::int64_t>(i) * 1'000'000);
      (void)broker.Produce("t", stream::Record::Make(e.key, e.Encode(), e.event_time));
    }

    stream::CheckpointedJob job(
        broker, "t", "job",
        [] {
          auto p = std::make_unique<stream::Pipeline>(Duration::Millis(50));
          p->WindowAggregate(stream::WindowSpec::Tumbling(Duration::Seconds(1)), stream::AggKind::kSum)
              .Sink([](const stream::WindowResult&) {});
          return p;
        },
        cp_every);

    std::uint64_t next_crash = kCrashEvery;
    while (true) {
      auto n = job.Pump(512);
      if (!n.ok() || *n == 0) break;
      if (job.stats().crashes < 8 && job.stats().records_processed >= next_crash) {
        job.InjectCrash();
        next_crash += kCrashEvery;
      }
    }
    const auto& s = job.stats();
    table.Row({bench::FmtInt(cp_every), bench::FmtInt(s.crashes),
               bench::FmtInt(s.records_processed), bench::FmtInt(s.records_replayed),
               bench::Fmt("%.1f%%", 100.0 * static_cast<double>(s.records_replayed) /
                                        static_cast<double>(kEvents)),
               bench::FmtInt(s.checkpoints)});
  }
  table.Print("E12c: crash-recovery replay overhead vs checkpoint interval "
              "(50k records, crash every 5k)");
  std::printf("Expected shape: replay overhead grows with the checkpoint interval "
              "(work since the last checkpoint is redone), while checkpoint count — the "
              "steady-state cost — shrinks; pick the interval by this trade-off.\n");
}

void BM_ProduceRoundTrip(benchmark::State& state) {
  SimClock clock;
  stream::Broker broker(clock);
  (void)broker.CreateTopic("t", {.partitions = 4});
  stream::Event e;
  e.key = "key";
  e.attribute = "v";
  e.value = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        broker.Produce("t", stream::Record::Make(e.key, e.Encode(), e.event_time)));
  }
}
BENCHMARK(BM_ProduceRoundTrip);

void BM_EventCodec(benchmark::State& state) {
  stream::Event e;
  e.key = "vehicle-12345";
  e.attribute = "speed";
  e.value = 33.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stream::Event::Decode(e.Encode()));
  }
}
BENCHMARK(BM_EventCodec);

}  // namespace

int main(int argc, char** argv) {
  ThroughputTable();
  DataflowTable();
  RecoveryTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
