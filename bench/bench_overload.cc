// E19 — §4.1 timeliness: overload control under an offered-load sweep.
// Drives the priority-mixed overload soak (scenarios/overload.h) from
// 0.25× to 4× of service capacity, with and without the QoS stack, and
// prints the contrast the paper's timeliness argument predicts: without
// QoS the queue and the frame-path p99 diverge without bound; with QoS
// the admission cascade sheds background work first, the broker budgets
// cap every queue, the degradation ladder cheapens service under
// sustained SLO violation, and the frame path stays flat. A spike profile
// (0.5× → 3× → 0.5×) shows post-overload recovery, and a segment
// ablation shows the offload circuit breaker converting a cloud outage
// from a retry storm into cheap local short-circuits.
//
// The sweep doubles as a regression gate: the checks printed at the end
// (budget violations, lost records, priority inversions, frame-path p99
// ratio, goodput monotonicity, spike recovery) set a nonzero exit code on
// failure. `--quick` runs a shortened sweep with the same checks and no
// google-benchmark timings — the CI overload smoke.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/table.h"
#include "offload/scheduler.h"
#include "scenarios/overload.h"

namespace {

using namespace arbd;
using scenarios::OverloadConfig;
using scenarios::OverloadReport;

struct CheckList {
  int failures = 0;
  void Check(bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    if (!ok) ++failures;
  }
};

OverloadConfig BaseConfig(bool quick) {
  OverloadConfig cfg;
  cfg.seed = 7;
  if (quick) cfg.duration = Duration::Seconds(1);
  return cfg;
}

// The offered-load sweep, one table per mode. Returns the per-load
// reports so the checks can compare across rows and across modes.
std::vector<OverloadReport> RunSweep(bool qos, const std::vector<double>& loads,
                                     bool quick, const char* title) {
  std::vector<OverloadReport> reports;
  bench::Table table({"load", "offered", "admitted", "shed_f/i/b", "goodput/s",
                      "p99_frame_ms", "p99_admitted_ms", "max_depth",
                      "budget_viol", "lost", "max_level"});
  for (double load : loads) {
    OverloadConfig cfg = BaseConfig(quick);
    cfg.load = load;
    cfg.qos = qos;
    auto r = scenarios::RunOverloadSoak(cfg);
    if (!r.ok()) {
      std::printf("overload soak failed at load %g: %s\n", load,
                  r.status().ToString().c_str());
      std::exit(2);
    }
    const OverloadReport& rep = *r;
    table.Row({bench::Fmt("%.2fx", load), bench::FmtInt(rep.offered),
               bench::FmtInt(rep.admitted),
               bench::FmtInt(rep.classes[0].shed) + "/" +
                   bench::FmtInt(rep.classes[1].shed) + "/" +
                   bench::FmtInt(rep.classes[2].shed),
               bench::Fmt("%.0f", rep.goodput_per_s),
               bench::Fmt("%.2f", rep.classes[0].p99_ms),
               bench::Fmt("%.2f", rep.aggregate_p99_ms),
               bench::FmtInt(rep.max_queue_depth),
               bench::FmtInt(rep.budget_violations), bench::FmtInt(rep.lost),
               bench::FmtInt(static_cast<std::size_t>(rep.max_degradation_level))});
    reports.push_back(std::move(*r));
  }
  table.Print(title);
  return reports;
}

void RunSpike(bool quick, CheckList& checks) {
  const Duration phase_len = quick ? Duration::Seconds(1) : Duration::Seconds(2);
  const std::vector<scenarios::OverloadPhase> phases = {
      {0.5, phase_len}, {3.0, phase_len}, {0.5, phase_len}};
  bench::Table table({"mode", "phase", "load", "offered", "processed",
                      "goodput/s", "p99_ms"});
  double qos_pre_p99 = 0.0, qos_post_p99 = 0.0;
  double qos_pre_gp = 0.0, qos_post_gp = 0.0;
  for (bool qos : {false, true}) {
    OverloadConfig cfg = BaseConfig(quick);
    cfg.qos = qos;
    auto r = scenarios::RunOverloadSpike(cfg, phases);
    if (!r.ok()) {
      std::printf("spike run failed: %s\n", r.status().ToString().c_str());
      std::exit(2);
    }
    const char* names[] = {"pre", "spike", "recovery"};
    for (std::size_t i = 0; i < r->phases.size(); ++i) {
      const auto& ph = r->phases[i];
      table.Row({qos ? "qos" : "no-qos", names[i], bench::Fmt("%.1fx", ph.load),
                 bench::FmtInt(ph.offered), bench::FmtInt(ph.processed),
                 bench::Fmt("%.0f", ph.goodput_per_s),
                 bench::Fmt("%.2f", ph.p99_ms)});
    }
    if (qos) {
      qos_pre_p99 = r->phases.front().p99_ms;
      qos_post_p99 = r->phases.back().p99_ms;
      qos_pre_gp = r->phases.front().goodput_per_s;
      qos_post_gp = r->phases.back().goodput_per_s;
      checks.Check(r->overall.lost == 0, "spike: no admitted record lost");
      checks.Check(r->overall.budget_violations == 0,
                   "spike: no queue exceeded its budget");
    }
  }
  table.Print("E19b load spike 0.5x -> 3x -> 0.5x (frame-path p99 under QoS)");
  checks.Check(qos_post_p99 <= 2.0 * qos_pre_p99 + 0.26,
               bench::Fmt("spike recovery: post-spike frame p99 %.2fms", qos_post_p99) +
                   bench::Fmt(" within 2x of pre-spike %.2fms", qos_pre_p99));
  checks.Check(qos_post_gp >= 0.9 * qos_pre_gp,
               bench::Fmt("spike recovery: post-spike goodput %.0f/s", qos_post_gp) +
                   bench::Fmt(" recovers to pre-spike %.0f/s", qos_pre_gp));
}

// Circuit-breaker ablation: a cloud outage (injected task failures) hits
// a cloud-only scheduler with and without the breaker. Without it every
// task burns the full retry ladder before falling back local; with it the
// breaker opens after a few consecutive failures and the remaining tasks
// short-circuit straight to local execution.
void RunBreakerAblation(CheckList& checks) {
  bench::Table table({"segment", "breaker", "cloud_attempts", "retries",
                      "fallbacks", "short_circuits", "mean_ms"});
  offload::ComputeTask task;
  task.work_mcycles = 30.0;
  const std::size_t kTasks = 300;

  std::uint64_t storm_retries = 0, breaker_retries = 0, short_circuits = 0;
  for (bool use_breaker : {false, true}) {
    offload::NetworkConfig net_cfg;
    net_cfg.rtt = Duration::Millis(10);
    net_cfg.rtt_jitter = Duration::Millis(1);
    offload::NetworkModel net(net_cfg, 7);
    offload::OffloadScheduler sched(offload::OffloadPolicy::kCloudOnly,
                                    offload::DeviceModel{}, offload::CloudModel{}, net);
    qos::CircuitBreaker breaker;
    if (use_breaker) sched.set_circuit_breaker(&breaker);

    const char* segments[] = {"healthy", "outage", "recovered"};
    const char* specs[] = {"", "taskfail@p=0.98", ""};
    for (int seg = 0; seg < 3; ++seg) {
      auto plan = fault::FaultPlan::Parse(specs[seg]);
      fault::FaultInjector injector(*plan, 23);
      sched.set_fault_injector(&injector);
      const std::uint64_t retries0 = sched.retry_count();
      const std::uint64_t fallbacks0 = sched.fallback_count();
      const std::uint64_t cloud0 = sched.cloud_count();
      const std::uint64_t shorts0 = sched.short_circuit_count();
      double total_ms = 0.0;
      for (std::size_t i = 0; i < kTasks; ++i) {
        total_ms += sched.Run(task).latency.seconds() * 1e3;
      }
      table.Row({segments[seg], use_breaker ? "on" : "off",
                 bench::FmtInt(sched.cloud_count() - cloud0),
                 bench::FmtInt(sched.retry_count() - retries0),
                 bench::FmtInt(sched.fallback_count() - fallbacks0),
                 bench::FmtInt(sched.short_circuit_count() - shorts0),
                 bench::Fmt("%.2f", total_ms / static_cast<double>(kTasks))});
      if (seg == 1) {
        if (use_breaker) {
          breaker_retries = sched.retry_count() - retries0;
          short_circuits = sched.short_circuit_count() - shorts0;
        } else {
          storm_retries = sched.retry_count() - retries0;
        }
      }
    }
    if (use_breaker) {
      checks.Check(breaker.state() == qos::BreakerState::kClosed,
                   "breaker: closed again after the outage ends");
    }
  }
  table.Print("E19c cloud outage: retry storm vs circuit breaker");
  checks.Check(short_circuits > 0, "breaker: outage tasks short-circuit to local");
  checks.Check(breaker_retries * 4 <= storm_retries,
               bench::Fmt("breaker: outage retries %.0f", double(breaker_retries)) +
                   bench::Fmt(" at least 4x below the storm's %.0f", double(storm_retries)));
}

int RunExperiment(bool quick) {
  const std::vector<double> loads =
      quick ? std::vector<double>{0.25, 1.0, 4.0}
            : std::vector<double>{0.25, 0.5, 1.0, 2.0, 4.0};

  auto qos = RunSweep(true, loads, quick, "E19a offered-load sweep, QoS on");
  auto raw = RunSweep(false, loads, quick, "E19a offered-load sweep, QoS off");

  std::printf("\n--- E19 checks ---\n");
  CheckList checks;

  // With QoS: frame-path p99 bounded relative to the light-load baseline.
  // The +0.26ms term is one level-0 service quantum — the measurement
  // floor at this capacity, irreducible by any control policy.
  const double base_p99 = qos.front().classes[0].p99_ms;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    checks.Check(qos[i].classes[0].p99_ms <= 2.0 * base_p99 + 0.26,
                 bench::Fmt("qos: frame p99 at %.2fx load", loads[i]) +
                     bench::Fmt(" = %.2fms, within 2x of", qos[i].classes[0].p99_ms) +
                     bench::Fmt(" %.2fms baseline", base_p99));
  }
  // Admitted-traffic p99 stays under the structural bound the budgets
  // imply (every admitted record drains from bounded queues), instead of
  // tracking offered load.
  const OverloadConfig bound_cfg;  // defaults the sweep ran with
  const double bound_ms = 3.0 * static_cast<double>(bound_cfg.class_budget_records) /
                          bound_cfg.capacity_per_s * 1e3;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    checks.Check(qos[i].aggregate_p99_ms <= bound_ms,
                 bench::Fmt("qos: admitted p99 at %.2fx load", loads[i]) +
                     bench::Fmt(" = %.2fms, under the", qos[i].aggregate_p99_ms) +
                     bench::Fmt(" %.0fms budget bound", bound_ms));
  }
  // Goodput monotone in offered load (2% tolerance for arrival noise).
  bool monotone = true;
  for (std::size_t i = 1; i < qos.size(); ++i) {
    if (qos[i].goodput_per_s < 0.98 * qos[i - 1].goodput_per_s) monotone = false;
  }
  checks.Check(monotone, "qos: goodput monotone in offered load");
  for (std::size_t i = 0; i < loads.size(); ++i) {
    checks.Check(qos[i].budget_violations == 0 && qos[i].lost == 0 &&
                     !qos[i].wedged,
                 bench::Fmt("qos: budgets respected, nothing lost at %.2fx", loads[i]));
    checks.Check(qos[i].priority_inversions == 0 && qos[i].classes[0].shed == 0,
                 bench::Fmt("qos: no priority inversion, frame never shed at %.2fx",
                            loads[i]));
  }
  // Without QoS: divergence. The queue tracks offered load and the
  // frame-path p99 explodes.
  const OverloadReport& raw_peak = raw.back();
  const OverloadReport& qos_peak = qos.back();
  checks.Check(raw_peak.classes[0].p99_ms >= 10.0 * raw.front().classes[0].p99_ms,
               bench::Fmt("no-qos: frame p99 diverges at 4x (%.0fms)",
                          raw_peak.classes[0].p99_ms));
  checks.Check(raw_peak.max_queue_depth >= 10 * qos_peak.max_queue_depth,
               bench::Fmt("no-qos: peak queue depth %.0f", double(raw_peak.max_queue_depth)) +
                   bench::Fmt(" dwarfs the QoS bound %.0f", double(qos_peak.max_queue_depth)));

  RunSpike(quick, checks);
  RunBreakerAblation(checks);

  std::printf("\nE19 verdict: %s (%d failing check%s)\n",
              checks.failures == 0 ? "PASS" : "FAIL", checks.failures,
              checks.failures == 1 ? "" : "s");
  return checks.failures == 0 ? 0 : 1;
}

void BM_OverloadSoak(benchmark::State& state) {
  OverloadConfig cfg;
  cfg.load = static_cast<double>(state.range(0));
  cfg.duration = Duration::Seconds(1);
  for (auto _ : state) {
    auto report = scenarios::RunOverloadSoak(cfg);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cfg.load * cfg.capacity_per_s));
}
BENCHMARK(BM_OverloadSoak)->Arg(1)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const int failures = RunExperiment(quick);
  if (quick) return failures;  // CI smoke: tables + checks only
  if (failures != 0) return failures;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
