// E22 — replicated partitions, deterministic failover, exactly-once.
//
//   E22a: crash-schedule sweep — the failover soak (IdempotentProducer ->
//         factor-3 replicated topic -> exactly-once CheckpointedJob) under
//         >= 40 seeded crash schedules (injected nodecrash faults plus an
//         explicit mid-run leader-kill schedule). Gates, per seed: zero
//         committed loss, zero log duplicates, zero duplicate window
//         deliveries, full availability (the retry budget outlasts every
//         restore window). Across seeds: the committed digest is one
//         value, and it equals the fault-free factor-1 baseline — crashes
//         may cost retries, never content.
//
//   E22b: worker/factor invariance — ParallelProduce of a fixed keyed
//         workload into replicated topics at workers {1,4} x factors
//         {1,3}: all four committed digests must be identical (the
//         replica group lives below the partition-FIFO determinism line).
//
//   E22c: availability curve — the same crash plan with a starved retry
//         budget (2 attempts) at factors {1,2,3,4}, aggregated over
//         several fault seeds: availability (acked/offered) must be
//         monotone non-decreasing in the replication factor, and factors
//         >= 2 must actually fail over (failovers > 0).
//
//   Plus direct epoch-fencing and divergence-truncation probes on a
//   ReplicatedPartition.
//
// `--quick` runs reduced sizes with the same checks and no
// google-benchmark timings — the CI replication smoke. Exit code =
// failures.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/table.h"
#include "common/rng.h"
#include "exec/executor.h"
#include "scenarios/failover.h"
#include "stream/log.h"
#include "stream/parallel.h"
#include "stream/replication.h"

namespace {

using namespace arbd;

struct CheckList {
  int failures = 0;
  void Check(bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    if (!ok) ++failures;
  }
};

scenarios::FailoverConfig BaseConfig(bool quick) {
  scenarios::FailoverConfig cfg;
  cfg.records = quick ? 600 : 1500;
  cfg.partitions = 2;
  cfg.replication_factor = 3;
  cfg.checkpoint_every = 16;
  cfg.batch = 32;
  cfg.fault_spec = "nodecrash@p=0.01,x=12";
  cfg.kill_p = 0.05;
  cfg.kill_restore_ops = 8;
  cfg.producer_attempts = 40;
  cfg.seed = 77;  // one workload, many crash schedules
  return cfg;
}

int RunExperiment(bool quick) {
  CheckList checks;

  // --- E22a: crash-schedule sweep -------------------------------------
  const std::size_t n_schedules = quick ? 12 : 40;
  scenarios::FailoverConfig base = BaseConfig(quick);

  scenarios::FailoverConfig baseline_cfg = base;
  baseline_cfg.replication_factor = 1;
  baseline_cfg.fault_spec.clear();
  baseline_cfg.kill_p = 0.0;
  auto baseline = scenarios::RunFailoverSoak(baseline_cfg);
  if (!baseline.ok()) {
    std::printf("baseline soak failed: %s\n", baseline.status().ToString().c_str());
    return 1;
  }

  std::uint64_t loss = 0, log_dups = 0, out_dups = 0, denied = 0;
  std::uint64_t failovers = 0, crashes = 0, truncated = 0, dedup_hits = 0;
  bool digests_equal = true, none_wedged = true;
  for (std::size_t i = 0; i < n_schedules; ++i) {
    scenarios::FailoverConfig cfg = base;
    cfg.fault_seed = 1000 + i;
    auto rep = scenarios::RunFailoverSoak(cfg);
    if (!rep.ok()) {
      std::printf("soak (fault_seed=%llu) failed: %s\n",
                  static_cast<unsigned long long>(cfg.fault_seed),
                  rep.status().ToString().c_str());
      return 1;
    }
    loss += rep->committed_loss;
    log_dups += rep->log_duplicates;
    out_dups += rep->output_duplicates;
    denied += rep->denied;
    failovers += rep->replication.failovers;
    crashes += rep->replication.node_crashes;
    truncated += rep->replication.truncated_entries;
    dedup_hits += rep->replication.dedup_hits;
    digests_equal = digests_equal && rep->committed_digest == baseline->committed_digest;
    none_wedged = none_wedged && !rep->wedged;
  }
  bench::Table atable({"schedules", "crashes", "failovers", "truncated",
                       "dedup_hits", "loss", "log_dups", "out_dups", "denied"});
  atable.Row({bench::FmtInt(n_schedules), bench::FmtInt(crashes),
              bench::FmtInt(failovers), bench::FmtInt(truncated),
              bench::FmtInt(dedup_hits), bench::FmtInt(loss),
              bench::FmtInt(log_dups), bench::FmtInt(out_dups),
              bench::FmtInt(denied)});
  const std::string atitle = "E22a crash-schedule sweep (factor 3, " +
                             std::to_string(n_schedules) + " seeds)";
  atable.Print(atitle.c_str());
  checks.Check(crashes > 0 && failovers > 0,
               "sweep: crash schedules actually killed leaders and failed over");
  checks.Check(loss == 0, "sweep: zero committed loss across all schedules");
  checks.Check(log_dups == 0, "sweep: zero duplicate log entries (idempotent retries)");
  checks.Check(out_dups == 0, "sweep: zero duplicate window deliveries (exactly-once)");
  checks.Check(denied == 0, "sweep: retry budget outlasts every restore window");
  checks.Check(dedup_hits > 0, "sweep: broker-side dedup actually absorbed retries");
  checks.Check(none_wedged, "sweep: no run tripped the wedge guard");
  checks.Check(digests_equal,
               "sweep: committed digest identical across schedules and equal to "
               "the fault-free factor-1 baseline");

  // --- E22b: worker/factor invariance ---------------------------------
  const std::size_t n_records = quick ? 2'000 : 8'000;
  std::vector<std::uint64_t> wf_digests;
  bench::Table btable({"workers", "factor", "records", "digest"});
  for (const std::uint32_t factor : {1u, 3u}) {
    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
      SimClock clock;
      stream::Broker broker(clock);
      stream::TopicConfig tc;
      tc.partitions = 8;
      tc.replication_factor = factor;
      (void)broker.CreateTopic("e22.load", tc);
      exec::ExecConfig ec;
      ec.workers = workers;
      exec::Executor ex(ec);
      Rng rng(4242);
      std::vector<stream::Record> records;
      records.reserve(n_records);
      for (std::size_t i = 0; i < n_records; ++i) {
        records.push_back(stream::Record::Make(
            "k" + std::to_string(rng.NextU64() % 64), Bytes(24, 0x5a),
            TimePoint::FromMillis(static_cast<std::int64_t>(i))));
      }
      (void)stream::ParallelProduce(ex, broker, "e22.load", std::move(records),
                                    Duration::Micros(2));
      auto topic = broker.GetTopic("e22.load");
      wf_digests.push_back(stream::CommittedTopicDigest(**topic));
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%016llx",
                    static_cast<unsigned long long>(wf_digests.back()));
      btable.Row({bench::FmtInt(workers), bench::FmtInt(factor),
                  bench::FmtInt(n_records), buf});
    }
  }
  btable.Print("E22b committed digest across workers x replication factor");
  bool wf_equal = true;
  for (const std::uint64_t d : wf_digests) wf_equal = wf_equal && d == wf_digests[0];
  checks.Check(wf_equal,
               "parallel produce: committed digest identical at workers {1,4} "
               "x factors {1,3}");

  // --- E22c: availability curve ---------------------------------------
  const std::vector<std::uint32_t> factors = {1, 2, 3, 4};
  const std::size_t avail_seeds = quick ? 4 : 10;
  std::vector<double> avail;
  std::vector<std::uint64_t> avail_failovers;
  bench::Table ctable({"factor", "offered", "acked", "denied", "availability",
                       "failovers"});
  for (const std::uint32_t factor : factors) {
    std::uint64_t offered = 0, acked = 0, f_denied = 0, f_failovers = 0;
    for (std::size_t i = 0; i < avail_seeds; ++i) {
      scenarios::FailoverConfig cfg = BaseConfig(quick);
      cfg.records = quick ? 400 : 1000;
      cfg.replication_factor = factor;
      cfg.fault_spec = "nodecrash@p=0.02,x=20";
      cfg.kill_p = 0.0;
      cfg.producer_attempts = 2;  // starved: denials measure availability
      cfg.fault_seed = 500 + i;
      auto rep = scenarios::RunFailoverSoak(cfg);
      if (!rep.ok()) {
        std::printf("availability soak failed: %s\n", rep.status().ToString().c_str());
        return 1;
      }
      offered += rep->offered;
      acked += rep->acked;
      f_denied += rep->denied;
      f_failovers += rep->replication.failovers;
    }
    avail.push_back(static_cast<double>(acked) / static_cast<double>(offered));
    avail_failovers.push_back(f_failovers);
    ctable.Row({bench::FmtInt(factor), bench::FmtInt(offered), bench::FmtInt(acked),
                bench::FmtInt(f_denied), bench::Fmt("%.4f", avail.back()),
                bench::FmtInt(f_failovers)});
  }
  ctable.Print("E22c availability vs replication factor (2-attempt budget)");
  bool monotone = true;
  for (std::size_t i = 1; i < avail.size(); ++i) {
    monotone = monotone && avail[i] + 1e-12 >= avail[i - 1];
  }
  checks.Check(monotone, "availability monotone non-decreasing in replication factor");
  checks.Check(avail.back() > avail.front(),
               "replication buys real availability (factor 4 > factor 1)");
  checks.Check(avail_failovers[1] > 0 && avail_failovers[2] > 0,
               "factors >= 2 survive crashes by failing over");

  // --- fencing + truncation probes ------------------------------------
  {
    stream::Partition committed;
    stream::ReplicatedPartition rp(3, 0xfe2ce, committed);
    const stream::Epoch old_epoch = rp.epoch();
    (void)rp.Produce(stream::Record::MakeText("a", "1", TimePoint::FromMillis(1)),
                     TimePoint{}, 1, 1);
    (void)rp.CrashLeader(0);  // manual restore; epoch advances
    auto fenced = rp.LeaderAppend(old_epoch,
                                  stream::Record::MakeText("b", "2", TimePoint::FromMillis(2)),
                                  TimePoint{}, 1, 2);
    checks.Check(!fenced.ok() &&
                     fenced.status().code() == StatusCode::kFailedPrecondition &&
                     rp.stats().fenced_appends == 1,
                 "fencing: stale-epoch append rejected with FAILED_PRECONDITION");
    checks.Check(rp.high_watermark() == 1 && committed.size() == 1,
                 "fencing: rejected append left the committed log untouched");
    checks.Check(truncated > 0,
                 "truncation: crash schedules produced divergent suffixes that "
                 "were truncated on restore");
  }

  std::printf("\nE22 verdict: %s (%d failing check%s)\n",
              checks.failures == 0 ? "PASS" : "FAIL", checks.failures,
              checks.failures == 1 ? "" : "s");
  return checks.failures;
}

void BM_FailoverSoak(benchmark::State& state) {
  const auto factor = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    scenarios::FailoverConfig cfg = BaseConfig(/*quick=*/true);
    cfg.replication_factor = factor;
    cfg.fault_seed = seed++;
    auto rep = scenarios::RunFailoverSoak(cfg);
    benchmark::DoNotOptimize(rep);
  }
  state.SetItemsProcessed(state.iterations() * 600);
}
BENCHMARK(BM_FailoverSoak)->Arg(1)->Arg(3);

void BM_ReplicatedProduce(benchmark::State& state) {
  const auto factor = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    SimClock clock;
    stream::Broker broker(clock);
    stream::TopicConfig tc;
    tc.partitions = 4;
    tc.replication_factor = factor;
    (void)broker.CreateTopic("bm", tc);
    for (std::size_t i = 0; i < 4'000; ++i) {
      (void)broker.Produce("bm", stream::Record::MakeText(
                                     "k" + std::to_string(i % 32), "v",
                                     TimePoint::FromMillis(static_cast<std::int64_t>(i))));
    }
    benchmark::DoNotOptimize(broker.total_produced());
  }
  state.SetItemsProcessed(state.iterations() * 4'000);
}
BENCHMARK(BM_ReplicatedProduce)->Arg(1)->Arg(3);

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const int failures = RunExperiment(quick);
  if (quick) return failures;  // CI smoke: tables + checks only
  if (failures != 0) return failures;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
