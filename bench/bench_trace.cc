// E21 — end-to-end causal tracing: per-stage frame-budget breakdown and
// the tracing overhead/determinism gates. Four parts:
//
//   E21a: traced platform workload — seeded sensor events published under
//         per-event traces through admission → broker → windowed dataflow,
//         plus traced frame composition. The drained span set feeds
//         LatencyBreakdown; the table shows, per stage, the modeled self-
//         time distribution (p50/p95/p99) and its share of the summed
//         end-to-end budget. Gate: attributed self time sums to the summed
//         end-to-end latency within 1% (coverage ∈ [0.99, 1.01]).
//
//   E21b: determinism — the span-tree digest of the same workload is
//         bit-identical at workers=1 and workers=4 (no ring overflow in
//         either run, or the comparison is void).
//
//   E21c: off-path overhead — when tracing is disabled every
//         instrumentation site costs one relaxed atomic load. Measured
//         per-check wall cost × hooks-per-event must stay under 1% of the
//         modeled per-event makespan.
//
//   E21d: inertness — Tourism/Overload scenario digests are unchanged
//         with the global tracer enabled vs disabled (trace headers never
//         touch encoded payloads or simulation randomness).
//
// Also writes a Chrome trace-event JSON sample (load it in
// chrome://tracing or Perfetto) next to the binary. `--quick` runs reduced
// sizes with the same gates and no google-benchmark timings — the CI trace
// smoke. Exit code = failures.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/table.h"
#include "common/rng.h"
#include "core/platform.h"
#include "scenarios/digest.h"
#include "trace/breakdown.h"
#include "trace/export.h"
#include "trace/tracer.h"

namespace {

using namespace arbd;

struct CheckList {
  int failures = 0;
  void Check(bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    if (!ok) ++failures;
  }
};

// Instrumentation sites an event's causal chain crosses in the workload
// below: publish, broker produce, ingest decode, and the stage hooks of
// the two dataflow jobs (filter everywhere, window where it matches).
constexpr double kHooksPerEvent = 8.0;

struct TraceRun {
  std::uint64_t digest = 0;
  std::uint64_t dropped = 0;
  trace::BreakdownReport report;
  std::vector<trace::Span> spans;
};

// `jobs` selects one aggregation job (a strictly serial causal chain per
// event — spans tile the trace interval, the shape the coverage gate is
// about) or two (the record fans out to sibling pipelines whose spans
// overlap on the causal axis — stronger determinism workload, but overlap
// double-counts in Σ self by design).
TraceRun RunTracedWorkload(std::uint64_t seed, std::size_t workers,
                           std::size_t events, std::size_t frames,
                           std::size_t jobs) {
  trace::TracerConfig tcfg;
  tcfg.enabled = true;
  tcfg.ring_capacity = 1u << 18;  // hold the whole span set: digests need dropped == 0
  tcfg.seed = 0x7ace5eedULL ^ seed;
  trace::Tracer tracer(tcfg);

  SimClock clock;
  const geo::CityModel city = geo::CityModel::Generate(geo::CityConfig{}, 51);
  core::PlatformConfig cfg;
  cfg.exec.workers = workers;
  cfg.tracer = &tracer;
  core::Platform platform(cfg, city, clock);
  platform.AddUser("u0");

  core::AggregationSpec speed;
  speed.attribute = "speed";
  speed.window = stream::WindowSpec::Tumbling(Duration::Seconds(1));
  speed.agg = stream::AggKind::kMean;
  platform.AddAggregation(speed);
  if (jobs > 1) {
    core::AggregationSpec visits;
    visits.attribute = "visits";
    visits.window = stream::WindowSpec::Tumbling(Duration::Millis(500));
    visits.agg = stream::AggKind::kCount;
    platform.AddAggregation(visits);
  }

  core::InterpretationRule rule;
  rule.attribute = "speed";
  platform.AddRule(rule);

  Rng rng(seed);
  for (std::size_t i = 0; i < events; ++i) {
    stream::Event e;
    e.key = "k" + std::to_string(i % 16);
    e.attribute = (i % 3 == 0) ? "visits" : "speed";
    e.value = rng.Uniform(0.0, 30.0);
    e.event_time = TimePoint::FromMillis(static_cast<std::int64_t>(i) * 5);
    trace::SpanContext ctx =
        tracer.RootContext(tracer.StartTrace(i), e.event_time);
    (void)platform.PublishTraced(e, qos::PriorityClass::kBackground, ctx);
    if (i % 256 == 255) {
      clock.Advance(Duration::Millis(100));
      platform.ProcessPending();
    }
  }
  platform.ProcessPending();

  for (std::size_t f = 0; f < frames; ++f) {
    trace::SpanContext ctx =
        tracer.RootContext(tracer.StartTrace(1'000'000 + f), clock.Now());
    (void)platform.ComposeFrameTraced("u0", ctx);
    clock.Advance(Duration::Millis(33));
  }

  TraceRun run;
  run.dropped = tracer.dropped();
  run.spans = tracer.Drain();
  run.digest = trace::SpanTreeDigest(run.spans);
  trace::LatencyBreakdown bd;
  bd.AddAll(run.spans);
  run.report = bd.Compute();
  return run;
}

// Wall cost of the disabled off-path: one relaxed atomic load per site.
double MeasureDisabledCheckNs() {
  trace::Tracer t;  // disabled
  constexpr std::size_t kIters = 10'000'000;
  std::size_t hits = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kIters; ++i) {
    if (t.enabled()) ++hits;
  }
  const auto t1 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(hits);
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(kIters);
}

int RunExperiment(bool quick) {
  const std::size_t events = quick ? 2'048 : 20'480;
  const std::size_t frames = quick ? 64 : 256;
  CheckList checks;

  // --- E21a: per-stage frame-budget breakdown -------------------------
  const TraceRun run = RunTracedWorkload(7, 1, events, frames, /*jobs=*/1);
  const auto& rep = run.report;
  bench::Table table({"stage", "spans", "self_p50_us", "self_p95_us",
                      "self_p99_us", "total_ms", "share"});
  for (const auto& s : rep.stages) {
    table.Row({s.name, bench::FmtInt(s.spans),
               bench::Fmt("%.2f", static_cast<double>(s.self_times.p50()) / 1e3),
               bench::Fmt("%.2f", static_cast<double>(s.self_times.p95()) / 1e3),
               bench::Fmt("%.2f", static_cast<double>(s.self_times.p99()) / 1e3),
               bench::Fmt("%.3f", s.total_self.seconds() * 1e3),
               bench::Fmt("%.1f%%", s.critical_share * 100.0)});
  }
  table.Print("E21a per-stage latency breakdown (modeled self time)");
  std::printf("  traces=%llu  end-to-end p99=%.2fus  attributed=%.3fms of %.3fms\n",
              static_cast<unsigned long long>(rep.traces),
              static_cast<double>(rep.end_to_end.p99()) / 1e3,
              rep.total_attributed.seconds() * 1e3,
              rep.total_end_to_end.seconds() * 1e3);

  checks.Check(run.dropped == 0, "breakdown: no ring overflow (attribution complete)");
  checks.Check(rep.traces > 0 && !rep.stages.empty(),
               "breakdown: spans recorded across stages");
  checks.Check(rep.coverage >= 0.99 && rep.coverage <= 1.01,
               "breakdown: stage self times sum to end-to-end within 1% (coverage " +
                   bench::Fmt("%.4f", rep.coverage) + ")");

  // --- E21b: worker-count determinism (fan-out workload) ---------------
  const TraceRun run1 = RunTracedWorkload(7, 1, events, frames, /*jobs=*/2);
  const TraceRun run4 = RunTracedWorkload(7, 4, events, frames, /*jobs=*/2);
  checks.Check(run1.dropped == 0 && run4.dropped == 0,
               "determinism: neither run overflowed its rings");
  checks.Check(run1.digest == run4.digest,
               "determinism: span-tree digest identical at workers 1 and 4");

  // --- E21c: disabled off-path overhead -------------------------------
  const double check_ns = MeasureDisabledCheckNs();
  const double mean_event_ns =
      rep.traces > 0 ? static_cast<double>(rep.total_end_to_end.nanos()) /
                           static_cast<double>(rep.traces)
                     : 1.0;
  const double overhead = kHooksPerEvent * check_ns / mean_event_ns;
  std::printf("\n  off-path check: %.3f ns; %.0f hooks/event over %.0f ns modeled "
              "event makespan -> %.4f%% overhead\n",
              check_ns, kHooksPerEvent, mean_event_ns, overhead * 100.0);
  checks.Check(overhead < 0.01,
               "overhead: disabled tracing costs " +
                   bench::Fmt("%.4f", overhead * 100.0) +
                   "% of modeled makespan (< 1%)");

  // --- E21d: scenario digests inert under tracing ---------------------
  exec::ExecConfig ec;
  ec.workers = 2;
  trace::Tracer& g = trace::Tracer::Global();
  const bool was_enabled = g.enabled();
  g.set_enabled(false);
  const std::uint64_t tourism_off = scenarios::TourismDigest(7, ec);
  const std::uint64_t overload_off = scenarios::OverloadDigest(7, ec);
  g.set_enabled(true);
  const std::uint64_t tourism_on = scenarios::TourismDigest(7, ec);
  const std::uint64_t overload_on = scenarios::OverloadDigest(7, ec);
  g.set_enabled(was_enabled);
  checks.Check(tourism_on == tourism_off,
               "inertness: tourism digest unchanged with tracing enabled");
  checks.Check(overload_on == overload_off,
               "inertness: overload digest unchanged with tracing enabled");

  // --- Chrome trace sample --------------------------------------------
  const std::string sample_path = "bench_trace_sample.json";
  std::vector<trace::Span> sample(
      run.spans.begin(),
      run.spans.begin() + std::min<std::size_t>(run.spans.size(), 2'000));
  const Status wrote = trace::WriteChromeTrace(sample, sample_path);
  checks.Check(wrote.ok(), "exporter: wrote " + sample_path + " (" +
                               std::to_string(sample.size()) + " spans)");

  std::printf("\nE21 verdict: %s (%d failing check%s)\n",
              checks.failures == 0 ? "PASS" : "FAIL", checks.failures,
              checks.failures == 1 ? "" : "s");
  return checks.failures;
}

void BM_DisabledHookCheck(benchmark::State& state) {
  trace::Tracer t;  // disabled: the off-path every call site pays
  for (auto _ : state) benchmark::DoNotOptimize(t.enabled());
}
BENCHMARK(BM_DisabledHookCheck);

void BM_RecordSpan(benchmark::State& state) {
  trace::TracerConfig cfg;
  cfg.enabled = true;
  cfg.ring_capacity = 4096;
  trace::Tracer t(cfg);
  trace::SpanContext ctx = t.RootContext(t.StartTrace(1), TimePoint{});
  std::uint64_t salt = 0;
  for (auto _ : state) {
    ctx = t.Record("bench.stage", ctx, Duration::Micros(2), {}, ++salt);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecordSpan);

void BM_DrainAndDigest(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    trace::TracerConfig cfg;
    cfg.enabled = true;
    cfg.ring_capacity = 1u << 14;
    trace::Tracer t(cfg);
    trace::SpanContext ctx = t.RootContext(t.StartTrace(1), TimePoint{});
    for (int i = 0; i < 4'096; ++i) {
      ctx = t.Record("s", ctx, Duration::Nanos(100), {},
                     static_cast<std::uint64_t>(i));
    }
    state.ResumeTiming();
    const auto spans = t.Drain();
    benchmark::DoNotOptimize(trace::SpanTreeDigest(spans));
  }
}
BENCHMARK(BM_DrainAndDigest);

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const int failures = RunExperiment(quick);
  if (quick) return failures;  // CI smoke: tables + checks only
  if (failures != 0) return failures;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
