// E11 — §4.3 privacy: (a) Laplace-mechanism utility vs ε, (b) location
// privacy (geo-indistinguishability and k-anonymity cloaking) against the
// González-style mobility re-identification attack, with the utility cost
// of each defence. The measured knee is the paper's "reduced too far to be
// useful" tension.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench/table.h"
#include "geo/geohash.h"
#include "privacy/attack.h"
#include "privacy/cloak.h"
#include "privacy/mechanisms.h"

namespace {

using namespace arbd;
using namespace arbd::privacy;

constexpr geo::LatLon kCenter{22.5, 114.5};
const geo::BBox kBounds{22.0, 114.0, 23.0, 115.0};

void LaplaceUtilityTable() {
  bench::Table table({"epsilon", "mean_abs_err", "rel_err_on_count_1000", "usable"});
  LaplaceMechanism mech(1);
  for (double eps : {0.01, 0.05, 0.1, 0.5, 1.0, 5.0}) {
    double err = 0.0;
    const int n = 20'000;
    for (int i = 0; i < n; ++i) err += std::abs(mech.Noisy(1000.0, 1.0, eps) - 1000.0);
    err /= n;
    table.Row({bench::Fmt("%.2f", eps), bench::Fmt("%.2f", err),
               bench::Fmt("%.2f%%", err / 10.0),
               err / 1000.0 < 0.05 ? "yes" : "degraded"});
  }
  table.Print("E11a: Laplace mechanism — error vs epsilon (count query, n=1000)");
}

struct TraceSet {
  std::vector<geo::LatLon> homes, works;
  MobilityAttacker attacker{6};

  Trace Commute(int user, int days, Rng& rng) const {
    Trace t;
    for (int d = 0; d < days; ++d) {
      for (int i = 0; i < 5; ++i) {
        t.push_back({geo::Offset(homes[static_cast<std::size_t>(user)],
                                 rng.Uniform(0.0, 120.0), rng.Uniform(0.0, 360.0))});
      }
      for (int i = 0; i < 5; ++i) {
        t.push_back({geo::Offset(works[static_cast<std::size_t>(user)],
                                 rng.Uniform(0.0, 120.0), rng.Uniform(0.0, 360.0))});
      }
    }
    return t;
  }
};

TraceSet MakeTraceSet(int users, std::uint64_t seed) {
  TraceSet ts;
  Rng rng(seed);
  for (int u = 0; u < users; ++u) {
    ts.homes.push_back(
        geo::Offset(kCenter, rng.Uniform(1000.0, 20'000.0), rng.Uniform(0.0, 360.0)));
    ts.works.push_back(
        geo::Offset(kCenter, rng.Uniform(1000.0, 20'000.0), rng.Uniform(0.0, 360.0)));
    ts.attacker.Train("user-" + std::to_string(u), ts.Commute(u, 10, rng));
  }
  return ts;
}

void GeoIndTable() {
  const int kUsers = 50;
  auto ts = MakeTraceSet(kUsers, 5);
  bench::Table table({"epsilon_per_m", "expected_noise_m", "reid_rate",
                      "poi_query_err_m"});
  for (double eps : {0.1, 0.01, 0.003, 0.001, 0.0003, 0.0001}) {
    GeoIndistinguishability gi(17);
    Rng rng(9);
    std::vector<std::pair<std::string, Trace>> traces;
    double poi_err = 0.0;
    std::size_t samples = 0;
    for (int u = 0; u < kUsers; ++u) {
      Trace t = ts.Commute(u, 3, rng);
      Trace noisy;
      for (const auto& p : t) {
        const auto q = gi.Perturb(p.pos, eps);
        poi_err += geo::DistanceM(p.pos, q);
        ++samples;
        noisy.push_back({q});
      }
      traces.emplace_back("user-" + std::to_string(u), std::move(noisy));
    }
    table.Row({bench::Fmt("%.4f", eps),
               bench::Fmt("%.0f", GeoIndistinguishability::ExpectedDisplacementM(eps)),
               bench::Fmt("%.3f", ts.attacker.ReidentificationRate(traces)),
               bench::Fmt("%.0f", poi_err / static_cast<double>(samples))});
  }
  table.Print("E11b: geo-indistinguishability — re-identification vs epsilon (50 users)");
  std::printf("Expected shape: re-id rate falls as noise grows, but POI-query error "
              "(the AR utility cost) grows with it — the privacy/utility knee.\n");
}

void CloakTable() {
  const int kUsers = 200;
  Rng rng(13);
  KAnonymityCloak cloak(kBounds);
  std::vector<std::pair<std::string, geo::LatLon>> population;
  for (int u = 0; u < kUsers; ++u) {
    population.emplace_back("user-" + std::to_string(u),
                            geo::Offset(kCenter, rng.Uniform(0.0, 15'000.0),
                                        rng.Uniform(0.0, 360.0)));
  }
  cloak.UpdatePopulation(population);

  bench::Table table({"k", "mean_region_diag_m", "mean_center_offset_m", "success%"});
  for (std::size_t k : {2u, 5u, 10u, 25u, 50u, 100u}) {
    double diag = 0.0, offset = 0.0;
    std::size_t ok = 0;
    for (int u = 0; u < kUsers; ++u) {
      const auto r = cloak.Cloak("user-" + std::to_string(u), k);
      if (!r.ok()) continue;
      ++ok;
      diag += r->DiagonalM();
      offset += geo::DistanceM(population[static_cast<std::size_t>(u)].second, r->Center());
    }
    table.Row({bench::FmtInt(k), bench::Fmt("%.0f", ok ? diag / static_cast<double>(ok) : 0.0),
               bench::Fmt("%.0f", ok ? offset / static_cast<double>(ok) : 0.0),
               bench::Fmt("%.0f%%", 100.0 * static_cast<double>(ok) / kUsers)});
  }
  table.Print("E11c: k-anonymity cloaking — region size (utility cost) vs k (200 users)");
  std::printf("Expected shape: region size grows with k; the answer the LBS sees gets "
              "coarser — privacy bought with spatial utility.\n");
}

void BM_Perturb(benchmark::State& state) {
  GeoIndistinguishability gi(1);
  for (auto _ : state) benchmark::DoNotOptimize(gi.Perturb(kCenter, 0.01));
}
BENCHMARK(BM_Perturb);

}  // namespace

int main(int argc, char** argv) {
  LaplaceUtilityTable();
  GeoIndTable();
  CloakTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
