// E3 — §2.1/§3.1 "X-ray vision": time to locate a product behind shelves
// with and without see-through AR, over store sizes and target depths.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/table.h"
#include "common/metrics.h"
#include "scenarios/retail.h"

namespace {

using namespace arbd;
using namespace arbd::scenarios;

struct Condition {
  const char* name;
  bool xray;
  bool guided;
};

void SearchTable() {
  const Condition conditions[] = {
      {"sweep (no AR)", false, false},
      {"guided (AR nav, no x-ray)", false, true},
      {"guided + x-ray", true, true},
  };

  bench::Table table({"store(aisles x shelves)", "condition", "mean_s", "p95_s",
                      "mean_walk_m", "found%"});
  for (const auto& [aisles, shelves] : {std::pair{4, 6}, {8, 10}, {12, 16}}) {
    StoreModel::Config cfg;
    cfg.aisles = static_cast<std::size_t>(aisles);
    cfg.shelves_per_aisle = static_cast<std::size_t>(shelves);
    const auto store = StoreModel::Generate(cfg, 77);

    for (const auto& cond : conditions) {
      std::vector<double> times;
      double walk = 0.0;
      std::size_t found = 0;
      const std::size_t trials = 40;
      Rng rng(aisles * 1000 + shelves);
      for (std::size_t i = 0; i < trials; ++i) {
        const auto& target =
            store.products()[rng.NextBelow(store.products().size())];
        SearchConfig sc;
        sc.xray_enabled = cond.xray;
        sc.guided = cond.guided;
        const auto r = SimulateProductSearch(store, target.sku, sc, i);
        if (r.found) {
          ++found;
          times.push_back(r.time_to_find.seconds());
          walk += r.distance_walked_m;
        }
      }
      std::sort(times.begin(), times.end());
      const auto stats = SampleStats::Of(times);
      const double p95 =
          times.empty() ? 0.0 : times[static_cast<std::size_t>(times.size() * 0.95) >= times.size()
                                          ? times.size() - 1
                                          : static_cast<std::size_t>(times.size() * 0.95)];
      table.Row({std::to_string(aisles) + "x" + std::to_string(shelves), cond.name,
                 bench::Fmt("%.1f", stats.mean), bench::Fmt("%.1f", p95),
                 bench::Fmt("%.0f", found ? walk / found : 0.0),
                 bench::Fmt("%.0f%%", 100.0 * found / trials)});
    }
  }
  table.Print("E3: time-to-locate a product, X-ray vision vs baselines (§2.1/§3.1)");
  std::printf("Expected shape: unguided sweep time grows with store size; AR guidance "
              "flattens it; x-ray removes the last-metres occlusion penalty.\n");
}

void BM_OcclusionTest(benchmark::State& state) {
  StoreModel::Config cfg;
  cfg.aisles = 8;
  cfg.shelves_per_aisle = 10;
  const auto store = StoreModel::Generate(cfg, 78);
  const auto& target = store.products().back();
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.IsOccluded(-2.0, -2.0, 1.6, target));
  }
}
BENCHMARK(BM_OcclusionTest);

}  // namespace

int main(int argc, char** argv) {
  SearchTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
