// E27 — gray-failure tolerance: hedged reads under brownout, health-driven
// leadership demotion, and exactly-once delivery through brownout+kill
// overlap.
//
//   E27a: hedged frame hit-rate — the brownout soak with a tight AR frame
//         budget against a 16x browned-out broker, hedging off vs on.
//         Gate: the hedged run's frame hit-rate is strictly higher (the
//         secondary ISR replica answers at the hedge delay while the
//         primary crawls), and the committed digest is unchanged (hedged
//         reads never perturb the log).
//
//   E27b: health demotion p99 — a long brownout with an unlimited budget,
//         health tracking off vs on. Gate: the health run demotes (and,
//         once the window expires, recovers) the victim, and its
//         post-demotion read p99 beats the health-off run's overall read
//         p99 — draining leaderships off the browned-out broker is what
//         buys the tail back.
//
//   E27c: brownout+kill sweep — >= 40 seeded schedules overlapping a slow
//         brownout, a lossy link, and a fail-stop kill, with hedging and
//         health seed-varied on/off. Gates, per schedule: zero committed
//         loss, zero log duplicates, zero duplicate deliveries, zero
//         delivery gaps, controller replay == live state, no wedge.
//
//   E27d: digest invariance — (i) the brownout soak (unlimited budget) at
//         broker counts {2,4,8} with hedging+health on commits the same
//         digest as the 4-broker run with both off; (ii) a fixed keyed
//         workload produced at brokers {2,4} x workers {1,4}, then read
//         back through a hedged reader racing a browned-out leader: four
//         identical read digests (the winning replica serves the same
//         quorum-acked prefix the leader would).
//
// `--quick` runs reduced schedule counts with the same checks and no
// google-benchmark timings — the CI brownout smoke. Exit code = failures.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/table.h"
#include "cluster/cluster.h"
#include "cluster/hedge.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "exec/executor.h"
#include "scenarios/brownout.h"
#include "stream/log.h"
#include "stream/parallel.h"

namespace {

using namespace arbd;

struct CheckList {
  int failures = 0;
  void Check(bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    if (!ok) ++failures;
  }
};

scenarios::BrownoutSoakConfig BaseConfig() {
  scenarios::BrownoutSoakConfig cfg;
  cfg.brokers = 4;
  cfg.partitions = 8;
  cfg.replication_factor = 3;
  cfg.consumers = 2;
  cfg.fleet.users = 2000;
  cfg.fleet.hotspots = 32;
  cfg.fleet.ticks = 16;
  cfg.fleet.peak_events_per_tick = 60;
  cfg.fleet.seed = 11;
  cfg.seed = 1;
  return cfg;
}

std::uint64_t FoldRows(std::uint64_t h, stream::PartitionId p,
                       const std::vector<stream::StoredRecord>& rows) {
  for (const auto& r : rows) {
    const std::string line = std::to_string(p) + "|" + std::to_string(r.offset) +
                             "|" + r.record.key + "|" + r.record.TextPayload();
    h = (h ^ Fnv1a(line)) * 1099511628211ULL;
  }
  return h;
}

int RunExperiment(bool quick) {
  CheckList checks;

  // --- E27a: hedged frame hit-rate --------------------------------------
  // Read-dominant frames (tiny produce chunk, 8 per-partition reads)
  // against a deep brownout covering the whole run; the budget sits
  // between the hedged and unhedged read bills for victim-led partitions.
  scenarios::BrownoutSoakConfig acfg = BaseConfig();
  acfg.produce_chunk = 2;
  acfg.slow_at_tick = 1;
  acfg.slow_broker = 0;
  acfg.slow_factor = 16.0;
  acfg.slow_ticks = 400;  // never expires within the run
  acfg.frame_budget = Duration::Millis(8);

  auto a_off = scenarios::RunBrownoutSoak(acfg);
  auto a_cfg_on = acfg;
  a_cfg_on.hedge.enabled = true;
  // A quarter of all reads hit the browned-out leader, so the default p95
  // hedge delay would chase the brownout itself; hedge at p70 instead
  // (still above every healthy op, far below the 16x victim).
  a_cfg_on.hedge.quantile = 0.7;
  auto a_on = scenarios::RunBrownoutSoak(a_cfg_on);
  if (!a_off.ok() || !a_on.ok()) {
    std::printf("E27a soak failed: %s\n",
                (!a_off.ok() ? a_off.status() : a_on.status()).ToString().c_str());
    return 1;
  }
  bench::Table atable({"hedging", "frames", "hits", "hit_rate", "hedged",
                       "secondary_wins", "read_p99_us"});
  for (const auto* rep : {&*a_off, &*a_on}) {
    atable.Row({rep == &*a_on ? "on" : "off", bench::FmtInt(rep->frames),
                bench::FmtInt(rep->frame_hits),
                bench::Fmt("%.4f", rep->frame_hit_rate),
                bench::FmtInt(rep->hedge.hedged),
                bench::FmtInt(rep->hedge.secondary_wins),
                bench::Fmt("%.1f", static_cast<double>(rep->read_p99_ns) / 1e3)});
  }
  atable.Print("E27a frame hit-rate under a 16x brownout (8ms frame budget)");
  checks.Check(a_on->hedge.hedged > 0 && a_on->hedge.secondary_wins > 0,
               "hedging actually fired and secondaries actually won");
  checks.Check(a_on->frame_hit_rate > a_off->frame_hit_rate,
               "hedged frame hit-rate strictly beats unhedged under brownout");
  checks.Check(a_off->AuditClean() && a_on->AuditClean(),
               "E27a: both runs exactly-once clean");

  // --- E27b: health demotion p99 ----------------------------------------
  // Long 8x brownout, unlimited budget. Health off: the victim keeps its
  // leaderships and the overall read p99 is the browned-out latency.
  // Health on: demotion drains the victim within a few ticks, so reads
  // issued after the first demotion pay base latency again.
  scenarios::BrownoutSoakConfig bcfg = BaseConfig();
  bcfg.frame_budget = Duration::Zero();
  bcfg.slow_at_tick = 1;
  bcfg.slow_broker = 0;
  bcfg.slow_factor = 8.0;
  bcfg.slow_ticks = 8;  // expires mid-run so recovery can land
  bcfg.health.recover_ticks = 2;

  auto b_off = scenarios::RunBrownoutSoak(bcfg);
  auto b_cfg_on = bcfg;
  b_cfg_on.health.enabled = true;
  auto b_on = scenarios::RunBrownoutSoak(b_cfg_on);
  if (!b_off.ok() || !b_on.ok()) {
    std::printf("E27b soak failed: %s\n",
                (!b_off.ok() ? b_off.status() : b_on.status()).ToString().c_str());
    return 1;
  }
  bench::Table btable({"health", "read_p99_us", "post_demo_reads",
                       "post_demo_p99_us", "demotions", "recoveries"});
  for (const auto* rep : {&*b_off, &*b_on}) {
    btable.Row({rep == &*b_on ? "on" : "off",
                bench::Fmt("%.1f", static_cast<double>(rep->read_p99_ns) / 1e3),
                bench::FmtInt(rep->post_demotion_reads),
                bench::Fmt("%.1f", static_cast<double>(rep->post_demotion_p99_ns) / 1e3),
                bench::FmtInt(rep->cluster.demotions),
                bench::FmtInt(rep->cluster.recoveries)});
  }
  btable.Print("E27b read p99 with health-driven demotion (8x brownout)");
  checks.Check(b_on->cluster.demotions > 0, "health run demoted the victim");
  checks.Check(b_on->cluster.recoveries > 0,
               "the victim recovered once the brownout expired");
  checks.Check(b_on->post_demotion_reads > 0 &&
                   b_on->post_demotion_p99_ns < b_off->read_p99_ns,
               "post-demotion read p99 beats the health-off overall p99");
  checks.Check(b_off->AuditClean() && b_on->AuditClean() &&
                   b_on->committed_digest == b_off->committed_digest,
               "E27b: both runs clean, demotion moved leaders not records");

  // --- E27c: brownout+kill sweep ----------------------------------------
  const std::size_t n_schedules = quick ? 12 : 40;
  std::uint64_t loss = 0, log_dups = 0, out_dups = 0, gaps = 0;
  std::uint64_t kills = 0, slow_arms = 0, lossy_arms = 0, drops = 0;
  std::uint64_t demotions = 0, recoveries = 0, hedged = 0;
  bool none_wedged = true, controllers_consistent = true;
  for (std::size_t i = 0; i < n_schedules; ++i) {
    Rng rng(0xe27cULL + i);
    scenarios::BrownoutSoakConfig cfg = BaseConfig();
    cfg.seed = 100 + i;
    cfg.brokers = static_cast<std::uint32_t>(2 + rng.NextBelow(7));
    cfg.frame_budget = Duration::Zero();  // lossless regime: audits exact
    cfg.slow_at_tick = 1 + rng.NextBelow(4);
    cfg.slow_broker = static_cast<cluster::BrokerId>(rng.NextBelow(cfg.brokers));
    cfg.slow_factor = 2.0 + static_cast<double>(rng.NextBelow(15));
    cfg.slow_ticks = 4 + rng.NextBelow(20);
    cfg.lossy_at_tick = 1 + rng.NextBelow(6);
    cfg.lossy_broker = static_cast<cluster::BrokerId>(rng.NextBelow(cfg.brokers));
    cfg.lossy_drop_p = 0.1 + 0.05 * static_cast<double>(rng.NextBelow(8));
    cfg.lossy_ticks = 2 + rng.NextBelow(8);
    cfg.kill_at_tick = 2 + rng.NextBelow(6);  // every schedule overlaps a kill
    cfg.kill_broker = static_cast<cluster::BrokerId>(rng.NextBelow(cfg.brokers));
    cfg.restore_ticks = 3 + rng.NextBelow(6);
    cfg.hedge.enabled = rng.Bernoulli(0.5);
    cfg.health.enabled = rng.Bernoulli(0.5);
    auto rep = scenarios::RunBrownoutSoak(cfg);
    if (!rep.ok()) {
      std::printf("brownout soak (seed=%llu) failed: %s\n",
                  static_cast<unsigned long long>(cfg.seed),
                  rep.status().ToString().c_str());
      return 1;
    }
    loss += rep->committed_loss;
    log_dups += rep->log_duplicates;
    out_dups += rep->delivered_duplicates;
    gaps += rep->delivery_gaps;
    kills += rep->cluster.kills;
    slow_arms += rep->cluster.slow_brownouts;
    lossy_arms += rep->cluster.lossy_brownouts;
    drops += rep->cluster.lossy_drops;
    demotions += rep->cluster.demotions;
    recoveries += rep->cluster.recoveries;
    hedged += rep->hedge.hedged;
    none_wedged = none_wedged && !rep->wedged;
    controllers_consistent = controllers_consistent && rep->controller_consistent;
  }
  bench::Table ctable({"schedules", "kills", "slow_arms", "lossy_arms", "drops",
                       "demotions", "recoveries", "hedged", "loss", "log_dups",
                       "deliv_dups", "gaps"});
  ctable.Row({bench::FmtInt(n_schedules), bench::FmtInt(kills),
              bench::FmtInt(slow_arms), bench::FmtInt(lossy_arms),
              bench::FmtInt(drops), bench::FmtInt(demotions),
              bench::FmtInt(recoveries), bench::FmtInt(hedged),
              bench::FmtInt(loss), bench::FmtInt(log_dups),
              bench::FmtInt(out_dups), bench::FmtInt(gaps)});
  const std::string ctitle = "E27c brownout+kill sweep (" +
                             std::to_string(n_schedules) + " seeded schedules)";
  ctable.Print(ctitle.c_str());
  checks.Check(kills > 0 && slow_arms > 0 && lossy_arms > 0 && drops > 0,
               "sweep: gray faults and kills actually overlapped");
  checks.Check(loss == 0, "sweep: zero committed loss across all schedules");
  checks.Check(log_dups == 0, "sweep: zero duplicate log entries");
  checks.Check(out_dups == 0, "sweep: zero duplicate deliveries");
  checks.Check(gaps == 0, "sweep: zero delivery gaps");
  checks.Check(none_wedged, "sweep: no run tripped the wedge guard");
  checks.Check(controllers_consistent,
               "sweep: metadata replay consistent through every degrade/restore");

  // --- E27d: digest invariance ------------------------------------------
  // (i) Soak digest across broker counts with the full gray stack on,
  // against the both-off baseline.
  scenarios::BrownoutSoakConfig dcfg = BaseConfig();
  dcfg.frame_budget = Duration::Zero();
  dcfg.slow_at_tick = 2;
  dcfg.slow_ticks = 10;
  dcfg.lossy_at_tick = 3;
  dcfg.lossy_ticks = 6;
  auto baseline = scenarios::RunBrownoutSoak(dcfg);
  if (!baseline.ok()) {
    std::printf("E27d baseline failed: %s\n", baseline.status().ToString().c_str());
    return 1;
  }
  bench::Table dtable({"brokers", "hedge+health", "acked", "digest"});
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(baseline->committed_digest));
  dtable.Row({bench::FmtInt(dcfg.brokers), "off", bench::FmtInt(baseline->acked), buf});
  bool digests_equal = true;
  for (const std::uint32_t brokers : {2u, 4u, 8u}) {
    auto cfg = dcfg;
    cfg.brokers = brokers;
    cfg.hedge.enabled = true;
    cfg.health.enabled = true;
    auto rep = scenarios::RunBrownoutSoak(cfg);
    if (!rep.ok()) {
      std::printf("E27d soak (brokers=%u) failed: %s\n", brokers,
                  rep.status().ToString().c_str());
      return 1;
    }
    digests_equal = digests_equal &&
                    rep->committed_digest == baseline->committed_digest &&
                    rep->AuditClean();
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(rep->committed_digest));
    dtable.Row({bench::FmtInt(brokers), "on", bench::FmtInt(rep->acked), buf});
  }
  dtable.Print("E27d-i committed digest: gray stack on/off across broker counts");
  checks.Check(digests_equal,
               "soak digest invariant under hedging+health at brokers {2,4,8}");

  // (ii) Hedged read digest at brokers {2,4} x workers {1,4}.
  const std::size_t n_records = quick ? 2'000 : 8'000;
  std::vector<std::uint64_t> read_digests;
  bench::Table ptable({"brokers", "workers", "rows", "hedged", "digest"});
  for (const std::uint32_t brokers : {2u, 4u}) {
    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
      SimClock clock;
      stream::Broker broker(clock);
      cluster::ClusterConfig cc;
      cc.brokers = brokers;
      cluster::BrokerCluster cl(broker, cc);
      stream::TopicConfig tc;
      tc.partitions = 8;
      tc.replication_factor = 2;
      if (auto s = cl.CreateTopic("e27.load", tc); !s.ok()) {
        std::printf("CreateTopic failed: %s\n", s.ToString().c_str());
        return 1;
      }
      exec::ExecConfig ec;
      ec.workers = workers;
      exec::Executor ex(ec);
      Rng rng(2727);
      std::vector<stream::Record> records;
      records.reserve(n_records);
      for (std::size_t i = 0; i < n_records; ++i) {
        records.push_back(stream::Record::MakeText(
            "k" + std::to_string(rng.NextU64() % 64), "v" + std::to_string(i),
            TimePoint::FromMillis(static_cast<std::int64_t>(i))));
      }
      (void)stream::ParallelProduce(ex, broker, "e27.load", std::move(records),
                                    Duration::Micros(2));
      // Brown out the leader of partition 0 and read everything back
      // through a hedged reader: the race winner must serve the same rows.
      auto victim = cl.LeaderBroker("e27.load", 0);
      if (!victim.ok() || !cl.SlowBroker(*victim, 16.0, 1000).ok()) {
        std::printf("E27d-ii brownout arm failed\n");
        return 1;
      }
      cluster::HedgeConfig hc;
      hc.enabled = true;
      cluster::HedgedReader reader(cl, broker, "e27.load", hc);
      std::uint64_t digest = 1469598103934665603ULL;
      std::uint64_t rows = 0;
      for (stream::PartitionId p = 0; p < 8; ++p) {
        auto fetched = reader.Fetch(p, 0, n_records);
        if (!fetched.ok()) {
          std::printf("E27d-ii fetch failed: %s\n",
                      fetched.status().ToString().c_str());
          return 1;
        }
        rows += fetched->size();
        digest = FoldRows(digest, p, *fetched);
      }
      read_digests.push_back(digest);
      std::snprintf(buf, sizeof(buf), "%016llx",
                    static_cast<unsigned long long>(digest));
      ptable.Row({bench::FmtInt(brokers), bench::FmtInt(workers),
                  bench::FmtInt(rows), bench::FmtInt(reader.stats().hedged), buf});
      if (reader.stats().hedged == 0) {
        checks.Check(false, "E27d-ii: hedging never fired against the brownout");
      }
    }
  }
  ptable.Print("E27d-ii hedged read digest across brokers x workers");
  bool read_equal = true;
  for (const std::uint64_t d : read_digests) read_equal = read_equal && d == read_digests[0];
  checks.Check(read_equal,
               "hedged read digest identical at brokers {2,4} x workers {1,4}");

  std::printf("\nE27 verdict: %s (%d failing check%s)\n",
              checks.failures == 0 ? "PASS" : "FAIL", checks.failures,
              checks.failures == 1 ? "" : "s");
  return checks.failures;
}

void BM_BrownoutSoak(benchmark::State& state) {
  const bool hedge = state.range(0) != 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    scenarios::BrownoutSoakConfig cfg = BaseConfig();
    cfg.seed = seed++;
    cfg.hedge.enabled = hedge;
    cfg.health.enabled = hedge;
    auto rep = scenarios::RunBrownoutSoak(cfg);
    benchmark::DoNotOptimize(rep);
  }
}
BENCHMARK(BM_BrownoutSoak)->Arg(0)->Arg(1);

void BM_HedgedFetch(benchmark::State& state) {
  SimClock clock;
  stream::Broker broker(clock);
  cluster::ClusterConfig cc;
  cc.brokers = 4;
  cluster::BrokerCluster cl(broker, cc);
  stream::TopicConfig tc;
  tc.partitions = 4;
  tc.replication_factor = 3;
  (void)cl.CreateTopic("bm", tc);
  cluster::ClusterProducer producer(cl, broker, "bm");
  for (int i = 0; i < 4096; ++i) {
    (void)producer.Send(stream::Record::MakeText(
        "k" + std::to_string(i % 64), "v",
        TimePoint::FromMillis(static_cast<std::int64_t>(i))));
  }
  auto victim = cl.LeaderBroker("bm", 0);
  if (victim.ok()) (void)cl.SlowBroker(*victim, 16.0, 1'000'000);
  cluster::HedgeConfig hc;
  hc.enabled = state.range(0) != 0;
  cluster::HedgedReader reader(cl, broker, "bm", hc);
  stream::Offset lo = 0;
  for (auto _ : state) {
    auto rows = reader.Fetch(0, lo % 1024, 64);
    benchmark::DoNotOptimize(rows);
    ++lo;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HedgedFetch)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const int failures = RunExperiment(quick);
  if (quick) return failures;  // CI smoke: tables + checks only
  if (failures != 0) return failures;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
