// E7 — §3.2 geospatial context retrieval at scale: quadtree-indexed POI
// queries vs the linear-scan baseline, over store sizes 10^3..10^6.
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>

#include "bench/table.h"
#include "common/rng.h"
#include "geo/poi.h"

namespace {

using namespace arbd;
using Clock = std::chrono::steady_clock;

const geo::BBox kBounds{22.0, 114.0, 23.0, 115.0};
constexpr geo::LatLon kCenter{22.5, 114.5};

std::unique_ptr<geo::PoiStore> MakeStore(std::size_t n, std::uint64_t seed) {
  auto store = std::make_unique<geo::PoiStore>(kBounds);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    geo::Poi p;
    p.name = "p" + std::to_string(i);
    p.pos = {rng.Uniform(kBounds.min_lat, kBounds.max_lat),
             rng.Uniform(kBounds.min_lon, kBounds.max_lon)};
    p.category = static_cast<geo::PoiCategory>(rng.NextBelow(11));
    (void)store->Add(std::move(p));
  }
  return store;
}

template <typename F>
double MicrosPerQuery(F&& query, int iters) {
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) benchmark::DoNotOptimize(query(i));
  const auto t1 = Clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count() / iters;
}

void PrintExperimentTable() {
  bench::Table table({"pois", "knn10_idx_us", "knn10_lin_us", "knn_speedup",
                      "radius_idx_us", "radius_lin_us", "radius_speedup"});
  Rng rng(3);
  for (std::size_t n : {1'000u, 10'000u, 100'000u, 1'000'000u}) {
    const auto store = MakeStore(n, 5);
    std::vector<geo::LatLon> probes;
    for (int i = 0; i < 64; ++i) {
      probes.push_back({rng.Uniform(22.2, 22.8), rng.Uniform(114.2, 114.8)});
    }
    const int iters = n >= 100'000 ? 32 : 128;
    const double knn_idx = MicrosPerQuery(
        [&](int i) { return store->Nearest(probes[static_cast<std::size_t>(i) % probes.size()], 10); }, iters);
    const double knn_lin = MicrosPerQuery(
        [&](int i) { return store->NearestLinear(probes[static_cast<std::size_t>(i) % probes.size()], 10); },
        n >= 100'000 ? 4 : 32);
    const double rad_idx = MicrosPerQuery(
        [&](int i) { return store->WithinRadius(probes[static_cast<std::size_t>(i) % probes.size()], 500.0); },
        iters);
    const double rad_lin = MicrosPerQuery(
        [&](int i) {
          return store->WithinRadiusLinear(probes[static_cast<std::size_t>(i) % probes.size()], 500.0);
        },
        n >= 100'000 ? 4 : 32);
    table.Row({bench::FmtInt(n), bench::Fmt("%.1f", knn_idx), bench::Fmt("%.1f", knn_lin),
               bench::Fmt("%.0fx", knn_lin / knn_idx), bench::Fmt("%.1f", rad_idx),
               bench::Fmt("%.1f", rad_lin), bench::Fmt("%.0fx", rad_lin / rad_idx)});
  }
  table.Print("E7: POI query latency, quadtree vs linear scan (§3.2)");
  std::printf("Expected shape: indexed latency stays near-flat in store size; the linear "
              "baseline grows linearly, so the speedup factor scales with the city.\n");
}

void BM_Knn(benchmark::State& state) {
  const auto store = MakeStore(static_cast<std::size_t>(state.range(0)), 5);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store->Nearest({rng.Uniform(22.2, 22.8), rng.Uniform(114.2, 114.8)}, 10));
  }
}
BENCHMARK(BM_Knn)->Arg(1'000)->Arg(100'000)->Arg(1'000'000);

void BM_Radius(benchmark::State& state) {
  const auto store = MakeStore(static_cast<std::size_t>(state.range(0)), 5);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->WithinRadius(
        {rng.Uniform(22.2, 22.8), rng.Uniform(114.2, 114.8)}, 500.0));
  }
}
BENCHMARK(BM_Radius)->Arg(1'000)->Arg(100'000)->Arg(1'000'000);

}  // namespace

int main(int argc, char** argv) {
  PrintExperimentTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
