// E26 — partition autoscaling under hotspot load: split/merge handoff
// correctness, hot-partition relief, and routing determinism.
//
//   E26a: hotspot relief — a fleet flash crowd (surge over the top POIs)
//         drives one partition past the split threshold mid-soak (no
//         kills). Gates: the autoscaler actually split; zero committed
//         loss / log duplicates / duplicate deliveries / delivery gaps;
//         controller replay == live digest; and the p99 of the hottest
//         live partition's per-turn ingest drops to <= 0.7x its pre-split
//         value once the crowd is spread over the children.
//
//   E26b: split/merge under kills — >= 40 seeded schedules (12 quick)
//         layering rolling kills, forced autosplit/automerge chaos rules,
//         and threshold-driven actions over surging workloads. Gates,
//         aggregated: zero loss, zero log dups, zero duplicate
//         deliveries, zero gaps, every controller consistent, no wedges,
//         real splits and real producer handoffs observed.
//
//   E26c: routing determinism — (i) the same kill-free autoscaled soak at
//         broker counts {2,4} commits one digest (split decisions depend
//         on load and the router, never on placement width); (ii) after
//         forced splits, a ParallelProduce of a fixed keyed workload
//         routed through the cluster's key-range router at brokers {2,4}
//         x workers {1,4} commits four identical digests.
//
//   E26d: gate parity — the autoscale soak with the autoscaler off
//         reproduces the flat E24 soak digest bit for bit (rolling kills
//         included): ARBD_AUTOSCALE=0 is a structural passthrough.
//
// `--quick` runs reduced schedule counts with the same checks and no
// google-benchmark timings — the CI autoscale smoke. Exit code = failures.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/table.h"
#include "common/rng.h"
#include "exec/executor.h"
#include "scenarios/autoscale.h"
#include "stream/log.h"
#include "stream/parallel.h"

namespace {

using namespace arbd;

struct CheckList {
  int failures = 0;
  void Check(bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    if (!ok) ++failures;
  }
};

// The E26 hotspot run: a diurnal fleet with a mid-period flash crowd over
// the top four POIs, produced in large turns so per-tick partition rates
// are meaningful to the autoscaler.
scenarios::AutoscaleSoakConfig HotspotConfig() {
  scenarios::AutoscaleSoakConfig cfg;
  cfg.base.brokers = 3;
  cfg.base.partitions = 2;
  cfg.base.replication_factor = 2;
  cfg.base.consumers = 3;
  cfg.base.rolling_kill = false;
  cfg.base.fleet.users = 2000;
  cfg.base.fleet.hotspots = 32;
  cfg.base.fleet.ticks = 24;
  cfg.base.fleet.peak_events_per_tick = 80;
  cfg.base.fleet.seed = 11;
  cfg.base.fleet.surge_start_tick = 6;
  cfg.base.fleet.surge_ticks = 14;
  cfg.base.fleet.surge_boost = 3.0;
  cfg.base.fleet.surge_pois = 4;
  cfg.base.produce_chunk = 64;
  cfg.base.seed = 1;
  cfg.autoscale = true;
  cfg.thresholds.split_rate_threshold = 24;
  cfg.thresholds.merge_rate_threshold = 2;
  cfg.thresholds.merge_cold_ticks = 10;
  cfg.thresholds.max_partitions = 32;
  return cfg;
}

int RunExperiment(bool quick) {
  CheckList checks;

  // --- E26a: hotspot relief --------------------------------------------
  {
    const scenarios::AutoscaleSoakConfig cfg = HotspotConfig();
    auto rep = scenarios::RunAutoscaleSoak(cfg);
    if (!rep.ok()) {
      std::printf("hotspot soak failed: %s\n", rep.status().ToString().c_str());
      return 1;
    }
    bench::Table table({"acked", "splits", "merges", "final_parts", "live_leaves",
                        "hot_p99_before", "hot_p99_after", "loss", "dups", "gaps"});
    table.Row({bench::FmtInt(rep->soak.acked), bench::FmtInt(rep->splits),
               bench::FmtInt(rep->merges), bench::FmtInt(rep->final_partitions),
               bench::FmtInt(rep->live_leaves),
               bench::Fmt("%.0f", rep->hot_p99_before),
               bench::Fmt("%.0f", rep->hot_p99_after),
               bench::FmtInt(rep->soak.committed_loss),
               bench::FmtInt(rep->soak.log_duplicates +
                             rep->soak.delivered_duplicates),
               bench::FmtInt(rep->soak.delivery_gaps)});
    table.Print("E26a flash crowd -> split -> hot-partition relief");
    checks.Check(rep->splits > 0, "hotspot: the flash crowd tripped a split");
    checks.Check(rep->soak.committed_loss == 0 && rep->soak.log_duplicates == 0,
                 "hotspot: zero loss, zero log duplicates across the handoff");
    checks.Check(rep->soak.delivered_duplicates == 0 && rep->soak.delivery_gaps == 0,
                 "hotspot: exactly-once delivery across the rebalance onto children");
    checks.Check(rep->soak.controller_consistent,
                 "hotspot: metadata replay reproduces live routing (router digested)");
    checks.Check(!rep->soak.wedged, "hotspot: the run drained");
    checks.Check(rep->hot_p99_after <= 0.7 * rep->hot_p99_before,
                 "hotspot: post-split hot-partition p99 ingest <= 0.7x pre-split");
  }

  // --- E26b: split/merge under kills -----------------------------------
  const std::size_t n_schedules = quick ? 12 : 40;
  {
    std::uint64_t loss = 0, log_dups = 0, out_dups = 0, gaps = 0;
    std::uint64_t kills = 0, splits = 0, merges = 0, handoffs = 0;
    bool none_wedged = true, controllers_consistent = true;
    for (std::size_t i = 0; i < n_schedules; ++i) {
      Rng rng(0xe26bULL + i);
      scenarios::AutoscaleSoakConfig cfg = HotspotConfig();
      cfg.base.seed = 100 + i;
      cfg.base.fleet.seed = 31 * i + 7;
      cfg.base.brokers = static_cast<std::uint32_t>(2 + rng.NextBelow(5));
      cfg.base.rolling_kill = true;
      cfg.base.kill_start_tick = 1 + rng.NextBelow(4);
      cfg.base.kill_spacing_ticks = 2 + rng.NextBelow(5);
      cfg.base.restore_ticks = 3 + rng.NextBelow(6);
      cfg.thresholds.split_rate_threshold = 24 + rng.NextBelow(48);
      cfg.thresholds.merge_cold_ticks = 4 + static_cast<std::uint32_t>(rng.NextBelow(8));
      // Half the schedules force splits/merges at chaos-chosen ticks on
      // top of the thresholds — handoffs landing while leaders are dead.
      if (i % 2 == 0) {
        cfg.base.fault_spec = "autosplit@p=0.10;automerge@p=0.06";
        cfg.base.fault_seed = 1000 + i;
      }
      // Every fourth schedule drops to factor 1: kills then open real
      // unavailability windows (no instant failover), so forced splits
      // land while sends are backing off and the seal check migrates the
      // in-flight (pid, seq) onto a child — the handoff path under test.
      if (i % 4 == 0) {
        cfg.base.replication_factor = 1;
        cfg.base.fault_spec = "autosplit@p=0.60;automerge@p=0.06";
        cfg.base.fault_seed = 1000 + i;
      }
      auto rep = scenarios::RunAutoscaleSoak(cfg);
      if (!rep.ok()) {
        std::printf("autoscale churn (seed=%llu) failed: %s\n",
                    static_cast<unsigned long long>(cfg.base.seed),
                    rep.status().ToString().c_str());
        return 1;
      }
      if (rep->soak.committed_loss || rep->soak.log_duplicates ||
          rep->soak.delivered_duplicates || rep->soak.delivery_gaps ||
          rep->soak.wedged || !rep->soak.controller_consistent) {
        std::printf(
            "  schedule %zu dirty: brokers=%u factor=%u loss=%llu dups=%llu/%llu "
            "gaps=%llu wedged=%d consistent=%d faults=\"%s\"\n",
            i, cfg.base.brokers, cfg.base.replication_factor,
            static_cast<unsigned long long>(rep->soak.committed_loss),
            static_cast<unsigned long long>(rep->soak.log_duplicates),
            static_cast<unsigned long long>(rep->soak.delivered_duplicates),
            static_cast<unsigned long long>(rep->soak.delivery_gaps),
            rep->soak.wedged ? 1 : 0, rep->soak.controller_consistent ? 1 : 0,
            cfg.base.fault_spec.c_str());
      }
      loss += rep->soak.committed_loss;
      log_dups += rep->soak.log_duplicates;
      out_dups += rep->soak.delivered_duplicates;
      gaps += rep->soak.delivery_gaps;
      kills += rep->soak.cluster.kills;
      splits += rep->splits;
      merges += rep->merges;
      handoffs += rep->producer_handoffs;
      none_wedged = none_wedged && !rep->soak.wedged;
      controllers_consistent =
          controllers_consistent && rep->soak.controller_consistent;
    }
    bench::Table table({"schedules", "kills", "splits", "merges", "handoffs",
                        "loss", "log_dups", "deliv_dups", "gaps"});
    table.Row({bench::FmtInt(n_schedules), bench::FmtInt(kills),
               bench::FmtInt(splits), bench::FmtInt(merges),
               bench::FmtInt(handoffs), bench::FmtInt(loss),
               bench::FmtInt(log_dups), bench::FmtInt(out_dups),
               bench::FmtInt(gaps)});
    const std::string title = "E26b split/merge under rolling kills (" +
                              std::to_string(n_schedules) + " seeded schedules)";
    table.Print(title.c_str());
    checks.Check(kills > 0 && splits > 0 && merges > 0,
                 "churn: schedules actually killed brokers, split, and merged");
    checks.Check(handoffs > 0,
                 "churn: in-flight sends were handed off sealed-parent -> child");
    checks.Check(loss == 0, "churn: zero committed loss across all schedules");
    checks.Check(log_dups == 0, "churn: zero duplicate log entries (seq floors held)");
    checks.Check(out_dups == 0 && gaps == 0,
                 "churn: exactly-once delivery across every handoff");
    checks.Check(none_wedged, "churn: no run tripped the wedge guard");
    checks.Check(controllers_consistent,
                 "churn: every metadata log replays to the live routing table");
  }

  // --- E26c: routing determinism ---------------------------------------
  const std::vector<std::uint32_t> broker_counts = {2, 4};
  {
    // (i) Kill-free autoscaled soak across broker counts: one digest.
    std::vector<std::uint64_t> digests;
    bench::Table table({"brokers", "acked", "splits", "digest"});
    for (const std::uint32_t brokers : broker_counts) {
      scenarios::AutoscaleSoakConfig cfg = HotspotConfig();
      cfg.base.brokers = brokers;
      auto rep = scenarios::RunAutoscaleSoak(cfg);
      if (!rep.ok()) {
        std::printf("digest soak (brokers=%u) failed: %s\n", brokers,
                    rep.status().ToString().c_str());
        return 1;
      }
      digests.push_back(rep->soak.committed_digest);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%016llx",
                    static_cast<unsigned long long>(digests.back()));
      table.Row({bench::FmtInt(brokers), bench::FmtInt(rep->soak.acked),
                 bench::FmtInt(rep->splits), buf});
    }
    table.Print("E26c-i committed digest across broker counts (autoscaled, no kills)");
    checks.Check(digests[0] == digests[1] && digests[0] != 0,
                 "autoscaled digest identical at brokers {2,4}: split timing and "
                 "routing are load functions, not placement functions");
  }
  {
    // (ii) Router-assigned ParallelProduce: brokers x workers, one digest.
    const std::size_t n_records = quick ? 2'000 : 8'000;
    std::vector<std::uint64_t> digests;
    bench::Table table({"brokers", "workers", "records", "live_leaves", "digest"});
    for (const std::uint32_t brokers : broker_counts) {
      for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
        SimClock clock;
        stream::Broker broker(clock);
        cluster::ClusterConfig cc;
        cc.brokers = brokers;
        cluster::BrokerCluster cl(broker, cc);
        stream::TopicConfig tc;
        tc.partitions = 4;
        tc.replication_factor = 2;
        if (auto s = cl.CreateTopic("e26.load", tc); !s.ok()) {
          std::printf("CreateTopic failed: %s\n", s.ToString().c_str());
          return 1;
        }
        // Force the same two splits everywhere, then route every record
        // through the key-range trie on the driver.
        if (auto s = cl.SplitPartition("e26.load", 0); !s.ok()) return 1;
        if (auto s = cl.SplitPartition("e26.load", 1); !s.ok()) return 1;
        exec::ExecConfig ec;
        ec.workers = workers;
        exec::Executor ex(ec);
        Rng rng(2626);
        std::vector<stream::Record> records;
        records.reserve(n_records);
        for (std::size_t i = 0; i < n_records; ++i) {
          records.push_back(stream::Record::Make(
              "poi" + std::to_string(rng.NextU64() % 64), Bytes(24, 0x5a),
              TimePoint::FromMillis(static_cast<std::int64_t>(i))));
        }
        const auto report = stream::ParallelProduce(
            ex, broker, "e26.load", std::move(records), Duration::Micros(2),
            [&cl](const stream::Record& r) {
              auto p = cl.RoutePartition("e26.load", r.key);
              return p.ok() ? *p : stream::PartitionId{0};
            });
        auto topic = broker.GetTopic("e26.load");
        digests.push_back(stream::CommittedTopicDigest(**topic));
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%016llx",
                      static_cast<unsigned long long>(digests.back()));
        table.Row({bench::FmtInt(brokers), bench::FmtInt(workers),
                   bench::FmtInt(n_records),
                   bench::FmtInt(cl.LiveLeaves("e26.load").size()), buf});
        (void)report;
      }
    }
    table.Print("E26c-ii router-assigned parallel produce: brokers x workers");
    bool equal = true;
    for (const std::uint64_t d : digests) equal = equal && d == digests[0];
    checks.Check(equal,
                 "split-routed committed digest identical at brokers {2,4} x "
                 "workers {1,4}");
  }

  // --- E26d: gate parity ------------------------------------------------
  {
    scenarios::AutoscaleSoakConfig cfg = HotspotConfig();
    cfg.base.rolling_kill = true;
    cfg.base.kill_spacing_ticks = 4;
    cfg.base.restore_ticks = 6;
    cfg.autoscale = false;
    auto off = scenarios::RunAutoscaleSoak(cfg);
    auto flat = scenarios::RunClusterSoak(cfg.base);
    if (!off.ok() || !flat.ok()) {
      std::printf("gate parity runs failed\n");
      return 1;
    }
    bench::Table table({"run", "acked", "splits", "handoffs", "digest"});
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(off->soak.committed_digest));
    table.Row({"autoscale off", bench::FmtInt(off->soak.acked),
               bench::FmtInt(off->splits), bench::FmtInt(off->producer_handoffs),
               buf});
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(flat->committed_digest));
    table.Row({"flat E24 soak", bench::FmtInt(flat->acked), "-", "-", buf});
    table.Print("E26d ARBD_AUTOSCALE=0 parity with the flat cluster soak");
    checks.Check(off->soak.committed_digest == flat->committed_digest &&
                     off->splits == 0 && off->producer_handoffs == 0,
                 "autoscale off is a structural passthrough (digest-identical "
                 "to the flat soak, zero splits, zero handoffs)");
  }

  std::printf("\nE26 verdict: %s (%d failing check%s)\n",
              checks.failures == 0 ? "PASS" : "FAIL", checks.failures,
              checks.failures == 1 ? "" : "s");
  return checks.failures;
}

void BM_AutoscaleSoak(benchmark::State& state) {
  const bool autoscale = state.range(0) != 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    scenarios::AutoscaleSoakConfig cfg = HotspotConfig();
    cfg.autoscale = autoscale;
    cfg.base.seed = seed++;
    auto rep = scenarios::RunAutoscaleSoak(cfg);
    benchmark::DoNotOptimize(rep);
  }
}
BENCHMARK(BM_AutoscaleSoak)->Arg(0)->Arg(1);

void BM_RoutePartition(benchmark::State& state) {
  SimClock clock;
  stream::Broker broker(clock);
  cluster::ClusterConfig cc;
  cc.brokers = 2;
  cluster::BrokerCluster cl(broker, cc);
  stream::TopicConfig tc;
  tc.partitions = 4;
  tc.replication_factor = 2;
  (void)cl.CreateTopic("bm", tc);
  // Half the routes hit the refinement trie, half stay at depth 0.
  (void)cl.SplitPartition("bm", 0);
  (void)cl.SplitPartition("bm", 1);
  std::size_t i = 0;
  for (auto _ : state) {
    auto p = cl.RoutePartition("bm", "poi" + std::to_string(i % 64));
    benchmark::DoNotOptimize(p);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoutePartition);

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const int failures = RunExperiment(quick);
  if (quick) return failures;  // CI smoke: tables + checks only
  if (failures != 0) return failures;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
