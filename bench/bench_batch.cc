// E23 — columnar RecordBatch hot path. Two parts:
//
//   E23a: batch-size sweep — N keyed records through ParallelProduce (in
//         produce chunks of B) + ParallelFetchAll on a single partition,
//         per-record mode vs ARBD_BATCH mode, B ∈ {64, 256, 1024, 4096}.
//         Throughput is *modeled* records/sec from the executor's virtual
//         makespan: the per-record path bills a flat cost per row, the
//         batch path bills BatchedCost (2x setup per batch, 1/8 the
//         marginal per row), so the model predicts a step from ~6.4x
//         toward the 8x marginal ceiling as B grows. Gates: the fetched
//         content digest is bit-identical between modes at every B, the
//         modeled speedup is >= 4x at every B, non-decreasing in B, and
//         >= 6x by B=4096.
//
//   E23b: differential digest gates — TourismDigest and OverloadDigest
//         with the batch path off vs on, across workers {1, 4} and
//         replication factors {1, 3}: every pair must be bit-identical
//         (the tier-1 batch_determinism suite enforces the same contract;
//         here it rides the experiment so E23 is self-contained).
//
// `--quick` runs reduced scenario seeds with the same checks and no
// google-benchmark timings — the CI batch smoke. Exit code = failures.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/table.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "exec/executor.h"
#include "scenarios/digest.h"
#include "stream/batch.h"
#include "stream/log.h"
#include "stream/parallel.h"

namespace {

using namespace arbd;

constexpr Duration kProduceCost = Duration::Micros(2);
constexpr Duration kFetchCost = Duration::Micros(1);

struct CheckList {
  int failures = 0;
  void Check(bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    if (!ok) ++failures;
  }
};

std::vector<stream::Record> MakeRecords(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<stream::Record> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string key = "k" + std::to_string(rng.NextU64() % 64);
    Bytes payload(32, static_cast<std::uint8_t>(i & 0xff));
    records.push_back(
        stream::Record::Make(key, std::move(payload), TimePoint::FromMillis(i)));
  }
  return records;
}

struct SweepRun {
  std::uint64_t digest = 0;
  double makespan_ms = 0.0;
  double recs_per_s = 0.0;  // modeled, from virtual makespan
};

// N records through produce chunks of `chunk` + one full fetch, on one
// partition so the produce batch size is exactly `chunk` in batch mode.
SweepRun RunSweep(std::size_t n_records, std::size_t chunk) {
  SimClock clock;
  stream::Broker broker(clock);
  stream::TopicConfig tc;
  tc.partitions = 1;
  (void)broker.CreateTopic("e23.load", tc);
  exec::ExecConfig ec;
  ec.workers = 1;
  exec::Executor ex(ec);

  auto records = MakeRecords(n_records, 23);
  std::size_t produced = 0;
  for (std::size_t at = 0; at < records.size(); at += chunk) {
    const std::size_t take = std::min(chunk, records.size() - at);
    std::vector<stream::Record> part(records.begin() + static_cast<std::ptrdiff_t>(at),
                                     records.begin() + static_cast<std::ptrdiff_t>(at + take));
    produced += stream::ParallelProduce(ex, broker, "e23.load", std::move(part),
                                        kProduceCost)
                    .produced;
  }
  const auto fetched =
      stream::ParallelFetchAll(ex, broker, "e23.load", n_records, kFetchCost);

  SweepRun run;
  BinaryWriter w;
  w.WriteU64(produced);
  for (const auto& part : fetched) {
    w.WriteU64(part.size());
    for (const auto& sr : part) {
      w.WriteU64(Fnv1a(sr.record.key));
      w.WriteBytes(sr.record.payload);
      w.WriteI64(sr.offset);
      w.WriteU32(sr.partition);
    }
  }
  run.digest = Fnv1a(w.bytes());
  const double makespan_s = ex.VirtualMakespan().seconds();
  run.makespan_ms = makespan_s * 1e3;
  std::size_t total_fetched = 0;
  for (const auto& part : fetched) total_fetched += part.size();
  run.recs_per_s = makespan_s > 0.0
                       ? static_cast<double>(produced + total_fetched) / makespan_s
                       : 0.0;
  return run;
}

int RunExperiment(bool quick) {
  const std::vector<std::size_t> batch_sizes = {64, 256, 1024, 4096};
  const std::size_t n_records = 8'192;
  CheckList checks;

  // --- E23a: batch-size sweep ----------------------------------------
  bench::Table table({"batch", "records", "recs/s(record)", "recs/s(batch)",
                      "speedup", "digest=="});
  std::vector<double> speedups;
  for (const std::size_t b : batch_sizes) {
    stream::SetBatchingEnabled(false);
    const SweepRun off = RunSweep(n_records, b);
    stream::SetBatchingEnabled(true);
    const SweepRun on = RunSweep(n_records, b);
    stream::SetBatchingEnabled(false);
    const double speedup = on.recs_per_s / off.recs_per_s;
    speedups.push_back(speedup);
    table.Row({bench::FmtInt(b), bench::FmtInt(n_records),
               bench::Fmt("%.0f", off.recs_per_s), bench::Fmt("%.0f", on.recs_per_s),
               bench::Fmt("%.2fx", speedup), off.digest == on.digest ? "yes" : "NO"});
    checks.Check(off.digest == on.digest,
                 "sweep: fetched-content digest identical at batch=" + std::to_string(b));
    checks.Check(speedup >= 4.0, "sweep: modeled speedup " + bench::Fmt("%.2f", speedup) +
                                     "x >= 4x at batch=" + std::to_string(b));
  }
  table.Print("E23a columnar batch sweep (modeled records/s, P=1)");
  bool monotone = true;
  for (std::size_t i = 1; i < speedups.size(); ++i) {
    monotone = monotone && speedups[i] >= speedups[i - 1] - 1e-9;
  }
  checks.Check(monotone, "sweep: speedup non-decreasing from batch=64 to 4096");
  checks.Check(speedups.back() >= 6.0,
               "sweep: speedup " + bench::Fmt("%.2f", speedups.back()) +
                   "x >= 6x at batch=4096 (8x ceiling)");

  // --- E23b: differential scenario digests ----------------------------
  const std::vector<std::uint64_t> seeds =
      quick ? std::vector<std::uint64_t>{3} : std::vector<std::uint64_t>{3, 11};
  bench::Table stable({"scenario", "seed", "workers", "replicas", "off", "on", "equal"});
  for (const char* factor : {"1", "3"}) {
    setenv("ARBD_REPLICAS", factor, 1);
    for (const std::size_t wks : {1u, 4u}) {
      exec::ExecConfig ec;
      ec.workers = wks;
      for (const std::uint64_t seed : seeds) {
        for (const bool tourism : {true, false}) {
          stream::SetBatchingEnabled(false);
          const std::uint64_t off = tourism ? scenarios::TourismDigest(seed, ec)
                                            : scenarios::OverloadDigest(seed, ec);
          stream::SetBatchingEnabled(true);
          const std::uint64_t on = tourism ? scenarios::TourismDigest(seed, ec)
                                           : scenarios::OverloadDigest(seed, ec);
          stream::SetBatchingEnabled(false);
          char offb[32], onb[32];
          std::snprintf(offb, sizeof(offb), "%08llx",
                        static_cast<unsigned long long>(off & 0xffffffffULL));
          std::snprintf(onb, sizeof(onb), "%08llx",
                        static_cast<unsigned long long>(on & 0xffffffffULL));
          stable.Row({tourism ? "tourism" : "overload", bench::FmtInt(seed),
                      bench::FmtInt(wks), factor, offb, onb,
                      off == on ? "yes" : "NO"});
          checks.Check(off == on, std::string(tourism ? "tourism" : "overload") +
                                      " digest batch-invariant: seed=" +
                                      std::to_string(seed) + " workers=" +
                                      std::to_string(wks) + " replicas=" + factor);
        }
      }
    }
  }
  unsetenv("ARBD_REPLICAS");
  stable.Print("E23b scenario digests, batch path off vs on");

  std::printf("\nE23 verdict: %s (%d failing check%s)\n",
              checks.failures == 0 ? "PASS" : "FAIL", checks.failures,
              checks.failures == 1 ? "" : "s");
  return checks.failures;
}

void BM_BatchSweep(benchmark::State& state) {
  const auto chunk = static_cast<std::size_t>(state.range(0));
  stream::SetBatchingEnabled(state.range(1) != 0);
  for (auto _ : state) {
    auto run = RunSweep(8'192, chunk);
    benchmark::DoNotOptimize(run);
  }
  stream::SetBatchingEnabled(false);
  state.SetItemsProcessed(state.iterations() * 16'384);
}
BENCHMARK(BM_BatchSweep)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Args({4096, 1});

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const int failures = RunExperiment(quick);
  if (quick) return failures;  // CI smoke: tables + checks only
  if (failures != 0) return failures;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
