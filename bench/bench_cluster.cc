// E24 — multi-broker cluster: rolling-kill availability, placement
// scaling, and exactly-once delivery across broker loss.
//
//   E24a: rolling-kill sweep — the cluster soak (fleet-shaped workload ->
//         ClusterProducer -> generation-fenced consumer group, every
//         broker killed once, staggered) under >= 40 seeded kill
//         schedules (seed-varied spacing, restore windows, occasional
//         netsplits and injected killbroker/netsplit faults). Gates, per
//         schedule: zero committed loss, zero log duplicates, zero
//         duplicate deliveries, zero delivery gaps, metadata-log replay
//         digest equal to the live routing table's, no wedge.
//
//   E24b: digest invariance — (i) the full rolling-kill soak at broker
//         counts {1,2,4,8} with a generous retry budget commits one
//         digest (placement moves replica slots, never record->partition
//         routing); (ii) ParallelProduce of a fixed keyed workload at
//         broker counts {1,2,4,8} x workers {1,4} — eight identical
//         committed digests (the gate is frozen between ticks, so worker
//         interleaving cannot leak through it; count 1 runs the bare
//         broker, so equality also proves the gate's structural
//         passthrough).
//
//   E24c: availability curve — the same rolling-kill storm with a starved
//         retry budget (2 attempts) and overlapping outages (restore >
//         spacing) at broker counts {1,2,4,8}: availability
//         (acked/offered) must be monotone non-decreasing in broker
//         count, and 8 brokers must beat 1 outright.
//
//   E24d: modeled throughput scaling — ModeledProduceMakespan of a
//         uniform produce load over 16 partitions at broker counts
//         {1,2,4,8}: modeled speedup (makespan_1 / makespan_B) must stay
//         near-linear (>= 0.8 * B) out to 8 brokers.
//
// `--quick` runs reduced schedule counts with the same checks and no
// google-benchmark timings — the CI cluster smoke. Exit code = failures.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/table.h"
#include "common/rng.h"
#include "exec/executor.h"
#include "scenarios/cluster.h"
#include "stream/log.h"
#include "stream/parallel.h"

namespace {

using namespace arbd;

struct CheckList {
  int failures = 0;
  void Check(bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    if (!ok) ++failures;
  }
};

scenarios::ClusterSoakConfig BaseConfig() {
  scenarios::ClusterSoakConfig cfg;
  cfg.brokers = 4;
  cfg.partitions = 8;
  cfg.replication_factor = 3;
  cfg.consumers = 4;
  cfg.fleet.users = 3000;
  cfg.fleet.hotspots = 48;
  cfg.fleet.ticks = 16;
  cfg.fleet.peak_events_per_tick = 100;
  cfg.fleet.seed = 11;
  cfg.producer_attempts = 64;  // generous: outlasts every restore window
  cfg.seed = 1;
  return cfg;
}

int RunExperiment(bool quick) {
  CheckList checks;

  // --- E24a: rolling-kill sweep ----------------------------------------
  const std::size_t n_schedules = quick ? 12 : 40;
  std::uint64_t loss = 0, log_dups = 0, out_dups = 0, gaps = 0;
  std::uint64_t kills = 0, leader_moves = 0, fenced = 0, evictions = 0;
  std::uint64_t retries = 0, rerouted = 0;
  bool none_wedged = true, controllers_consistent = true;
  for (std::size_t i = 0; i < n_schedules; ++i) {
    Rng rng(0xe24aULL + i);
    scenarios::ClusterSoakConfig cfg = BaseConfig();
    cfg.seed = 100 + i;
    cfg.brokers = static_cast<std::uint32_t>(2 + rng.NextBelow(7));
    cfg.kill_start_tick = 1 + rng.NextBelow(4);
    cfg.kill_spacing_ticks = 2 + rng.NextBelow(5);
    cfg.restore_ticks = 3 + rng.NextBelow(7);
    if (rng.Bernoulli(0.3) && cfg.brokers >= 3) {
      cfg.netsplit_at_turn = 8 + rng.NextBelow(10);
    }
    if (rng.Bernoulli(0.25)) {
      cfg.fault_spec = "killbroker@p=0.05,x=4;netsplit@p=0.02,x=4";
      cfg.fault_seed = 1000 + i;
    }
    auto rep = scenarios::RunClusterSoak(cfg);
    if (!rep.ok()) {
      std::printf("cluster soak (seed=%llu) failed: %s\n",
                  static_cast<unsigned long long>(cfg.seed),
                  rep.status().ToString().c_str());
      return 1;
    }
    loss += rep->committed_loss;
    log_dups += rep->log_duplicates;
    out_dups += rep->delivered_duplicates;
    gaps += rep->delivery_gaps;
    kills += rep->cluster.kills;
    leader_moves += rep->cluster.leader_moves;
    fenced += rep->fenced_commits;
    evictions += rep->evictions;
    retries += rep->producer_retries;
    rerouted += rep->producer_rerouted;
    none_wedged = none_wedged && !rep->wedged;
    controllers_consistent = controllers_consistent && rep->controller_consistent;
  }
  bench::Table atable({"schedules", "kills", "leader_moves", "evictions",
                       "fenced_commits", "retries", "rerouted", "loss",
                       "log_dups", "deliv_dups", "gaps"});
  atable.Row({bench::FmtInt(n_schedules), bench::FmtInt(kills),
              bench::FmtInt(leader_moves), bench::FmtInt(evictions),
              bench::FmtInt(fenced), bench::FmtInt(retries),
              bench::FmtInt(rerouted), bench::FmtInt(loss),
              bench::FmtInt(log_dups), bench::FmtInt(out_dups),
              bench::FmtInt(gaps)});
  const std::string atitle = "E24a rolling-kill sweep (" +
                             std::to_string(n_schedules) + " seeded schedules)";
  atable.Print(atitle.c_str());
  checks.Check(kills > 0 && leader_moves > 0,
               "sweep: kill schedules actually downed brokers and moved leaders");
  checks.Check(evictions > 0 && fenced > 0,
               "sweep: broker deaths evicted members and fenced their stale commits");
  checks.Check(loss == 0, "sweep: zero committed loss across all schedules");
  checks.Check(log_dups == 0, "sweep: zero duplicate log entries (idempotent rerouting)");
  checks.Check(out_dups == 0, "sweep: zero duplicate deliveries (generation fencing)");
  checks.Check(gaps == 0, "sweep: zero delivery gaps (rebalance resumes at committed)");
  checks.Check(none_wedged, "sweep: no run tripped the wedge guard");
  checks.Check(controllers_consistent,
               "sweep: metadata-log replay reproduces the live routing table");

  // --- E24b: digest invariance -----------------------------------------
  const std::vector<std::uint32_t> broker_counts = {1, 2, 4, 8};

  // (i) Full rolling-kill soak across broker counts: one digest.
  std::vector<std::uint64_t> soak_digests;
  bench::Table btable({"brokers", "acked", "retries", "rerouted", "digest"});
  for (const std::uint32_t brokers : broker_counts) {
    scenarios::ClusterSoakConfig cfg = BaseConfig();
    cfg.brokers = brokers;
    cfg.kill_spacing_ticks = 4;
    cfg.restore_ticks = 6;
    auto rep = scenarios::RunClusterSoak(cfg);
    if (!rep.ok()) {
      std::printf("digest soak (brokers=%u) failed: %s\n", brokers,
                  rep.status().ToString().c_str());
      return 1;
    }
    soak_digests.push_back(rep->committed_digest);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(rep->committed_digest));
    btable.Row({bench::FmtInt(brokers), bench::FmtInt(rep->acked),
                bench::FmtInt(rep->producer_retries),
                bench::FmtInt(rep->producer_rerouted), buf});
  }
  btable.Print("E24b-i committed digest across broker counts (rolling kills)");
  bool soak_equal = true;
  for (const std::uint64_t d : soak_digests) soak_equal = soak_equal && d == soak_digests[0];
  checks.Check(soak_equal,
               "soak digest identical at broker counts {1,2,4,8} under rolling kills");

  // (ii) ParallelProduce at broker counts x workers: eight digests, no
  // kills — the frozen gate must be invisible to worker interleaving.
  const std::size_t n_records = quick ? 2'000 : 8'000;
  std::vector<std::uint64_t> pp_digests;
  bench::Table ptable({"brokers", "workers", "records", "unavailable", "digest"});
  for (const std::uint32_t brokers : broker_counts) {
    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
      SimClock clock;
      stream::Broker broker(clock);
      std::unique_ptr<cluster::BrokerCluster> cl;
      stream::TopicConfig tc;
      tc.partitions = 8;
      tc.replication_factor = 3;
      if (brokers > 1) {
        cluster::ClusterConfig cc;
        cc.brokers = brokers;
        cl = std::make_unique<cluster::BrokerCluster>(broker, cc);
        if (auto s = cl->CreateTopic("e24.load", tc); !s.ok()) {
          std::printf("CreateTopic failed: %s\n", s.ToString().c_str());
          return 1;
        }
      } else {
        (void)broker.CreateTopic("e24.load", tc);
      }
      exec::ExecConfig ec;
      ec.workers = workers;
      exec::Executor ex(ec);
      Rng rng(2424);
      std::vector<stream::Record> records;
      records.reserve(n_records);
      for (std::size_t i = 0; i < n_records; ++i) {
        records.push_back(stream::Record::Make(
            "k" + std::to_string(rng.NextU64() % 64), Bytes(24, 0x5a),
            TimePoint::FromMillis(static_cast<std::int64_t>(i))));
      }
      const auto report = stream::ParallelProduce(ex, broker, "e24.load",
                                                  std::move(records), Duration::Micros(2));
      auto topic = broker.GetTopic("e24.load");
      pp_digests.push_back(stream::CommittedTopicDigest(**topic));
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%016llx",
                    static_cast<unsigned long long>(pp_digests.back()));
      ptable.Row({bench::FmtInt(brokers), bench::FmtInt(workers),
                  bench::FmtInt(n_records), bench::FmtInt(report.unavailable), buf});
    }
  }
  ptable.Print("E24b-ii committed digest across broker counts x workers");
  bool pp_equal = true;
  for (const std::uint64_t d : pp_digests) pp_equal = pp_equal && d == pp_digests[0];
  checks.Check(pp_equal,
               "parallel produce: committed digest identical at brokers {1,2,4,8} "
               "x workers {1,4} (count 1 = bare broker passthrough)");

  // --- E24c: availability curve ----------------------------------------
  const std::size_t avail_seeds = quick ? 4 : 8;
  std::vector<double> avail;
  bench::Table ctable({"brokers", "offered", "acked", "denied", "availability"});
  for (const std::uint32_t brokers : broker_counts) {
    std::uint64_t offered = 0, acked = 0, denied = 0;
    for (std::size_t i = 0; i < avail_seeds; ++i) {
      scenarios::ClusterSoakConfig cfg = BaseConfig();
      cfg.brokers = brokers;
      cfg.seed = 500 + i;
      cfg.fleet.seed = 900 + i;  // same offered load at every broker count
      cfg.producer_attempts = 2;  // starved: denials measure availability
      cfg.kill_spacing_ticks = 2;
      cfg.restore_ticks = 10;  // restore > spacing: overlapping outages
      auto rep = scenarios::RunClusterSoak(cfg);
      if (!rep.ok()) {
        std::printf("availability soak failed: %s\n", rep.status().ToString().c_str());
        return 1;
      }
      offered += rep->offered;
      acked += rep->acked;
      denied += rep->denied;
    }
    avail.push_back(static_cast<double>(acked) / static_cast<double>(offered));
    ctable.Row({bench::FmtInt(brokers), bench::FmtInt(offered), bench::FmtInt(acked),
                bench::FmtInt(denied), bench::Fmt("%.4f", avail.back())});
  }
  ctable.Print("E24c availability vs broker count (2-attempt budget, overlapping kills)");
  bool monotone = true;
  for (std::size_t i = 1; i < avail.size(); ++i) {
    monotone = monotone && avail[i] + 1e-12 >= avail[i - 1];
  }
  checks.Check(monotone, "availability monotone non-decreasing in broker count");
  checks.Check(avail.back() > avail.front(),
               "more brokers buy real availability (8 brokers > 1)");

  // --- E24d: modeled throughput scaling --------------------------------
  const std::size_t model_records = 64'000;
  std::vector<double> makespans_ms;
  bench::Table dtable({"brokers", "makespan_ms", "speedup"});
  for (const std::uint32_t brokers : broker_counts) {
    SimClock clock;
    stream::Broker broker(clock);
    cluster::ClusterConfig cc;
    cc.brokers = brokers;
    cluster::BrokerCluster cl(broker, cc);
    stream::TopicConfig tc;
    tc.partitions = 16;
    tc.replication_factor = 3;
    if (auto s = cl.CreateTopic("e24.model", tc); !s.ok()) {
      std::printf("CreateTopic failed: %s\n", s.ToString().c_str());
      return 1;
    }
    const Duration makespan =
        cl.ModeledProduceMakespan("e24.model", model_records, Duration::Micros(5));
    makespans_ms.push_back(makespan.seconds() * 1e3);
    dtable.Row({bench::FmtInt(brokers), bench::Fmt("%.2f", makespans_ms.back()),
                bench::Fmt("%.2fx", makespans_ms.front() / makespans_ms.back())});
  }
  dtable.Print("E24d modeled produce makespan vs broker count (16 partitions)");
  bool near_linear = true;
  for (std::size_t i = 0; i < broker_counts.size(); ++i) {
    const double speedup = makespans_ms.front() / makespans_ms[i];
    near_linear = near_linear && speedup >= 0.8 * broker_counts[i];
  }
  checks.Check(near_linear,
               "modeled speedup >= 0.8x linear out to 8 brokers (leader balancing)");

  std::printf("\nE24 verdict: %s (%d failing check%s)\n",
              checks.failures == 0 ? "PASS" : "FAIL", checks.failures,
              checks.failures == 1 ? "" : "s");
  return checks.failures;
}

void BM_ClusterSoak(benchmark::State& state) {
  const auto brokers = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    scenarios::ClusterSoakConfig cfg = BaseConfig();
    cfg.brokers = brokers;
    cfg.seed = seed++;
    auto rep = scenarios::RunClusterSoak(cfg);
    benchmark::DoNotOptimize(rep);
  }
}
BENCHMARK(BM_ClusterSoak)->Arg(2)->Arg(8);

void BM_ClusterProducerSend(benchmark::State& state) {
  const auto brokers = static_cast<std::uint32_t>(state.range(0));
  SimClock clock;
  stream::Broker broker(clock);
  cluster::ClusterConfig cc;
  cc.brokers = brokers;
  cluster::BrokerCluster cl(broker, cc);
  stream::TopicConfig tc;
  tc.partitions = 8;
  tc.replication_factor = 3;
  (void)cl.CreateTopic("bm", tc);
  cluster::ClusterProducer producer(cl, broker, "bm");
  std::size_t i = 0;
  for (auto _ : state) {
    auto sent = producer.Send(stream::Record::MakeText(
        "k" + std::to_string(i % 64), "v",
        TimePoint::FromMillis(static_cast<std::int64_t>(i))));
    benchmark::DoNotOptimize(sent);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClusterProducerSend)->Arg(1)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const int failures = RunExperiment(quick);
  if (quick) return failures;  // CI smoke: tables + checks only
  if (failures != 0) return failures;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
