// E4 — §4.1 timeliness: incremental maintenance vs batch recomputation of
// sliding-window aggregates. The incremental engine answers after every
// event; the batch baseline is so much slower that it is probed on a
// stride and reported per query. google-benchmark sections give
// calibrated wall times for the common path.
#include <benchmark/benchmark.h>

#include <chrono>

#include "analytics/stats.h"
#include "bench/table.h"
#include "common/rng.h"

namespace {

using namespace arbd;
using Clock = std::chrono::steady_clock;

// Pre-generated event stream with ~1 ms spacing.
std::vector<std::pair<TimePoint, double>> MakeStream(std::size_t n) {
  Rng rng(11);
  std::vector<std::pair<TimePoint, double>> out;
  out.reserve(n);
  TimePoint t;
  for (std::size_t i = 0; i < n; ++i) {
    t += Duration::Micros(static_cast<std::int64_t>(500 + rng.NextBelow(1000)));
    out.emplace_back(t, rng.Gaussian(10.0, 4.0));
  }
  return out;
}

void BM_IncrementalAddQuery(benchmark::State& state) {
  const auto stream = MakeStream(static_cast<std::size_t>(state.range(0)));
  const Duration window = Duration::Seconds(stream.size() / 2000.0);  // ~half retained
  for (auto _ : state) {
    analytics::IncrementalWindow w(window);
    for (const auto& [t, v] : stream) {
      w.Add(t, v);
      benchmark::DoNotOptimize(w.Query(t));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IncrementalAddQuery)->Arg(10'000)->Arg(100'000);

void BM_BatchAddQuery(benchmark::State& state) {
  const auto stream = MakeStream(static_cast<std::size_t>(state.range(0)));
  const Duration window = Duration::Seconds(stream.size() / 2000.0);
  for (auto _ : state) {
    analytics::BatchWindow w(window);
    std::size_t i = 0;
    for (const auto& [t, v] : stream) {
      w.Add(t, v);
      if (++i % 100 == 0) {  // batch jobs run periodically, not per event
        benchmark::DoNotOptimize(w.Query(t));
        w.Compact(t);
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BatchAddQuery)->Arg(10'000)->Arg(100'000);

void PrintExperimentTable() {
  bench::Table table({"events", "retained_window", "inc_us_per_query",
                      "batch_us_per_query", "per_query_speedup",
                      "inc_queries_per_s_M"});
  for (std::size_t n : {10'000u, 50'000u, 200'000u, 1'000'000u}) {
    const auto stream = MakeStream(n);
    const Duration window = Duration::Seconds(static_cast<double>(n) / 2000.0);

    // Incremental: answer after every event.
    const auto t0 = Clock::now();
    analytics::IncrementalWindow inc(window);
    double sink = 0.0;
    for (const auto& [t, v] : stream) {
      inc.Add(t, v);
      sink += inc.Query(t).mean;
    }
    const auto t1 = Clock::now();

    // Batch: recompute on a stride sized to keep total work bounded; the
    // per-query cost is what matters (it is O(retained window)).
    const std::size_t stride = std::max<std::size_t>(100, n / 1000);
    analytics::BatchWindow batch(window);
    std::size_t batch_queries = 0;
    const auto t2 = Clock::now();
    std::size_t i = 0;
    for (const auto& [t, v] : stream) {
      batch.Add(t, v);
      if (++i % stride == 0) {
        sink += batch.Query(t).mean;
        ++batch_queries;
        batch.Compact(t);
      }
    }
    const auto t3 = Clock::now();
    benchmark::DoNotOptimize(sink);

    const double inc_us = std::chrono::duration<double, std::micro>(t1 - t0).count() /
                          static_cast<double>(n);
    const double batch_us = std::chrono::duration<double, std::micro>(t3 - t2).count() /
                            static_cast<double>(std::max<std::size_t>(1, batch_queries));
    table.Row({bench::FmtInt(n), std::to_string(window.millis()) + "ms",
               bench::Fmt("%.3f", inc_us), bench::Fmt("%.1f", batch_us),
               bench::Fmt("%.0fx", batch_us / inc_us),
               bench::Fmt("%.2f", 1.0 / inc_us)});
  }
  table.Print("E4: incremental vs batch sliding-window aggregation (§4.1)");
  std::printf("Expected shape: incremental per-query cost is flat regardless of volume; "
              "batch per-query cost grows linearly with the retained window, so the "
              "speedup widens with scale — the case for streaming analytics in AR.\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintExperimentTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
