// E16 — §3.4/Figure 9 security screening: lane throughput, queueing delay
// and watchlist recall for manual document checks vs AR-overlaid profile
// screening, swept over passenger arrival rate ("reduce screening
// traffic").
#include <benchmark/benchmark.h>

#include "bench/table.h"
#include "scenarios/security.h"

namespace {

using namespace arbd;
using namespace arbd::scenarios;

void ArrivalSweep() {
  bench::Table table({"arrivals/min", "mode", "throughput/min", "mean_wait_s",
                      "p95_wait_s", "max_queue", "flag_recall"});
  for (double rate : {2.0, 4.0, 6.0, 8.0, 12.0, 16.0}) {
    for (ScreeningMode mode : {ScreeningMode::kManual, ScreeningMode::kArAssisted}) {
      ScreeningConfig cfg;
      cfg.mode = mode;
      cfg.arrivals_per_minute = rate;
      cfg.flag_rate = 0.05;
      cfg.run_length = Duration::Seconds(3600);
      const auto m = RunScreening(cfg, 19);
      table.Row({bench::Fmt("%.0f", rate),
                 mode == ScreeningMode::kManual ? "manual" : "AR-assisted",
                 bench::Fmt("%.1f", m.throughput_per_min),
                 bench::Fmt("%.0f", m.mean_wait_s), bench::Fmt("%.0f", m.p95_wait_s),
                 bench::FmtInt(m.max_queue), bench::Fmt("%.3f", m.flag_recall)});
    }
  }
  table.Print("E16: screening lane — manual vs AR-assisted (1 h, watchlist 5%)");
  std::printf("Expected shape: the manual lane saturates near its ~4/min service "
              "capacity and queues explode; the AR lane tracks the arrival rate with "
              "near-zero waits and near-perfect watchlist recall.\n");
}

void RecognitionSweep() {
  bench::Table table({"recognition_rate", "throughput/min", "mean_wait_s",
                      "fallback%", "flag_recall"});
  for (double rec : {0.5, 0.7, 0.85, 0.92, 0.99}) {
    ScreeningConfig cfg;
    cfg.mode = ScreeningMode::kArAssisted;
    cfg.arrivals_per_minute = 8.0;
    cfg.recognition_rate = rec;
    cfg.flag_rate = 0.05;
    cfg.run_length = Duration::Seconds(3600);
    const auto m = RunScreening(cfg, 21);
    table.Row({bench::Fmt("%.2f", rec), bench::Fmt("%.1f", m.throughput_per_min),
               bench::Fmt("%.0f", m.mean_wait_s),
               bench::Fmt("%.0f%%", m.processed
                                        ? 100.0 * static_cast<double>(m.recognition_fallbacks) /
                                              static_cast<double>(m.processed)
                                        : 0.0),
               bench::Fmt("%.3f", m.flag_recall)});
  }
  table.Print("E16b: AR lane sensitivity to face-recognition accuracy (8/min arrivals)");
  std::printf("Expected shape: each recognition failure costs a manual fallback, so "
              "throughput degrades smoothly toward the manual lane as accuracy drops — "
              "the AR win depends on the recognition substrate.\n");
}

void BM_ScreeningHour(benchmark::State& state) {
  ScreeningConfig cfg;
  cfg.mode = state.range(0) == 0 ? ScreeningMode::kManual : ScreeningMode::kArAssisted;
  for (auto _ : state) benchmark::DoNotOptimize(RunScreening(cfg, 1));
}
BENCHMARK(BM_ScreeningHour)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  ArrivalSweep();
  RecognitionSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
