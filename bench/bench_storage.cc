// E25 — segmented tiered log. Four parts:
//
//   E25a: tail-undisturbed — wall-clock tail-produce throughput on a
//         prefilled partition: flat store vs segmented store vs segmented
//         with 4 concurrent historical scan threads hammering QueryRange/
//         QueryTime over the sealed tier. Queries snapshot shared_ptrs
//         under the partition lock and then scan immutable segments
//         lock-free, so the tail should barely notice. Gates (generous,
//         CI-noise-safe): segmented >= 0.6x flat, and with-scans >= 0.5x
//         without-scans.
//
//   E25b: sublinear query work — a fixed log queried at S ∈ {8, 32, 128}
//         segments. The gates are on *deterministic* work counters, not
//         wall clocks: blocks_scanned for a fixed-width range/time query
//         must stay ~constant (<= 1.5x from S=8 to S=128) because the
//         sparse offset/time indexes prune everything outside the answer;
//         a generous wall bound (<= 8x over a 16x segment growth) rides
//         along as a smoke check.
//
//   E25c: cache hit-rate sweep — one seeded Zipf-ish query workload
//         replayed against fresh BlockCaches of growing capacity: the
//         hit rate must be monotone non-decreasing in capacity, and high
//         once the whole sealed tier fits.
//
//   E25d: session replay + differential digests — RunSessionReplay with
//         segmentation off vs on must verify every tourist session both
//         ways and produce bit-identical replay digests; Tourism/Overload
//         scenario digests must be segmentation-invariant across workers
//         {1, 4} x replication factors {1, 3}.
//
// `--quick` runs reduced sizes/seeds with the same checks and no
// google-benchmark timings — the CI storage smoke. Exit code = failures.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/table.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "exec/executor.h"
#include "scenarios/digest.h"
#include "scenarios/replay.h"
#include "stream/log.h"
#include "stream/query.h"
#include "stream/segment.h"

namespace {

using namespace arbd;

constexpr char kTopic[] = "e25.log";

struct CheckList {
  int failures = 0;
  void Check(bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    if (!ok) ++failures;
  }
};

struct Harness {
  SimClock clock;
  stream::Broker broker{clock};
  Harness() {
    stream::TopicConfig tc;
    tc.partitions = 1;
    (void)broker.CreateTopic(kTopic, tc);
  }
  // ~35 key+payload bytes per row; event time = row index in ms.
  void Produce(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      Bytes payload(32, static_cast<std::uint8_t>(i & 0xff));
      (void)broker.ProduceToPartition(
          kTopic, 0,
          stream::Record::Make("k" + std::to_string(i % 64), std::move(payload),
                               TimePoint::FromMillis(static_cast<std::int64_t>(i))));
    }
  }
  const stream::Partition& partition() {
    return (*broker.GetTopic(kTopic))->partition(0);
  }
};

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Produce `tail` records after `prefill`, returning wall records/sec of
// the tail phase; optionally with 4 historical-scan threads running.
double TailThroughput(std::size_t prefill, std::size_t tail, std::size_t segment_bytes,
                      bool scans) {
  stream::SetSegmentBytesTarget(segment_bytes);
  Harness h;
  h.Produce(prefill);
  std::atomic<bool> stop{false};
  std::vector<std::thread> scanners;
  if (scans) {
    for (int sid = 0; sid < 4; ++sid) {
      scanners.emplace_back([&h, &stop, sid, prefill] {
        Rng rng(0xE25AULL + static_cast<std::uint64_t>(sid));
        while (!stop.load(std::memory_order_relaxed)) {
          const auto lo = static_cast<stream::Offset>(
              rng.NextBelow(prefill > 512 ? prefill - 512 : 1));
          (void)h.broker.QueryRange(kTopic, 0, lo, lo + 512);
          (void)h.broker.QueryTime(kTopic, 0, TimePoint::FromMillis(lo),
                                   TimePoint::FromMillis(lo + 256));
        }
      });
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  h.Produce(tail);
  const double secs = SecondsSince(t0);
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : scanners) t.join();
  stream::SetSegmentBytesTarget(0);
  return secs > 0.0 ? static_cast<double>(tail) / secs : 0.0;
}

int RunExperiment(bool quick) {
  CheckList checks;
  const std::size_t prefill = quick ? 20'000 : 60'000;
  const std::size_t tail = quick ? 10'000 : 40'000;

  // --- E25a: tail throughput undisturbed by historical scans -----------
  // Best of 3 runs per config: a transient scheduler stall on a shared
  // runner must hit every trial to flake the gate, while a real
  // lock-contention collapse (scans blocking the tail) degrades all
  // three alike.
  const auto best3 = [](auto f) {
    double a = f(), b = f(), c = f();
    return std::max(a, std::max(b, c));
  };
  const double flat = best3([&] { return TailThroughput(prefill, tail, 0, false); });
  const double seg = best3([&] { return TailThroughput(prefill, tail, 16'384, false); });
  const double seg_scan =
      best3([&] { return TailThroughput(prefill, tail, 16'384, true); });
  bench::Table ta({"config", "tail recs/s", "vs flat", "vs seg"});
  ta.Row({"flat", bench::Fmt("%.0f", flat), "1.00x", "-"});
  ta.Row({"segmented", bench::Fmt("%.0f", seg), bench::Fmt("%.2fx", seg / flat), "1.00x"});
  ta.Row({"segmented+4 scans", bench::Fmt("%.0f", seg_scan),
          bench::Fmt("%.2fx", seg_scan / flat), bench::Fmt("%.2fx", seg_scan / seg)});
  ta.Print("E25a tail produce throughput (wall clock, P=1)");
  checks.Check(seg >= 0.6 * flat,
               "tail: segmented >= 0.6x flat (" + bench::Fmt("%.2f", seg / flat) + "x)");
  checks.Check(seg_scan >= 0.5 * seg,
               "tail: 4 concurrent scans keep >= 0.5x no-scan throughput (" +
                   bench::Fmt("%.2f", seg_scan / seg) + "x)");

  // --- E25b: query work sublinear in segment count ----------------------
  const std::size_t qn = quick ? 16'384 : 32'768;
  const std::size_t row_bytes = 35;  // ~"kNN" key + 32-byte payload
  bench::Table tb({"segments", "range blocks", "range rows", "time blocks",
                   "time rows", "wall us"});
  struct Probe {
    std::uint64_t range_blocks = 0, range_rows = 0;
    std::uint64_t time_blocks = 0, time_rows = 0;
    double wall_us = 0.0;
    std::size_t actual_segments = 0;
  };
  std::vector<Probe> probes;
  for (const std::size_t s : {8u, 32u, 128u}) {
    stream::SetSegmentBytesTarget(qn * row_bytes / s);
    Harness h;
    h.Produce(qn);
    stream::SetSegmentBytesTarget(0);
    Probe pr;
    pr.actual_segments = h.partition().sealed_segment_count();
    const auto mid = static_cast<stream::Offset>(qn / 2);
    const auto t0 = std::chrono::steady_clock::now();
    const auto rq = stream::QueryRange(h.partition(), mid, mid + 512, nullptr);
    const auto tq = stream::QueryTime(h.partition(), TimePoint::FromMillis(qn / 2),
                                      TimePoint::FromMillis(qn / 2 + 512), nullptr);
    pr.wall_us = SecondsSince(t0) * 1e6;
    pr.range_blocks = rq.stats.blocks_scanned;
    pr.range_rows = rq.stats.rows_returned;
    pr.time_blocks = tq.stats.blocks_scanned;
    pr.time_rows = tq.stats.rows_returned;
    tb.Row({bench::FmtInt(pr.actual_segments), bench::FmtInt(pr.range_blocks),
            bench::FmtInt(pr.range_rows), bench::FmtInt(pr.time_blocks),
            bench::FmtInt(pr.time_rows), bench::Fmt("%.1f", pr.wall_us)});
    checks.Check(pr.range_rows == 512, "query: range answer complete at S~" +
                                           std::to_string(s) + " (" +
                                           std::to_string(pr.range_rows) + "/512 rows)");
    checks.Check(pr.time_rows == 512, "query: time answer complete at S~" +
                                          std::to_string(s) + " (" +
                                          std::to_string(pr.time_rows) + "/512 rows)");
    probes.push_back(pr);
  }
  tb.Print("E25b fixed 512-row queries vs segment count (uncached)");
  checks.Check(probes.back().actual_segments >= 4 * probes.front().actual_segments,
               "query: segment counts actually swept (" +
                   std::to_string(probes.front().actual_segments) + " -> " +
                   std::to_string(probes.back().actual_segments) + ")");
  checks.Check(probes.back().range_blocks <=
                   (probes.front().range_blocks * 3) / 2,
               "query: range blocks_scanned ~constant in segment count (" +
                   std::to_string(probes.front().range_blocks) + " -> " +
                   std::to_string(probes.back().range_blocks) + ")");
  checks.Check(probes.back().time_blocks <= (probes.front().time_blocks * 3) / 2,
               "query: time blocks_scanned ~constant in segment count (" +
                   std::to_string(probes.front().time_blocks) + " -> " +
                   std::to_string(probes.back().time_blocks) + ")");
  checks.Check(probes.back().wall_us <= 8.0 * std::max(probes.front().wall_us, 50.0),
               "query: wall latency sublinear over 16x segments (" +
                   bench::Fmt("%.1f", probes.front().wall_us) + "us -> " +
                   bench::Fmt("%.1f", probes.back().wall_us) + "us)");

  // --- E25c: cache hit rate monotone in capacity ------------------------
  {
    stream::SetSegmentBytesTarget(qn * row_bytes / 128);
    Harness h;
    h.Produce(qn);
    stream::SetSegmentBytesTarget(0);
    const std::size_t queries = quick ? 1'000 : 2'000;
    bench::Table tc({"capacity(blocks)", "hit rate", "evictions"});
    std::vector<double> rates;
    for (const std::size_t cap : {16u, 64u, 256u, 512u}) {
      stream::BlockCache cache(cap, 0xCAFEULL);
      // Same seeded access sequence for every capacity: 80% of queries in
      // a hot 10% of the log, the rest uniform — the Zipf-ish skew a
      // session-replay workload shows.
      Rng rng(0xE25CULL);
      for (std::size_t q = 0; q < queries; ++q) {
        const bool hot = rng.NextBelow(10) < 8;
        const std::size_t span = hot ? qn / 10 : qn - 256;
        const auto lo = static_cast<stream::Offset>(rng.NextBelow(span));
        (void)stream::QueryRange(h.partition(), lo, lo + 128, &cache);
      }
      rates.push_back(cache.hit_rate());
      tc.Row({bench::FmtInt(cap), bench::Fmt("%.3f", rates.back()),
              bench::FmtInt(cache.evictions())});
    }
    tc.Print("E25c block-cache hit-rate sweep (same seeded workload)");
    bool monotone = true;
    for (std::size_t i = 1; i < rates.size(); ++i) {
      monotone = monotone && rates[i] >= rates[i - 1] - 1e-9;
    }
    checks.Check(monotone, "cache: hit rate monotone non-decreasing in capacity");
    checks.Check(rates.back() >= 0.7,
                 "cache: hit rate " + bench::Fmt("%.3f", rates.back()) +
                     " >= 0.7 once the working set fits");
    checks.Check(rates.back() > rates.front(),
                 "cache: capacity actually matters (" + bench::Fmt("%.3f", rates.front()) +
                     " -> " + bench::Fmt("%.3f", rates.back()) + ")");
  }

  // --- E25d: session replay + differential digests ----------------------
  scenarios::SessionReplayConfig rc;
  rc.tourists = quick ? 4 : 6;
  rc.events_per_tourist = quick ? 200 : 400;
  rc.segment_bytes = 0;
  const auto flat_rep = scenarios::RunSessionReplay(rc);
  rc.segment_bytes = 2'048;
  const auto seg_rep = scenarios::RunSessionReplay(rc);
  bench::Table td({"mode", "produced", "replayed", "verified", "seek rows", "segments",
                   "digest"});
  const auto fmt_digest = [](std::uint64_t d) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%08llx",
                  static_cast<unsigned long long>(d & 0xffffffffULL));
    return std::string(buf);
  };
  td.Row({"flat", bench::FmtInt(flat_rep.produced), bench::FmtInt(flat_rep.replayed_rows),
          bench::FmtInt(flat_rep.sessions_verified), bench::FmtInt(flat_rep.seek_replays),
          bench::FmtInt(flat_rep.sealed_segments), fmt_digest(flat_rep.digest)});
  td.Row({"segmented", bench::FmtInt(seg_rep.produced),
          bench::FmtInt(seg_rep.replayed_rows), bench::FmtInt(seg_rep.sessions_verified),
          bench::FmtInt(seg_rep.seek_replays), bench::FmtInt(seg_rep.sealed_segments),
          fmt_digest(seg_rep.digest)});
  td.Print("E25d tourism session replay, flat vs segmented");
  checks.Check(flat_rep.AllVerified(rc) && seg_rep.AllVerified(rc),
               "replay: every session verified in both modes");
  checks.Check(seg_rep.sealed_segments > 0, "replay: segmented run actually sealed (" +
                                                std::to_string(seg_rep.sealed_segments) +
                                                " segments)");
  checks.Check(flat_rep.digest == seg_rep.digest,
               "replay: session digest segmentation-invariant");

  const std::vector<std::uint64_t> seeds =
      quick ? std::vector<std::uint64_t>{5} : std::vector<std::uint64_t>{5, 17};
  bench::Table ts({"scenario", "seed", "workers", "replicas", "equal"});
  for (const char* factor : {"1", "3"}) {
    if (quick && std::strcmp(factor, "3") == 0) continue;
    setenv("ARBD_REPLICAS", factor, 1);
    for (const std::size_t wks : {1u, 4u}) {
      exec::ExecConfig ec;
      ec.workers = wks;
      for (const std::uint64_t seed : seeds) {
        for (const bool tourism : {true, false}) {
          stream::SetSegmentBytesTarget(0);
          const std::uint64_t off = tourism ? scenarios::TourismDigest(seed, ec)
                                            : scenarios::OverloadDigest(seed, ec);
          stream::SetSegmentBytesTarget(1'024);
          const std::uint64_t on = tourism ? scenarios::TourismDigest(seed, ec)
                                           : scenarios::OverloadDigest(seed, ec);
          stream::SetSegmentBytesTarget(0);
          ts.Row({tourism ? "tourism" : "overload", bench::FmtInt(seed),
                  bench::FmtInt(wks), factor, off == on ? "yes" : "NO"});
          checks.Check(off == on, std::string(tourism ? "tourism" : "overload") +
                                      " digest segmentation-invariant: seed=" +
                                      std::to_string(seed) + " workers=" +
                                      std::to_string(wks) + " replicas=" + factor);
        }
      }
    }
  }
  unsetenv("ARBD_REPLICAS");
  ts.Print("E25d scenario digests, segmentation off vs on");

  std::printf("\nE25 verdict: %s (%d failing check%s)\n",
              checks.failures == 0 ? "PASS" : "FAIL", checks.failures,
              checks.failures == 1 ? "" : "s");
  return checks.failures;
}

void BM_SegmentedTailProduce(benchmark::State& state) {
  const auto seg_bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    stream::SetSegmentBytesTarget(seg_bytes);
    Harness h;
    h.Produce(16'384);
    stream::SetSegmentBytesTarget(0);
    benchmark::DoNotOptimize(h.broker.total_produced());
  }
  state.SetItemsProcessed(state.iterations() * 16'384);
}
BENCHMARK(BM_SegmentedTailProduce)->Arg(0)->Arg(16'384)->Arg(4'096);

void BM_QueryRangeCached(benchmark::State& state) {
  stream::SetSegmentBytesTarget(4'096);
  Harness h;
  h.Produce(32'768);
  stream::SetSegmentBytesTarget(0);
  stream::BlockCache cache(static_cast<std::size_t>(state.range(0)));
  Rng rng(7);
  for (auto _ : state) {
    const auto lo = static_cast<stream::Offset>(rng.NextBelow(32'768 - 256));
    auto res = stream::QueryRange(h.partition(), lo, lo + 256, &cache);
    benchmark::DoNotOptimize(res.rows.size());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_QueryRangeCached)->Arg(64)->Arg(512);

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const int failures = RunExperiment(quick);
  if (quick) return failures;  // CI smoke: tables + checks only
  if (failures != 0) return failures;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
