// E14 (ablation) — §4.2 interpretation layer cost: latency and annotation
// yield of turning raw analytics outputs into semantically-typed,
// world-anchored AR content, vs rule-set size and input volume.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/table.h"
#include "common/rng.h"
#include "core/interpretation.h"

namespace {

using namespace arbd;
using namespace arbd::core;
using Clock = std::chrono::steady_clock;

InterpretationEngine MakeEngine(std::size_t rules) {
  InterpretationEngine engine([](const std::string& key) {
    EntityContext ctx;
    // Cheap synthetic resolver: entities keyed "poi-*" are located.
    if (key.rfind("poi-", 0) == 0) {
      ctx.has_position = true;
      ctx.pos = {22.5, 114.5};
    }
    return ctx;
  });
  for (std::size_t i = 0; i < rules; ++i) {
    InterpretationRule r;
    r.name = "rule-" + std::to_string(i);
    r.attribute = "attr-" + std::to_string(i);
    r.high = 100.0;
    r.type = i % 4 == 0 ? ar::content::SemanticType::kAlert
                        : ar::content::SemanticType::kPlaceInfo;
    engine.AddRule(r);
  }
  return engine;
}

std::vector<stream::WindowResult> MakeInputs(std::size_t n, std::size_t attrs,
                                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<stream::WindowResult> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    stream::WindowResult r;
    r.key = rng.Bernoulli(0.7) ? "poi-" + std::to_string(rng.NextBelow(100))
                               : "ghost-" + std::to_string(rng.NextBelow(100));
    r.attribute = "attr-" + std::to_string(rng.NextBelow(attrs));
    r.value = rng.Uniform(0.0, 200.0);  // ~half above the 100 threshold
    out.push_back(std::move(r));
  }
  return out;
}

void CostTable() {
  bench::Table table({"rules", "inputs", "interpret_ms", "ns_per_input", "emitted",
                      "suppressed_in_range", "no_anchor"});
  for (std::size_t rules : {4u, 16u, 64u, 256u}) {
    auto engine = MakeEngine(rules);
    const auto inputs = MakeInputs(100'000, rules, rules);
    const auto t0 = Clock::now();
    for (const auto& r : inputs) {
      benchmark::DoNotOptimize(engine.Interpret(r, TimePoint{}));
    }
    const auto t1 = Clock::now();
    const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    const auto& s = engine.stats();
    table.Row({bench::FmtInt(rules), bench::FmtInt(inputs.size()),
               bench::Fmt("%.1f", ms), bench::Fmt("%.0f", ms * 1e6 / static_cast<double>(inputs.size())),
               bench::FmtInt(s.emitted), bench::FmtInt(s.suppressed_in_range),
               bench::FmtInt(s.suppressed_no_anchor)});
  }
  table.Print("E14: interpretation-layer cost vs rule-set size (§4.2)");
  std::printf("Expected shape: per-input cost grows with the rule set (linear scan) but "
              "stays far below a frame budget; yield splits between emitted overlays, "
              "in-range suppressions, and un-anchorable stats.\n");
}

void BM_InterpretHit(benchmark::State& state) {
  auto engine = MakeEngine(16);
  stream::WindowResult r;
  r.key = "poi-1";
  r.attribute = "attr-3";
  r.value = 150.0;
  for (auto _ : state) benchmark::DoNotOptimize(engine.Interpret(r, TimePoint{}));
}
BENCHMARK(BM_InterpretHit);

void BM_InterpretMiss(benchmark::State& state) {
  auto engine = MakeEngine(16);
  stream::WindowResult r;
  r.key = "poi-1";
  r.attribute = "unknown";
  r.value = 150.0;
  for (auto _ : state) benchmark::DoNotOptimize(engine.Interpret(r, TimePoint{}));
}
BENCHMARK(BM_InterpretMiss);

}  // namespace

int main(int argc, char** argv) {
  CostTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
