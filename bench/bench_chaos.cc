// E18 — §4.1 robustness: chaos soak of the durability stack. Sweeps a
// seeded fault-rate knob across the retail and emergency event streams
// (crashes, torn checkpoints, corrupt snapshots, fetch errors, stalls
// injected at every layer) and across the offload path (task failures,
// loss bursts, outages, latency spikes). The contract under test: the
// committed window results never diverge from a fault-free run (loss = 0
// at every rate) and goodput degrades gracefully — monotonically, without
// wedging — as the fault rate climbs.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench/table.h"
#include "fault/injector.h"
#include "offload/scheduler.h"
#include "scenarios/chaos.h"

namespace {

using namespace arbd;

std::string SpecForRate(double rate) {
  if (rate <= 0.0) return "";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "crash@p=%g;ckptfail@p=%g;snapcorrupt@p=%g;fetcherr@p=%g;"
                "stall@p=%g,ms=25",
                rate, rate, std::min(0.5, rate * 10.0), rate, rate);
  return buf;
}

void RunSoakSweep(scenarios::ChaosWorkload workload, const char* title) {
  scenarios::ChaosConfig cfg;
  cfg.workload = workload;
  cfg.records = 6000;
  cfg.checkpoint_every = 16;
  cfg.batch = 32;
  cfg.seed = 17;

  auto baseline = scenarios::RunChaosSoak(cfg);
  if (!baseline.ok()) {
    std::printf("baseline failed: %s\n", baseline.status().ToString().c_str());
    return;
  }

  bench::Table table({"fault_rate", "injected", "crashes", "ckpt_fails",
                      "replayed", "stall_ms", "goodput", "committed_loss",
                      "wedged"});
  for (double rate : {0.0, 1e-4, 1e-3, 5e-3, 2e-2}) {
    cfg.fault_spec = SpecForRate(rate);
    auto report = scenarios::RunChaosSoak(cfg);
    if (!report.ok()) {
      std::printf("soak failed at rate %g: %s\n", rate,
                  report.status().ToString().c_str());
      return;
    }
    // Committed loss: baseline windows missing from, or differing in, the
    // chaotic run's committed results. Must be zero at every rate.
    std::size_t loss = 0;
    for (const auto& [window, agg] : baseline->results) {
      auto it = report->results.find(window);
      if (it == report->results.end() || it->second != agg) ++loss;
    }
    table.Row({bench::Fmt("%g", rate), bench::FmtInt(report->fault_events),
               bench::FmtInt(report->stats.crashes),
               bench::FmtInt(report->stats.checkpoint_failures),
               bench::FmtInt(report->stats.records_replayed),
               bench::FmtInt(static_cast<std::size_t>(report->stats.stalled.millis())),
               bench::Fmt("%.4f", report->goodput), bench::FmtInt(loss),
               report->wedged ? "YES" : "no"});
  }
  table.Print(title);
}

void RunProducerSweep() {
  bench::Table table({"fault_rate", "attempts", "retries", "duplicates", "lost"});
  for (double rate : {0.0, 0.01, 0.05, 0.2}) {
    std::string spec;
    if (rate > 0.0) {
      char buf[80];
      std::snprintf(buf, sizeof(buf), "torn@p=%g;apperr@p=%g", rate, rate);
      spec = buf;
    }
    auto report = scenarios::RunProducerChaos(4000, spec, 23);
    if (!report.ok()) {
      std::printf("producer chaos failed: %s\n", report.status().ToString().c_str());
      return;
    }
    table.Row({bench::Fmt("%g", rate), bench::FmtInt(report->attempts),
               bench::FmtInt(report->retries), bench::FmtInt(report->duplicates),
               bench::FmtInt(report->lost)});
  }
  table.Print("E18b: producer path under torn appends / append errors (loss must be 0)");
}

void RunOffloadSweep() {
  bench::Table table({"taskfail_rate", "retries", "fallbacks", "offload_frac",
                      "mean_ms", "p95_ms"});
  for (double rate : {0.0, 0.01, 0.05, 0.2}) {
    std::string spec;
    if (rate > 0.0) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "taskfail@p=%g;netloss@p=%g,x=2;outage@p=%g,ms=40;spike@p=%g,x=4",
                    rate, rate, rate / 4.0, rate);
      spec = buf;
    }
    auto plan = fault::FaultPlan::Parse(spec);
    if (!plan.ok()) return;
    fault::FaultInjector injector(*plan, 31);

    // Low-RTT / heavy-load regime from E5a where adaptive offloads nearly
    // every frame — the regime where cloud-side task failures actually bite.
    offload::NetworkConfig net_cfg;
    net_cfg.rtt = Duration::Millis(10);
    net_cfg.rtt_jitter = Duration::Millis(2);
    offload::NetworkModel network(net_cfg, 19);
    network.set_fault_injector(&injector);
    // Cloud-only pins every frame to the faulty link, so the retry/backoff/
    // local-fallback machinery (not adaptive's retreat-to-local) is what the
    // sweep measures.
    offload::OffloadScheduler scheduler(offload::OffloadPolicy::kCloudOnly,
                                        offload::DeviceModel{}, offload::CloudModel{},
                                        network);
    scheduler.set_fault_injector(&injector);

    const auto workload = offload::MakeArFrameWorkload(1.0);
    const auto stats = offload::SimulateFrames(scheduler, workload, 2000);
    table.Row({bench::Fmt("%g", rate), bench::FmtInt(scheduler.retry_count()),
               bench::FmtInt(scheduler.fallback_count()),
               bench::Fmt("%.3f", stats.offload_fraction),
               bench::Fmt("%.1f", stats.mean_latency_ms),
               bench::Fmt("%.1f", stats.p95_latency_ms)});
  }
  table.Print("E18c: offload path under task failures + link chaos (retry/backoff/fallback)");
}

void PrintExperimentTables() {
  RunSoakSweep(scenarios::ChaosWorkload::kRetail,
               "E18a: chaos soak, retail purchase stream (§3.1 workload)");
  RunSoakSweep(scenarios::ChaosWorkload::kEmergency,
               "E18a: chaos soak, emergency IoT stream (§3.4 workload)");
  RunProducerSweep();
  RunOffloadSweep();
  std::printf(
      "Expected shape: committed_loss and lost are 0 in every row — injected "
      "faults cost replay, retries, and latency (goodput falls, p95 rises, "
      "monotonically in the fault rate) but never lose committed records or "
      "wedge the pipeline. Reproduce any row with its printed fault_rate and "
      "seed (17/23/31); see docs/fault_injection.md.\n");
}

// Calibrated cost of the injection points themselves: the chaos hooks sit
// on hot paths (per record, per transfer), so firing must stay cheap.
void BM_InjectorFire(benchmark::State& state) {
  auto plan = fault::FaultPlan::Parse("crash@p=0.001;netloss@p=0.01");
  fault::FaultInjector injector(*plan, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        injector.Fire(fault::FaultKind::kCrash, fault::InjectionPoint::kJobPumpRecord));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InjectorFire);

void BM_ChaosSoak(benchmark::State& state) {
  scenarios::ChaosConfig cfg;
  cfg.records = static_cast<std::size_t>(state.range(0));
  cfg.fault_spec = SpecForRate(5e-3);
  cfg.seed = 17;
  for (auto _ : state) {
    auto report = scenarios::RunChaosSoak(cfg);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChaosSoak)->Arg(1'000)->Arg(10'000);

}  // namespace

int main(int argc, char** argv) {
  PrintExperimentTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
