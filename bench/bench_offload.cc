// E5 — §4.1/CloudRidAR: frame-deadline hit rate and energy per frame for
// local-only, cloud-only, and adaptive offloading, swept over network RTT
// and analytics load. The crossover (local wins at high RTT / light load,
// cloud wins at low RTT / heavy load, adaptive tracks the winner) is the
// paper-shaped result.
#include <benchmark/benchmark.h>

#include "bench/table.h"
#include "offload/scheduler.h"

namespace {

using namespace arbd;
using namespace arbd::offload;

FrameStats Run(OffloadPolicy policy, std::int64_t rtt_ms, double load,
               std::uint64_t seed) {
  NetworkConfig net_cfg;
  net_cfg.rtt = Duration::Millis(rtt_ms);
  net_cfg.rtt_jitter = Duration::Millis(rtt_ms / 8);
  NetworkModel net(net_cfg, seed);
  OffloadScheduler sched(policy, DeviceModel{}, CloudModel{}, net);
  return SimulateFrames(sched, MakeArFrameWorkload(load), 500);
}

void RttSweep() {
  bench::Table table({"rtt_ms", "local_hit", "cloud_hit", "adapt_hit", "local_mJ",
                      "cloud_mJ", "adapt_mJ", "adapt_offload%"});
  const double load = 3.0;  // heavy analytics per frame
  for (std::int64_t rtt : {5, 10, 20, 40, 80, 160, 320}) {
    const auto local = Run(OffloadPolicy::kLocalOnly, rtt, load, 1);
    const auto cloud = Run(OffloadPolicy::kCloudOnly, rtt, load, 1);
    const auto adapt = Run(OffloadPolicy::kAdaptive, rtt, load, 1);
    table.Row({bench::FmtInt(static_cast<std::size_t>(rtt)),
               bench::Fmt("%.2f", local.hit_rate), bench::Fmt("%.2f", cloud.hit_rate),
               bench::Fmt("%.2f", adapt.hit_rate),
               bench::Fmt("%.1f", local.mean_energy_mj),
               bench::Fmt("%.1f", cloud.mean_energy_mj),
               bench::Fmt("%.1f", adapt.mean_energy_mj),
               bench::Fmt("%.0f%%", adapt.offload_fraction * 100.0)});
  }
  table.Print("E5a: deadline hit-rate & energy vs RTT (analytics load 3x, 30 fps)");
  std::printf("Expected shape: cloud/adaptive win at low RTT; local-only never hits the "
              "deadline under heavy load; adaptive degrades gracefully toward local "
              "behaviour as RTT grows.\n");
}

void LoadSweep() {
  bench::Table table({"analytics_load", "local_hit", "cloud_hit", "adapt_hit",
                      "local_p95_ms", "adapt_p95_ms", "adapt_offload%"});
  const std::int64_t rtt = 20;
  for (double load : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    const auto local = Run(OffloadPolicy::kLocalOnly, rtt, load, 2);
    const auto cloud = Run(OffloadPolicy::kCloudOnly, rtt, load, 2);
    const auto adapt = Run(OffloadPolicy::kAdaptive, rtt, load, 2);
    table.Row({bench::Fmt("%.2f", load), bench::Fmt("%.2f", local.hit_rate),
               bench::Fmt("%.2f", cloud.hit_rate), bench::Fmt("%.2f", adapt.hit_rate),
               bench::Fmt("%.1f", local.p95_latency_ms),
               bench::Fmt("%.1f", adapt.p95_latency_ms),
               bench::Fmt("%.0f%%", adapt.offload_fraction * 100.0)});
  }
  table.Print("E5b: deadline hit-rate vs per-frame analytics load (RTT 20 ms)");
  std::printf("Expected shape: the local→cloud crossover moves left as load grows; "
              "adaptive tracks the better placement at every point.\n");
}

void PipelineAblation() {
  // Serial vs pipelined execution of the same adaptive schedule: overlap
  // of network transfers with local compute (the CloudRidAR optimization).
  bench::Table table({"rtt_ms", "serial_hit", "pipelined_hit", "serial_p95_ms",
                      "pipelined_p95_ms"});
  const double load = 3.0;
  for (std::int64_t rtt : {5, 10, 20, 40, 80}) {
    NetworkConfig net_cfg;
    net_cfg.rtt = Duration::Millis(rtt);
    net_cfg.rtt_jitter = Duration::Millis(rtt / 8);
    NetworkModel net_s(net_cfg, 7);
    OffloadScheduler serial(OffloadPolicy::kAdaptive, DeviceModel{}, CloudModel{}, net_s);
    const auto s = SimulateFrames(serial, MakeArFrameWorkload(load), 500);
    NetworkModel net_p(net_cfg, 7);
    OffloadScheduler pipelined(OffloadPolicy::kAdaptive, DeviceModel{}, CloudModel{}, net_p);
    const auto p = SimulatePipelinedFrames(pipelined, MakeArFrameWorkload(load), 500);
    table.Row({bench::FmtInt(static_cast<std::size_t>(rtt)), bench::Fmt("%.2f", s.hit_rate),
               bench::Fmt("%.2f", p.hit_rate), bench::Fmt("%.1f", s.p95_latency_ms),
               bench::Fmt("%.1f", p.p95_latency_ms)});
  }
  table.Print("E5c (ablation): serial vs pipelined offload execution (load 3x)");
  std::printf("Expected shape: overlapping transfers with local compute extends the RTT "
              "range over which the frame deadline survives.\n");
}

void BM_SchedulerDecision(benchmark::State& state) {
  NetworkModel net(NetworkConfig{}, 3);
  OffloadScheduler sched(OffloadPolicy::kAdaptive, DeviceModel{}, CloudModel{}, net);
  const ComputeTask task{"detection", 45.0, 60'000, 2'000, true};
  for (auto _ : state) benchmark::DoNotOptimize(sched.Run(task));
}
BENCHMARK(BM_SchedulerDecision);

}  // namespace

int main(int argc, char** argv) {
  RttSweep();
  LoadSweep();
  PipelineAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
