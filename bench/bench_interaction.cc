// E15 — §2.2/§3.1 gaze interaction: (a) dwell-to-select reliability vs
// hold time under gaze noise, and (b) how faithfully measured gaze dwell
// recovers the user's true interest distribution — the signal quality the
// "eye tracking for shopping behaviour analysis" pipeline depends on.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "analytics/stats.h"
#include "ar/interaction.h"
#include "bench/table.h"

namespace {

using namespace arbd;
using namespace arbd::ar;

std::vector<content::Annotation> MakeAnnotations(std::size_t n, Rng& rng) {
  std::vector<content::Annotation> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i].id = i + 1;
    out[i].title = "item-" + std::to_string(i);
    out[i].priority = rng.NextDouble();  // "true interest"
  }
  return out;
}

std::vector<LabelBox> GridLabels(const std::vector<content::Annotation>& annotations) {
  std::vector<LabelBox> labels;
  for (std::size_t i = 0; i < annotations.size(); ++i) {
    LabelBox box;
    box.x = 60.0 + 320.0 * static_cast<double>(i % 5);
    box.y = 80.0 + 180.0 * static_cast<double>(i / 5);
    box.width = 180.0;
    box.height = 56.0;
    box.annotation = &annotations[i];
    labels.push_back(box);
  }
  return labels;
}

void DwellReliability() {
  // HCI-style trials: the user intends to select one target label; a trial
  // succeeds when the dwell selector fires on it (within 10 s), fails when
  // it fires on anything else first (a "Midas touch" error) or times out.
  bench::Table table({"hold_ms", "gaze_noise_px", "success%", "midas_error%",
                      "timeout%", "median_select_s"});
  for (std::int64_t hold_ms : {300, 600, 1000}) {
    for (double noise : {8.0, 20.0, 40.0}) {
      const std::size_t kTrials = 60;
      std::size_t success = 0, midas = 0, timeouts = 0;
      std::vector<double> select_times;

      for (std::size_t trial = 0; trial < kTrials; ++trial) {
        Rng setup_rng(trial);
        auto annotations = MakeAnnotations(10, setup_rng);
        const std::size_t target = trial % annotations.size();
        // Deliberate selection: the user's gaze is strongly drawn to the
        // intended label but still wanders occasionally.
        for (auto& a : annotations) a.priority = 0.01;
        annotations[target].priority = 3.0;
        const auto labels = GridLabels(annotations);

        GazeConfig gcfg;
        gcfg.noise_px = noise;
        gcfg.saccade_rate = 0.08;
        gcfg.blink_rate = 0.03;
        GazeModel gaze(gcfg, 100 + trial);
        DwellSelector selector(Duration::Millis(hold_ms));

        TimePoint t;
        bool decided = false;
        while (t < TimePoint::FromSeconds(10.0)) {
          t += gcfg.period;
          const auto g = gaze.Sample(t, labels, {});
          const auto hit = selector.Update(g, labels);
          if (hit) {
            decided = true;
            if (hit->annotation_id == annotations[target].id) {
              ++success;
              select_times.push_back(t.seconds());
            } else {
              ++midas;
            }
            break;
          }
        }
        if (!decided) ++timeouts;
      }

      std::sort(select_times.begin(), select_times.end());
      table.Row({bench::FmtInt(static_cast<std::size_t>(hold_ms)),
                 bench::Fmt("%.0f", noise),
                 bench::Fmt("%.0f%%", 100.0 * static_cast<double>(success) / kTrials),
                 bench::Fmt("%.0f%%", 100.0 * static_cast<double>(midas) / kTrials),
                 bench::Fmt("%.0f%%", 100.0 * static_cast<double>(timeouts) / kTrials),
                 select_times.empty()
                     ? "-"
                     : bench::Fmt("%.2f", select_times[select_times.size() / 2])});
    }
  }
  table.Print("E15a: dwell-to-select trials vs hold time and gaze noise (10 s budget)");
  std::printf("Expected shape: short holds are fast but fire on stray fixations (Midas "
              "touch) as noise grows; longer holds suppress errors at the cost of "
              "latency and timeouts — the §2.2 hands-free input design space.\n");
}

void AttentionFidelity() {
  bench::Table table({"saccade_rate", "noise_px", "interest_dwell_corr",
                      "top_item_share"});
  for (double saccade : {0.05, 0.15, 0.4}) {
    for (double noise : {8.0, 30.0}) {
      Rng setup_rng(13);
      auto annotations = MakeAnnotations(15, setup_rng);
      const auto labels = GridLabels(annotations);

      GazeConfig gcfg;
      gcfg.saccade_rate = saccade;
      gcfg.noise_px = noise;
      GazeModel gaze(gcfg, 17);
      AttentionTracker tracker;

      TimePoint t;
      while (t < TimePoint::FromSeconds(300.0)) {
        t += gcfg.period;
        tracker.Observe(gaze.Sample(t, labels, {}), labels, gcfg.period);
      }

      // Correlate true interest (priority) with measured dwell share.
      analytics::Correlator corr;
      double total_dwell = 0.0, top_dwell = 0.0;
      double top_priority = -1.0;
      for (const auto& a : annotations) {
        const auto it = tracker.dwell().find(a.title);
        const double d = it == tracker.dwell().end() ? 0.0 : it->second.seconds();
        corr.Add(a.priority, d);
        total_dwell += d;
        if (a.priority > top_priority) {
          top_priority = a.priority;
          top_dwell = d;
        }
      }
      table.Row({bench::Fmt("%.2f", saccade), bench::Fmt("%.0f", noise),
                 bench::Fmt("%.3f", corr.Correlation()),
                 bench::Fmt("%.0f%%", total_dwell > 0 ? 100.0 * top_dwell / total_dwell
                                                      : 0.0)});
    }
  }
  table.Print("E15b: gaze-dwell fidelity to true interest (15 items, 5 min)");
  std::printf("Expected shape: dwell share correlates strongly with interest across "
              "regimes — gaze is a usable engagement signal for the §3.1 retail "
              "analytics loop.\n");
}

void BM_GazeSample(benchmark::State& state) {
  Rng rng(1);
  auto annotations = MakeAnnotations(20, rng);
  const auto labels = GridLabels(annotations);
  GazeModel gaze(GazeConfig{}, 3);
  TimePoint t;
  for (auto _ : state) {
    t += Duration::Millis(33);
    benchmark::DoNotOptimize(gaze.Sample(t, labels, {}));
  }
}
BENCHMARK(BM_GazeSample);

}  // namespace

int main(int argc, char** argv) {
  DwellReliability();
  AttentionFidelity();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
