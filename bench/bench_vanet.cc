// E10 — §3.4 VANET threat assessment: warning recall and lead time vs
// beacon rate and vehicle density, plus the share of warnings that
// required "seeing through" buildings (the paper's blind-spot claim).
#include <benchmark/benchmark.h>

#include "bench/table.h"
#include "scenarios/transport.h"

namespace {

using namespace arbd;
using namespace arbd::scenarios;

const geo::CityModel& City() {
  static const geo::CityModel city = [] {
    geo::CityConfig cfg;
    cfg.blocks_x = 6;
    cfg.blocks_y = 6;
    return geo::CityModel::Generate(cfg, 33);
  }();
  return city;
}

void BeaconRateSweep() {
  bench::Table table({"beacon_ms", "encounters", "recall", "lead_time_s", "warnings",
                      "occluded%"});
  for (std::int64_t period_ms : {100, 200, 500, 1000, 2000}) {
    VanetConfig cfg;
    cfg.vehicles = 60;
    cfg.beacon_period = Duration::Millis(period_ms);
    cfg.run_length = Duration::Seconds(120);
    const auto m = RunVanetSimulation(cfg, City(), 41);
    table.Row({bench::FmtInt(static_cast<std::size_t>(period_ms)),
               bench::FmtInt(m.encounters), bench::Fmt("%.3f", m.recall),
               bench::Fmt("%.1f", m.mean_lead_time_s), bench::FmtInt(m.warnings_issued),
               bench::Fmt("%.0f%%", m.warnings_issued
                                        ? 100.0 * static_cast<double>(m.occluded_warnings) /
                                              static_cast<double>(m.warnings_issued)
                                        : 0.0)});
  }
  table.Print("E10a: collision-warning quality vs beacon rate (60 vehicles)");
  std::printf("Expected shape: recall and lead time degrade as beacons get sparser — "
              "the 'velocity' requirement of §4.1 made concrete.\n");
}

void DensitySweep() {
  bench::Table table({"vehicles", "encounters", "recall", "lead_time_s",
                      "warnings/vehicle", "occluded%"});
  for (std::size_t vehicles : {10u, 30u, 60u, 120u, 240u}) {
    VanetConfig cfg;
    cfg.vehicles = vehicles;
    cfg.run_length = Duration::Seconds(60);
    const auto m = RunVanetSimulation(cfg, City(), 43);
    table.Row({bench::FmtInt(vehicles), bench::FmtInt(m.encounters),
               bench::Fmt("%.3f", m.recall), bench::Fmt("%.1f", m.mean_lead_time_s),
               bench::Fmt("%.1f", static_cast<double>(m.warnings_issued) /
                                      static_cast<double>(vehicles)),
               bench::Fmt("%.0f%%", m.warnings_issued
                                        ? 100.0 * static_cast<double>(m.occluded_warnings) /
                                              static_cast<double>(m.warnings_issued)
                                        : 0.0)});
  }
  table.Print("E10b: collision-warning quality vs vehicle density (200 ms beacons)");
  std::printf("Expected shape: encounters grow super-linearly with density while recall "
              "stays high; a stable fraction of warnings concern occluded vehicles — "
              "the AR 'see-through blind spots' payoff.\n");
}

void BM_ThreatAssess(benchmark::State& state) {
  ThreatAssessor assessor(ThreatConfig{});
  const TimePoint now = TimePoint::FromSeconds(1.0);
  Rng rng(3);
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    Beacon b;
    b.vehicle_id = "v" + std::to_string(i);
    b.sent_at = now;
    b.east = rng.Uniform(-200.0, 200.0);
    b.north = rng.Uniform(-200.0, 200.0);
    b.vel_east = rng.Uniform(-15.0, 15.0);
    b.vel_north = rng.Uniform(-15.0, 15.0);
    assessor.OnBeacon(b, now);
  }
  Beacon self;
  self.vehicle_id = "self";
  for (auto _ : state) benchmark::DoNotOptimize(assessor.Assess(self, now));
}
BENCHMARK(BM_ThreatAssess)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
  BeaconRateSweep();
  DensitySweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
