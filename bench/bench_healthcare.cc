// E9 — §3.3 real-time health alerting: detection recall, precision, and
// latency over patient-fleet size and sampling rate, plus the
// personalized-threshold ablation (EHR-driven thresholds vs one global
// number — the "decisions based on data itself" claim).
#include <benchmark/benchmark.h>

#include "bench/table.h"
#include "scenarios/healthcare.h"

namespace {

using namespace arbd;
using namespace arbd::scenarios;

void FleetSweep() {
  bench::Table table({"patients", "samples", "episodes", "recall", "precision",
                      "latency_s"});
  for (std::size_t patients : {10u, 50u, 200u, 1000u}) {
    MonitorConfig cfg;
    cfg.patients = patients;
    cfg.run_length = Duration::Seconds(600);
    cfg.anomaly_rate_per_hour = 4.0;
    const auto m = RunPatientMonitor(cfg, 11 + patients);
    table.Row({bench::FmtInt(patients), bench::FmtInt(m.samples_processed),
               bench::FmtInt(m.episodes), bench::Fmt("%.3f", m.recall),
               bench::Fmt("%.3f", m.precision),
               bench::Fmt("%.1f", m.mean_detection_latency_s)});
  }
  table.Print("E9a: vitals alerting vs fleet size (1 Hz sampling, 10 s windows)");
  std::printf("Expected shape: recall and latency are flat in fleet size — the keyed "
              "windowed pipeline scales linearly in patients.\n");
}

void RateSweep() {
  bench::Table table({"sample_period_ms", "window_s", "recall", "precision", "latency_s"});
  for (std::int64_t period_ms : {250, 500, 1000, 2000, 5000}) {
    MonitorConfig cfg;
    cfg.patients = 50;
    cfg.sample_period = Duration::Millis(period_ms);
    cfg.run_length = Duration::Seconds(600);
    cfg.anomaly_rate_per_hour = 4.0;
    const auto m = RunPatientMonitor(cfg, 23);
    table.Row({bench::FmtInt(static_cast<std::size_t>(period_ms)),
               bench::Fmt("%.0f", cfg.window.seconds()), bench::Fmt("%.3f", m.recall),
               bench::Fmt("%.3f", m.precision),
               bench::Fmt("%.1f", m.mean_detection_latency_s)});
  }
  table.Print("E9b: alert quality vs sampling rate (50 patients)");
  std::printf("Expected shape: faster sampling shortens detection latency; too-sparse "
              "sampling starves the window and hurts recall.\n");
}

void PersonalizationAblation() {
  bench::Table table({"thresholding", "recall", "precision", "false_alerts"});
  MonitorConfig base;
  base.patients = 100;
  base.run_length = Duration::Seconds(600);
  base.anomaly_rate_per_hour = 4.0;
  base.alert_hr_threshold = 100.0;  // tight global threshold
  const auto global = RunPatientMonitor(base, 31);

  MonitorConfig pers = base;
  pers.personalized = true;
  const auto personalized = RunPatientMonitor(pers, 31);

  table.Row({"global (HR > 100)", bench::Fmt("%.3f", global.recall),
             bench::Fmt("%.3f", global.precision), bench::FmtInt(global.false_alerts)});
  table.Row({"personalized (EHR resting + 45)", bench::Fmt("%.3f", personalized.recall),
             bench::Fmt("%.3f", personalized.precision),
             bench::FmtInt(personalized.false_alerts)});

  MonitorConfig z = base;
  z.zscore = true;
  const auto zscore = RunPatientMonitor(z, 31);
  table.Row({"z-score (self-calibrating)", bench::Fmt("%.3f", zscore.recall),
             bench::Fmt("%.3f", zscore.precision), bench::FmtInt(zscore.false_alerts)});
  table.Print("E9c: detection policy ablation — global vs EHR-personalized vs z-score");
  std::printf("Expected shape: personalization keeps recall while slashing false alerts "
              "— the big-data-side payoff of §3.3.\n");
}

void BM_MonitorStep(benchmark::State& state) {
  for (auto _ : state) {
    MonitorConfig cfg;
    cfg.patients = static_cast<std::size_t>(state.range(0));
    cfg.run_length = Duration::Seconds(60);
    benchmark::DoNotOptimize(RunPatientMonitor(cfg, 1));
  }
}
BENCHMARK(BM_MonitorStep)->Arg(10)->Arg(100);

}  // namespace

int main(int argc, char** argv) {
  FleetSweep();
  RateSweep();
  PersonalizationAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
