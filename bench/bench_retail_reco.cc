// E6 — §3.1: recommendation quality vs interaction volume. Item-item CF
// (the "big data" recommender) against global popularity (what an AR app
// without customer data can do). The crossover past the cold-start region
// is the paper-shaped result.
#include <benchmark/benchmark.h>

#include "analytics/recommend.h"
#include "bench/table.h"
#include "scenarios/retail.h"

namespace {

using namespace arbd;

void SweepTable() {
  analytics::RetailWorkloadConfig wl;
  wl.users = 200;
  wl.items = 500;
  wl.clusters = 8;
  const std::vector<std::size_t> volumes = {100, 300, 1'000, 3'000, 10'000,
                                            30'000, 100'000};
  const auto sweep = scenarios::RunRecommendationSweep(wl, volumes, 10, 42);

  bench::Table table({"interactions", "cf_prec@10", "cf_hit", "pop_prec@10", "pop_hit",
                      "winner"});
  for (const auto& p : sweep) {
    table.Row({bench::FmtInt(p.events), bench::Fmt("%.4f", p.cf_precision),
               bench::Fmt("%.3f", p.cf_hit_rate), bench::Fmt("%.4f", p.pop_precision),
               bench::Fmt("%.3f", p.pop_hit_rate),
               p.cf_precision > p.pop_precision ? "item-cf" : "popularity"});
  }
  table.Print("E6: recommendation precision vs interaction volume (§3.1)");
  std::printf("Expected shape: popularity wins in the cold-start region; item-item CF "
              "overtakes once co-occurrence statistics accumulate (~10^3 events) — "
              "'AR is less attractive without adequate customer data'.\n");
}

void BM_CfObserve(benchmark::State& state) {
  Rng rng(7);
  analytics::RetailWorkloadConfig wl;
  wl.interactions = 10'000;
  const auto workload = analytics::GenerateRetailWorkload(wl, rng);
  for (auto _ : state) {
    analytics::ItemCfRecommender rec;
    for (const auto& in : workload) rec.Observe(in);
    benchmark::DoNotOptimize(rec.item_count());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(workload.size()));
}
BENCHMARK(BM_CfObserve);

void BM_CfRecommend(benchmark::State& state) {
  Rng rng(8);
  analytics::RetailWorkloadConfig wl;
  wl.interactions = 20'000;
  const auto workload = analytics::GenerateRetailWorkload(wl, rng);
  analytics::ItemCfRecommender rec;
  for (const auto& in : workload) rec.Observe(in);
  std::size_t u = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rec.Recommend("u" + std::to_string(u++ % wl.users), 10));
  }
}
BENCHMARK(BM_CfRecommend);

}  // namespace

int main(int argc, char** argv) {
  SweepTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
