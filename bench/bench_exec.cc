// E20 — deterministic executor scaling. Three parts:
//
//   E20a: partitioned broker workload — P=16 partitions, pre-generated
//         keyed records pushed through ParallelProduce + ParallelFetchAll
//         at workers ∈ {1,2,4,8}. Throughput is *modeled* records/sec,
//         computed from the executor's virtual makespan (each append
//         bills 2µs, each fetch 1µs to the executing worker's virtual
//         clock); the host's core count therefore does not affect the
//         scaling numbers, only the informational wall column. Gates:
//         workers=4 achieves >= 2.5x the workers=1 throughput, the run
//         outcome digest is identical at every worker count, and the
//         workers=1 digest equals a hand-rolled serial reference loop
//         (the pre-refactor code path).
//
//   E20b: frame path — SimulateFleetFrames (8 users, one shard each) at
//         the same worker counts. The per-frame p99 must be bit-identical
//         across worker counts (per-user state is task-local, merged in
//         user order), and the virtual makespan must shrink with workers.
//
//   E20c: whole-scenario digests — TourismDigest / OverloadDigest equal
//         across worker counts for each seed (the same invariant the
//         tier-1 determinism test enforces, here across {1,2,4,8}).
//
// `--quick` runs reduced sizes with the same checks and no
// google-benchmark timings — the CI exec smoke. Exit code = failures.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/table.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "exec/executor.h"
#include "offload/fleet.h"
#include "scenarios/digest.h"
#include "stream/log.h"
#include "stream/parallel.h"

namespace {

using namespace arbd;

constexpr std::uint32_t kPartitions = 16;
constexpr Duration kProduceCost = Duration::Micros(2);
constexpr Duration kFetchCost = Duration::Micros(1);

struct CheckList {
  int failures = 0;
  void Check(bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    if (!ok) ++failures;
  }
};

std::vector<stream::Record> MakeRecords(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<stream::Record> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string key = "k" + std::to_string(rng.NextU64() % 64);
    Bytes payload(32, static_cast<std::uint8_t>(i & 0xff));
    records.push_back(
        stream::Record::Make(key, std::move(payload), TimePoint::FromMillis(i)));
  }
  return records;
}

// One digest shape shared by the parallel runs and the serial reference,
// so "workers=1 == pre-refactor serial loop" is a byte-level statement.
std::uint64_t FoldBrokerOutcome(const stream::ParallelProduceReport& rep,
                                const std::vector<std::vector<stream::StoredRecord>>& fetched,
                                stream::Broker& broker, const std::string& topic) {
  BinaryWriter w;
  w.WriteU64(rep.produced);
  w.WriteU64(rep.rejected);
  for (const std::size_t c : rep.per_partition) w.WriteU64(c);
  for (const auto& part : fetched) {
    w.WriteU64(part.size());
    for (const auto& sr : part) {
      w.WriteU64(Fnv1a(sr.record.key));
      w.WriteI64(sr.offset);
    }
  }
  auto t = broker.GetTopic(topic);
  if (t.ok()) {
    for (stream::PartitionId p = 0; p < (*t)->partition_count(); ++p) {
      w.WriteI64((*t)->partition(p).end_offset());
    }
  }
  return Fnv1a(w.bytes());
}

struct BrokerRun {
  std::uint64_t digest = 0;
  double makespan_ms = 0.0;
  double wall_ms = 0.0;
  double recs_per_s = 0.0;  // modeled, from virtual makespan
};

BrokerRun RunBrokerWorkload(std::size_t workers, std::size_t n_records) {
  SimClock clock;
  stream::Broker broker(clock);
  stream::TopicConfig tc;
  tc.partitions = kPartitions;
  (void)broker.CreateTopic("e20.load", tc);

  exec::ExecConfig ec;
  ec.workers = workers;
  exec::Executor ex(ec);

  auto records = MakeRecords(n_records, 42);
  const auto wall0 = std::chrono::steady_clock::now();
  const auto rep =
      stream::ParallelProduce(ex, broker, "e20.load", std::move(records), kProduceCost);
  const auto fetched =
      stream::ParallelFetchAll(ex, broker, "e20.load", n_records, kFetchCost);
  const auto wall1 = std::chrono::steady_clock::now();

  BrokerRun run;
  run.digest = FoldBrokerOutcome(rep, fetched, broker, "e20.load");
  run.makespan_ms = ex.VirtualMakespan().seconds() * 1e3;
  run.wall_ms =
      std::chrono::duration<double, std::milli>(wall1 - wall0).count();
  std::size_t total_fetched = 0;
  for (const auto& part : fetched) total_fetched += part.size();
  const double makespan_s = ex.VirtualMakespan().seconds();
  run.recs_per_s = makespan_s > 0.0
                       ? static_cast<double>(rep.produced + total_fetched) / makespan_s
                       : 0.0;
  return run;
}

// The pre-refactor code path: a plain loop over Broker::Produce followed
// by a partition-by-partition Fetch, no executor involved.
std::uint64_t SerialReferenceDigest(std::size_t n_records) {
  SimClock clock;
  stream::Broker broker(clock);
  stream::TopicConfig tc;
  tc.partitions = kPartitions;
  (void)broker.CreateTopic("e20.load", tc);

  auto records = MakeRecords(n_records, 42);
  stream::ParallelProduceReport rep;
  rep.per_partition.assign(kPartitions, 0);
  for (auto& r : records) {
    auto placed = broker.Produce("e20.load", std::move(r));
    if (placed.ok()) {
      ++rep.produced;
      ++rep.per_partition[placed->first];
    } else {
      ++rep.rejected;
    }
  }
  std::vector<std::vector<stream::StoredRecord>> fetched(kPartitions);
  for (stream::PartitionId p = 0; p < kPartitions; ++p) {
    auto got = broker.Fetch("e20.load", p, 0, n_records);
    if (got.ok()) fetched[p] = std::move(*got);
  }
  return FoldBrokerOutcome(rep, fetched, broker, "e20.load");
}

std::uint64_t FoldFleet(const offload::FleetStats& fs) {
  BinaryWriter w;
  w.WriteU64(fs.frames);
  w.WriteF64(fs.hit_rate);
  w.WriteF64(fs.mean_latency_ms);
  w.WriteF64(fs.p99_latency_ms);
  w.WriteF64(fs.offload_fraction);
  for (const auto& u : fs.per_user) {
    w.WriteU64(u.frames);
    w.WriteU64(u.deadline_hits);
    w.WriteF64(u.mean_latency_ms);
    w.WriteF64(u.offload_fraction);
  }
  return Fnv1a(w.bytes());
}

int RunExperiment(bool quick) {
  const std::vector<std::size_t> worker_counts = {1, 2, 4, 8};
  const std::size_t n_records = quick ? 8'000 : 64'000;
  CheckList checks;

  // --- E20a: partitioned broker workload -----------------------------
  std::vector<BrokerRun> runs;
  bench::Table table({"workers", "records", "makespan_ms", "recs/s(model)",
                      "speedup", "wall_ms", "digest"});
  for (const std::size_t wks : worker_counts) {
    runs.push_back(RunBrokerWorkload(wks, n_records));
    const BrokerRun& r = runs.back();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(r.digest));
    table.Row({bench::FmtInt(wks), bench::FmtInt(n_records),
               bench::Fmt("%.2f", r.makespan_ms),
               bench::Fmt("%.0f", r.recs_per_s),
               bench::Fmt("%.2fx", runs.front().makespan_ms / r.makespan_ms),
               bench::Fmt("%.2f", r.wall_ms), buf});
  }
  table.Print("E20a partitioned broker workload (modeled scaling, P=16)");

  const std::uint64_t serial_digest = SerialReferenceDigest(n_records);
  checks.Check(runs[0].digest == serial_digest,
               "broker: workers=1 digest equals the serial reference loop");
  bool all_equal = true;
  for (const auto& r : runs) all_equal = all_equal && r.digest == runs[0].digest;
  checks.Check(all_equal, "broker: outcome digest identical at workers 1/2/4/8");
  const double speedup4 = runs[0].makespan_ms / runs[2].makespan_ms;
  checks.Check(speedup4 >= 2.5,
               bench::Fmt("broker: workers=4 modeled speedup %.2fx >= 2.5x", speedup4));
  checks.Check(runs[3].makespan_ms <= runs[2].makespan_ms + 1e-9,
               "broker: makespan non-increasing from 4 to 8 workers");

  // --- E20b: frame path (fleet of per-user shards) --------------------
  offload::FleetConfig fleet_cfg;
  fleet_cfg.users = 8;
  fleet_cfg.frames_per_user = quick ? 50 : 200;
  fleet_cfg.seed = 9;
  bench::Table ftable({"workers", "frames", "p99_ms", "hit_rate",
                       "makespan_ms", "speedup", "digest"});
  std::vector<std::uint64_t> fleet_digests;
  std::vector<double> fleet_makespans, fleet_p99s;
  for (const std::size_t wks : worker_counts) {
    exec::ExecConfig ec;
    ec.workers = wks;
    exec::Executor ex(ec);
    const auto fs = offload::SimulateFleetFrames(ex, fleet_cfg);
    fleet_digests.push_back(FoldFleet(fs));
    fleet_makespans.push_back(ex.VirtualMakespan().seconds() * 1e3);
    fleet_p99s.push_back(fs.p99_latency_ms);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fleet_digests.back()));
    ftable.Row({bench::FmtInt(wks), bench::FmtInt(fs.frames),
                bench::Fmt("%.3f", fs.p99_latency_ms),
                bench::Fmt("%.3f", fs.hit_rate),
                bench::Fmt("%.2f", fleet_makespans.back()),
                bench::Fmt("%.2fx", fleet_makespans.front() / fleet_makespans.back()),
                buf});
  }
  ftable.Print("E20b frame path: 8-user fleet, per-user shards");
  bool fleet_equal = true, p99_equal = true;
  for (std::size_t i = 0; i < fleet_digests.size(); ++i) {
    fleet_equal = fleet_equal && fleet_digests[i] == fleet_digests[0];
    p99_equal = p99_equal && fleet_p99s[i] == fleet_p99s[0];
  }
  checks.Check(fleet_equal, "fleet: stats digest identical at workers 1/2/4/8");
  checks.Check(p99_equal, "fleet: frame p99 bit-identical at every worker count");
  checks.Check(fleet_makespans[0] / fleet_makespans[2] >= 1.5,
               bench::Fmt("fleet: workers=4 modeled speedup %.2fx >= 1.5x",
                          fleet_makespans[0] / fleet_makespans[2]));

  // --- E20c: whole-scenario digests -----------------------------------
  const std::vector<std::uint64_t> seeds =
      quick ? std::vector<std::uint64_t>{3} : std::vector<std::uint64_t>{3, 11};
  bench::Table stable({"seed", "scenario", "w=1", "w=2", "w=4", "w=8", "equal"});
  for (const std::uint64_t seed : seeds) {
    for (const bool tourism : {true, false}) {
      std::vector<std::uint64_t> digs;
      for (const std::size_t wks : worker_counts) {
        exec::ExecConfig ec;
        ec.workers = wks;
        digs.push_back(tourism ? scenarios::TourismDigest(seed, ec)
                               : scenarios::OverloadDigest(seed, ec));
      }
      bool equal = true;
      std::vector<std::string> cells = {bench::FmtInt(seed),
                                        tourism ? "tourism" : "overload"};
      for (const std::uint64_t d : digs) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%08llx",
                      static_cast<unsigned long long>(d & 0xffffffffULL));
        cells.push_back(buf);
        equal = equal && d == digs[0];
      }
      cells.push_back(equal ? "yes" : "NO");
      stable.Row({cells[0], cells[1], cells[2], cells[3], cells[4], cells[5],
                  cells[6]});
      checks.Check(equal, std::string(tourism ? "tourism" : "overload") +
                              " digest invariant across worker counts, seed " +
                              std::to_string(seed));
    }
  }
  stable.Print("E20c scenario digests across worker counts");

  std::printf("\nE20 verdict: %s (%d failing check%s)\n",
              checks.failures == 0 ? "PASS" : "FAIL", checks.failures,
              checks.failures == 1 ? "" : "s");
  return checks.failures;
}

void BM_ParallelProduceFetch(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto run = RunBrokerWorkload(workers, 8'000);
    benchmark::DoNotOptimize(run);
  }
  state.SetItemsProcessed(state.iterations() * 16'000);
}
BENCHMARK(BM_ParallelProduceFetch)->Arg(1)->Arg(2)->Arg(4);

void BM_FleetFrames(benchmark::State& state) {
  offload::FleetConfig cfg;
  cfg.frames_per_user = 50;
  exec::ExecConfig ec;
  ec.workers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    exec::Executor ex(ec);
    auto fs = offload::SimulateFleetFrames(ex, cfg);
    benchmark::DoNotOptimize(fs);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cfg.users * cfg.frames_per_user));
}
BENCHMARK(BM_FleetFrames)->Arg(1)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const int failures = RunExperiment(quick);
  if (quick) return failures;  // CI smoke: tables + checks only
  if (failures != 0) return failures;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
