// Retail assistant (§3.1): a shopper walks into a store whose purchase
// history streams through the recommender; the AR layer shows personal
// recommendations and then locates a chosen product with X-ray vision.
//
// Build & run:   ./build/examples/retail_assistant
#include <cstdio>

#include "analytics/recommend.h"
#include "scenarios/retail.h"

using namespace arbd;
using namespace arbd::scenarios;

int main() {
  // The store and its historical purchase stream ("big data" side).
  StoreModel::Config store_cfg;
  store_cfg.aisles = 8;
  store_cfg.shelves_per_aisle = 10;
  const StoreModel store = StoreModel::Generate(store_cfg, 7);
  std::printf("store: %zu shelves, %zu products\n", store.shelves().size(),
              store.products().size());

  Rng rng(42);
  analytics::RetailWorkloadConfig wl;
  wl.users = 120;
  wl.items = store.products().size();
  wl.clusters = 8;
  wl.interactions = 25'000;
  const auto history = analytics::GenerateRetailWorkload(wl, rng);

  analytics::ItemCfRecommender recommender;
  for (const auto& purchase : history) recommender.Observe(purchase);
  std::printf("trained on %zu purchases across %zu shoppers\n", history.size(),
              static_cast<std::size_t>(wl.users));

  // Our shopper has a short history; the recommender personalizes from it.
  const std::string me = "u7";
  const auto recs = recommender.Recommend(me, 5);
  std::printf("\nAR overlay — recommended for %s:\n", me.c_str());
  for (const auto& sku_name : recs) {
    const std::size_t idx = std::stoul(sku_name.substr(1)) % store.products().size();
    const Product& p = store.products()[idx];
    std::printf("  * %s  ($%.2f, aisle position %.0f,%.0f)\n", p.name.c_str(), p.price,
                p.east, p.north);
  }
  if (recs.empty()) {
    std::printf("  (no personal history yet — showing store-wide popular items)\n");
  }

  // The shopper picks the first recommendation; X-ray vision guides them.
  const std::string target =
      recs.empty() ? store.products()[5].sku
                   : store.products()[std::stoul(recs[0].substr(1)) %
                                      store.products().size()].sku;
  std::printf("\nlocating '%s'…\n", target.c_str());

  SearchConfig plain;
  plain.guided = false;
  plain.xray_enabled = false;
  SearchConfig xray;
  xray.guided = true;
  xray.xray_enabled = true;

  const auto slow = SimulateProductSearch(store, target, plain, 1);
  const auto fast = SimulateProductSearch(store, target, xray, 1);
  std::printf("  aisle-by-aisle sweep : %5.1f s, %4.0f m walked\n",
              slow.time_to_find.seconds(), slow.distance_walked_m);
  std::printf("  AR x-ray guidance    : %5.1f s, %4.0f m walked  (%.1fx faster)\n",
              fast.time_to_find.seconds(), fast.distance_walked_m,
              slow.time_to_find.seconds() / std::max(0.1, fast.time_to_find.seconds()));
  return 0;
}
