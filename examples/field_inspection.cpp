// Field inspection (§3.4 / §2.2): a collaborative maintenance session.
// An electrician, a plumber, and a supervisor stand at the same site and
// share one dataset of infrastructure annotations, but each role sees its
// own contextualized view — the paper's "electrical-line view for the
// electrician and plumbing-line view for the plumber".
//
// Build & run:   ./build/examples/field_inspection
#include <cstdio>

#include "core/session.h"

using namespace arbd;
using namespace arbd::core;

namespace {

ar::content::Annotation Overlay(const geo::CityModel& city, const char* title,
                                ar::content::SemanticType type, double east,
                                double north, const char* system) {
  ar::content::Annotation a;
  a.type = type;
  a.title = title;
  a.body = std::string("system: ") + system;
  a.anchor.geo_pos = city.frame().FromEnu(geo::Enu{east, north});
  a.anchor.height_m = 0.5;  // sub-surface utilities drawn at street level
  a.priority = 0.8;
  a.ttl = Duration::Seconds(3600);
  a.properties["utility"] = system;
  return a;
}

void PrintView(const char* who, const Expected<FrameResult>& frame) {
  if (!frame.ok()) {
    std::printf("%s: compose failed: %s\n", who, frame.status().ToString().c_str());
    return;
  }
  std::printf("%-12s sees %zu overlays (%zu occluded → x-ray):\n", who,
              frame->layout.placed, frame->occluded);
  for (const auto& label : frame->layout.labels) {
    std::printf("    %s%s — %s\n", label.annotation->title.c_str(),
                label.xray ? " [x-ray]" : "", label.annotation->body.c_str());
  }
}

}  // namespace

int main() {
  const geo::CityModel city = geo::CityModel::Generate(geo::CityConfig{}, 31);
  CollaborativeSession session("site-42", city);

  // Three workers at the same street corner, all facing north.
  ContextEngine electrician("electrician", city);
  ContextEngine plumber("plumber", city);
  ContextEngine supervisor("supervisor", city);
  ar::PoseEstimate pose;  // origin, facing north
  electrician.tracker().Reset(pose);
  plumber.tracker().Reset(pose);
  supervisor.tracker().Reset(pose);

  // Role-based views: whitelists on semantic type.
  Role electric_role{"electric", {ar::content::SemanticType::kDiagnostic}, 0.0};
  Role plumb_role{"plumbing", {ar::content::SemanticType::kXRayHint}, 0.0};
  Role super_role{"supervisor", {}, 0.0};  // sees everything
  (void)session.Join("electrician", electric_role, &electrician);
  (void)session.Join("plumber", plumb_role, &plumber);
  (void)session.Join("supervisor", super_role, &supervisor);

  // The shared subsurface model: electrical runs tagged kDiagnostic,
  // water mains tagged kXRayHint (they're behind/below everything).
  const TimePoint now;
  session.Share(Overlay(city, "11kV feeder F-12", ar::content::SemanticType::kDiagnostic,
                        -5.0, 25.0, "electrical"), now);
  session.Share(Overlay(city, "junction box J-3", ar::content::SemanticType::kDiagnostic,
                        4.0, 32.0, "electrical"), now);
  session.Share(Overlay(city, "water main W-8", ar::content::SemanticType::kXRayHint,
                        0.0, 28.0, "water"), now);
  session.Share(Overlay(city, "valve V-2", ar::content::SemanticType::kXRayHint,
                        -8.0, 35.0, "water"), now);

  // The plumber also keeps a personal measurement note.
  ar::content::Annotation note = Overlay(city, "pressure reading 4.2 bar",
                                         ar::content::SemanticType::kXRayHint, 0.0, 28.0,
                                         "water");
  session.AddPersonal("plumber", note, now);

  std::printf("collaborative session '%s' with %zu members, %zu shared overlays\n\n",
              "site-42", session.member_count(), session.shared().size());
  PrintView("electrician", session.ComposeFor("electrician", now));
  std::printf("\n");
  PrintView("plumber", session.ComposeFor("plumber", now));
  std::printf("\n");
  PrintView("supervisor", session.ComposeFor("supervisor", now));
  return 0;
}
