// ARML interchange (§4.2): the platform's analytics produce semantically
// tagged annotations; exporting them as ARML lets any external AR client
// (or content producer) speak the same language. This example runs a small
// analytics flow, exports the resulting overlay set as ARML XML, re-imports
// it into a second, independent annotation store, and shows both render
// identically.
//
// Build & run:   ./build/examples/arml_exchange
#include <cstdio>

#include "ar/arml.h"
#include "core/platform.h"

using namespace arbd;

int main() {
  SimClock clock;
  const geo::CityModel city = geo::CityModel::Generate(geo::CityConfig{}, 5);
  core::Platform platform(core::PlatformConfig{}, city, clock);

  // A tiny analytics flow: foot-traffic counts per place, interpreted as
  // recommendation overlays.
  core::AggregationSpec spec;
  spec.attribute = "footfall";
  spec.window = stream::WindowSpec::Tumbling(Duration::Seconds(10));
  spec.agg = stream::AggKind::kCount;
  platform.AddAggregation(spec);
  core::InterpretationRule rule;
  rule.name = "busy-place";
  rule.attribute = "footfall";
  rule.high = 2.0;
  rule.type = ar::content::SemanticType::kRecommendation;
  rule.ttl = Duration::Seconds(600);
  rule.title_template = "Busy: {key}";
  rule.body_template = "{value} visitors in 10s";
  platform.AddRule(rule);

  const auto places = city.pois().All();
  for (int p = 0; p < 3; ++p) {
    for (int i = 0; i < 4 + p * 2; ++i) {
      stream::Event e;
      e.key = places[static_cast<std::size_t>(p)]->name;
      e.attribute = "footfall";
      e.value = 1.0;
      e.event_time = TimePoint::FromMillis(i * 1000);
      (void)platform.Publish(e);
    }
  }
  stream::Event closer;
  closer.key = places[0]->name;
  closer.attribute = "footfall";
  closer.value = 1.0;
  closer.event_time = TimePoint::FromSeconds(30.0);
  (void)platform.Publish(closer);
  platform.ProcessPending();

  // Export the live overlay set as ARML.
  const auto live = platform.annotations().Live();
  const std::string xml = ar::arml::ToArml(live);
  std::printf("exported %zu annotations as %zu bytes of ARML:\n\n%s\n", live.size(),
              xml.size(), xml.substr(0, 600).c_str());
  if (xml.size() > 600) std::printf("… (%zu more bytes)\n", xml.size() - 600);

  // A second client imports the document into its own store.
  const auto imported = ar::arml::FromArml(xml);
  if (!imported.ok()) {
    std::printf("import failed: %s\n", imported.status().ToString().c_str());
    return 1;
  }
  ar::content::AnnotationStore other_client;
  for (const auto& a : *imported) other_client.Add(a);
  std::printf("\nsecond client imported %zu annotations:\n", other_client.size());
  for (const auto* a : other_client.Live()) {
    std::printf("  [%s] %s — %s @ %s\n", ar::content::SemanticTypeName(a->type),
                a->title.c_str(), a->body.c_str(), a->anchor.geo_pos.ToString().c_str());
  }
  return 0;
}
