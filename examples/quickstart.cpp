// Quickstart: the smallest complete ARBD program.
//
// It stands up the platform over a synthetic city, streams a few sensor
// events through the big-data backend, installs one interpretation rule,
// and composes an AR frame for a user standing in the street — printing
// the labels that would be drawn on their display.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "core/platform.h"

using namespace arbd;

int main() {
  // 1. A world to augment: a procedurally generated city with buildings
  //    (for occlusion) and POIs (places to talk about).
  SimClock clock;
  const geo::CityModel city = geo::CityModel::Generate(geo::CityConfig{}, /*seed=*/1);
  std::printf("city: %zu buildings, %zu places\n", city.buildings().size(),
              city.poi_count());

  // 2. The platform: broker + dataflow + interpretation + frame composer.
  core::Platform platform(core::PlatformConfig{}, city, clock);

  // 3. A big-data job: per-place visit counts over 5-second windows.
  core::AggregationSpec spec;
  spec.attribute = "visits";
  spec.window = stream::WindowSpec::Tumbling(Duration::Seconds(5));
  spec.agg = stream::AggKind::kCount;
  platform.AddAggregation(spec);

  // 4. An interpretation rule: any place with more than 3 visits in a
  //    window becomes a "trending" recommendation overlay.
  core::InterpretationRule rule;
  rule.name = "trending-place";
  rule.attribute = "visits";
  rule.high = 3.0;  // fires when the windowed count exceeds 3
  rule.type = ar::content::SemanticType::kRecommendation;
  rule.priority = 0.9;
  rule.ttl = Duration::Seconds(60);
  rule.title_template = "Trending: {key}";
  rule.body_template = "{value} visits in the last 5s";
  platform.AddRule(rule);

  // 5. Stream events: a burst of visits to the first POI in the city.
  const geo::Poi* hot_place = city.pois().All().front();
  for (int i = 0; i < 8; ++i) {
    stream::Event e;
    e.key = hot_place->name;
    e.attribute = "visits";
    e.value = 1.0;
    e.event_time = TimePoint::FromMillis(i * 500);
    if (auto s = platform.Publish(e); !s.ok()) {
      std::printf("publish failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  // A closing event pushes the watermark past the window boundary.
  stream::Event closer;
  closer.key = hot_place->name;
  closer.attribute = "visits";
  closer.value = 1.0;
  closer.event_time = TimePoint::FromSeconds(6.0);
  (void)platform.Publish(closer);

  const std::size_t processed = platform.ProcessPending();
  std::printf("processed %zu stream records -> %zu live annotations\n", processed,
              platform.annotations().size());

  // 6. A user looking at the hot place from 30 m south of it.
  core::ContextEngine& user = platform.AddUser("you");
  const geo::Enu place = city.frame().ToEnu(hot_place->pos);
  ar::PoseEstimate pose;
  pose.east = place.east;
  pose.north = place.north - 30.0;
  pose.yaw_deg = 0.0;  // facing north, toward the place
  user.tracker().Reset(pose);

  // 7. Compose the frame and print what the display would show.
  const auto frame = platform.ComposeFrame("you");
  if (!frame.ok()) {
    std::printf("compose failed: %s\n", frame.status().ToString().c_str());
    return 1;
  }
  std::printf("frame: %zu in view, %zu occluded, %zu labels placed\n", frame->in_view,
              frame->occluded, frame->layout.placed);
  for (const auto& label : frame->layout.labels) {
    std::printf("  [%4.0f,%4.0f]%s %s — %s\n", label.x, label.y,
                label.xray ? " (x-ray)" : "", label.annotation->title.c_str(),
                label.annotation->body.c_str());
  }
  return 0;
}
