// Fleet safety (§3.4): a VANET of vehicles sharing beacons; each vehicle's
// AR display warns about predicted collisions, including vehicles hidden
// behind buildings ("see through" blind spots).
//
// Build & run:   ./build/examples/fleet_safety
#include <cstdio>

#include "scenarios/transport.h"

using namespace arbd;
using namespace arbd::scenarios;

int main() {
  geo::CityConfig city_cfg;
  city_cfg.blocks_x = 6;
  city_cfg.blocks_y = 6;
  const geo::CityModel city = geo::CityModel::Generate(city_cfg, 21);

  // Live demo slice: two vehicles on a collision course, one occluded.
  {
    ThreatAssessor assessor(ThreatConfig{});
    const auto& b = city.buildings().front();
    const TimePoint now = TimePoint::FromSeconds(1.0);

    Beacon hidden;
    hidden.vehicle_id = "truck-7";
    hidden.sent_at = now;
    hidden.east = b.center_east + b.half_width + 15.0;  // behind the building
    hidden.north = b.center_north;
    hidden.vel_east = -12.0;  // driving toward us
    assessor.OnBeacon(hidden, now);

    Beacon self;
    self.vehicle_id = "car-1";
    self.sent_at = now;
    self.east = b.center_east - b.half_width - 15.0;
    self.north = b.center_north;
    self.vel_east = 6.0;

    std::printf("car-1 approaching an intersection; truck-7 is behind '%s'…\n",
                b.name.c_str());
    for (const auto& threat : assessor.Assess(self, now, &city)) {
      std::printf("  AR WARNING: %s — closest approach %.1f m in %.1f s%s\n",
                  threat.other_id.c_str(), threat.closest_distance_m,
                  threat.time_to_closest_s,
                  threat.occluded ? "  [X-RAY: vehicle hidden behind building]" : "");
    }
  }

  // Fleet-scale statistics.
  std::printf("\nrunning a 2-minute, 80-vehicle simulation…\n");
  VanetConfig cfg;
  cfg.vehicles = 80;
  cfg.run_length = Duration::Seconds(120);
  const auto m = RunVanetSimulation(cfg, city, 23);
  std::printf("  beacons sent        : %llu\n",
              static_cast<unsigned long long>(m.beacons_sent));
  std::printf("  near-miss encounters: %zu\n", m.encounters);
  std::printf("  warned in advance   : %zu (recall %.0f%%)\n", m.warned,
              m.recall * 100.0);
  std::printf("  mean warning lead   : %.1f s\n", m.mean_lead_time_s);
  std::printf("  warnings needing x-ray vision: %zu of %zu\n", m.occluded_warnings,
              m.warnings_issued);
  return 0;
}
