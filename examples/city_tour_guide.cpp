// City tour guide (§3.2): a tourist wanders a synthetic city while the
// guide overlays place cards, translated signs, and rest-stop
// recommendations; the Ingress-style portal game shows how gamification
// changes where the tourist actually goes.
//
// Build & run:   ./build/examples/city_tour_guide
#include <cstdio>

#include "scenarios/tourism.h"

using namespace arbd;
using namespace arbd::scenarios;

int main() {
  geo::CityConfig city_cfg;
  city_cfg.blocks_x = 6;
  city_cfg.blocks_y = 6;
  const geo::CityModel city = geo::CityModel::Generate(city_cfg, 11);
  std::printf("city: %zu buildings, %zu places\n", city.buildings().size(),
              city.poi_count());

  // A short interactive-style trace: walk a loop and print what the AR
  // guide shows at a few checkpoints.
  TourismConfig cfg;
  TouristGuide guide(city, cfg, 3);

  // Attach a couple of translatable signs to the first landmarks.
  int signs = 0;
  for (const auto* poi : city.pois().All()) {
    if (poi->category == geo::PoiCategory::kLandmark && signs < 3) {
      guide.AddSign({poi->id, "歷史地標", "Historic landmark"});
      ++signs;
    }
  }

  const geo::LatLon start = city.frame().FromEnu(geo::Enu{0.0, 0.0});
  for (int step = 0; step <= 6; ++step) {
    const geo::LatLon here = geo::Offset(start, step * 180.0, 45.0);
    const auto overlays = guide.Update(here, TimePoint::FromSeconds(step * 60.0));
    std::printf("\n-- checkpoint %d (walked %.0f m): %zu overlays --\n", step,
                guide.distance_walked_m(), overlays.size());
    int shown = 0;
    for (const auto& a : overlays) {
      if (shown++ >= 4) break;
      std::printf("  [%s] %s — %s\n", ar::content::SemanticTypeName(a.type),
                  a.title.c_str(), a.body.c_str());
    }
  }

  // Full-tour comparison: does gamification get people to more spots?
  std::printf("\nrunning two 15-minute tours…\n");
  const auto plain = SimulateTour(city, cfg, /*gamified=*/false, Duration::Seconds(900), 17);
  const auto game = SimulateTour(city, cfg, /*gamified=*/true, Duration::Seconds(900), 17);
  std::printf("  plain guide : %4zu spots visited, %5.0f m walked, %zu overlays\n",
              plain.spots_visited, plain.distance_m, plain.annotations_shown);
  std::printf("  + portals   : %4zu spots visited (+%zu portals captured), %5.0f m walked\n",
              game.spots_visited, game.portals_captured, game.distance_m);
  return 0;
}
