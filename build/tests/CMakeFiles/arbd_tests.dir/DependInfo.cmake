
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analytics_test.cc" "tests/CMakeFiles/arbd_tests.dir/analytics_test.cc.o" "gcc" "tests/CMakeFiles/arbd_tests.dir/analytics_test.cc.o.d"
  "/root/repo/tests/ar_content_test.cc" "tests/CMakeFiles/arbd_tests.dir/ar_content_test.cc.o" "gcc" "tests/CMakeFiles/arbd_tests.dir/ar_content_test.cc.o.d"
  "/root/repo/tests/ar_tracker_test.cc" "tests/CMakeFiles/arbd_tests.dir/ar_tracker_test.cc.o" "gcc" "tests/CMakeFiles/arbd_tests.dir/ar_tracker_test.cc.o.d"
  "/root/repo/tests/ar_view_test.cc" "tests/CMakeFiles/arbd_tests.dir/ar_view_test.cc.o" "gcc" "tests/CMakeFiles/arbd_tests.dir/ar_view_test.cc.o.d"
  "/root/repo/tests/arml_test.cc" "tests/CMakeFiles/arbd_tests.dir/arml_test.cc.o" "gcc" "tests/CMakeFiles/arbd_tests.dir/arml_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/arbd_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/arbd_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/arbd_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/arbd_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/crowdsource_test.cc" "tests/CMakeFiles/arbd_tests.dir/crowdsource_test.cc.o" "gcc" "tests/CMakeFiles/arbd_tests.dir/crowdsource_test.cc.o.d"
  "/root/repo/tests/dp_query_test.cc" "tests/CMakeFiles/arbd_tests.dir/dp_query_test.cc.o" "gcc" "tests/CMakeFiles/arbd_tests.dir/dp_query_test.cc.o.d"
  "/root/repo/tests/emergency_test.cc" "tests/CMakeFiles/arbd_tests.dir/emergency_test.cc.o" "gcc" "tests/CMakeFiles/arbd_tests.dir/emergency_test.cc.o.d"
  "/root/repo/tests/geo_test.cc" "tests/CMakeFiles/arbd_tests.dir/geo_test.cc.o" "gcc" "tests/CMakeFiles/arbd_tests.dir/geo_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/arbd_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/arbd_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/interaction_test.cc" "tests/CMakeFiles/arbd_tests.dir/interaction_test.cc.o" "gcc" "tests/CMakeFiles/arbd_tests.dir/interaction_test.cc.o.d"
  "/root/repo/tests/join_table_test.cc" "tests/CMakeFiles/arbd_tests.dir/join_table_test.cc.o" "gcc" "tests/CMakeFiles/arbd_tests.dir/join_table_test.cc.o.d"
  "/root/repo/tests/offload_test.cc" "tests/CMakeFiles/arbd_tests.dir/offload_test.cc.o" "gcc" "tests/CMakeFiles/arbd_tests.dir/offload_test.cc.o.d"
  "/root/repo/tests/poi_city_test.cc" "tests/CMakeFiles/arbd_tests.dir/poi_city_test.cc.o" "gcc" "tests/CMakeFiles/arbd_tests.dir/poi_city_test.cc.o.d"
  "/root/repo/tests/privacy_guard_test.cc" "tests/CMakeFiles/arbd_tests.dir/privacy_guard_test.cc.o" "gcc" "tests/CMakeFiles/arbd_tests.dir/privacy_guard_test.cc.o.d"
  "/root/repo/tests/privacy_test.cc" "tests/CMakeFiles/arbd_tests.dir/privacy_test.cc.o" "gcc" "tests/CMakeFiles/arbd_tests.dir/privacy_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/arbd_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/arbd_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/quadtree_test.cc" "tests/CMakeFiles/arbd_tests.dir/quadtree_test.cc.o" "gcc" "tests/CMakeFiles/arbd_tests.dir/quadtree_test.cc.o.d"
  "/root/repo/tests/recommend_test.cc" "tests/CMakeFiles/arbd_tests.dir/recommend_test.cc.o" "gcc" "tests/CMakeFiles/arbd_tests.dir/recommend_test.cc.o.d"
  "/root/repo/tests/recovery_test.cc" "tests/CMakeFiles/arbd_tests.dir/recovery_test.cc.o" "gcc" "tests/CMakeFiles/arbd_tests.dir/recovery_test.cc.o.d"
  "/root/repo/tests/registration_test.cc" "tests/CMakeFiles/arbd_tests.dir/registration_test.cc.o" "gcc" "tests/CMakeFiles/arbd_tests.dir/registration_test.cc.o.d"
  "/root/repo/tests/route_test.cc" "tests/CMakeFiles/arbd_tests.dir/route_test.cc.o" "gcc" "tests/CMakeFiles/arbd_tests.dir/route_test.cc.o.d"
  "/root/repo/tests/scenarios_test.cc" "tests/CMakeFiles/arbd_tests.dir/scenarios_test.cc.o" "gcc" "tests/CMakeFiles/arbd_tests.dir/scenarios_test.cc.o.d"
  "/root/repo/tests/security_test.cc" "tests/CMakeFiles/arbd_tests.dir/security_test.cc.o" "gcc" "tests/CMakeFiles/arbd_tests.dir/security_test.cc.o.d"
  "/root/repo/tests/sensors_test.cc" "tests/CMakeFiles/arbd_tests.dir/sensors_test.cc.o" "gcc" "tests/CMakeFiles/arbd_tests.dir/sensors_test.cc.o.d"
  "/root/repo/tests/stream_consumer_test.cc" "tests/CMakeFiles/arbd_tests.dir/stream_consumer_test.cc.o" "gcc" "tests/CMakeFiles/arbd_tests.dir/stream_consumer_test.cc.o.d"
  "/root/repo/tests/stream_dataflow_test.cc" "tests/CMakeFiles/arbd_tests.dir/stream_dataflow_test.cc.o" "gcc" "tests/CMakeFiles/arbd_tests.dir/stream_dataflow_test.cc.o.d"
  "/root/repo/tests/stream_log_test.cc" "tests/CMakeFiles/arbd_tests.dir/stream_log_test.cc.o" "gcc" "tests/CMakeFiles/arbd_tests.dir/stream_log_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenarios/CMakeFiles/arbd_scenarios.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/arbd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ar/CMakeFiles/arbd_ar.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/arbd_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/CMakeFiles/arbd_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/arbd_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/privacy/CMakeFiles/arbd_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/arbd_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/offload/CMakeFiles/arbd_offload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/arbd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
