# Empty dependencies file for arbd_tests.
# This may be replaced when dependencies are built.
