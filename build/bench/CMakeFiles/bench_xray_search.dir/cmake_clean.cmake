file(REMOVE_RECURSE
  "CMakeFiles/bench_xray_search.dir/bench_xray_search.cc.o"
  "CMakeFiles/bench_xray_search.dir/bench_xray_search.cc.o.d"
  "bench_xray_search"
  "bench_xray_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xray_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
