# Empty dependencies file for bench_xray_search.
# This may be replaced when dependencies are built.
