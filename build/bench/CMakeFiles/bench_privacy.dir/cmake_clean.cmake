file(REMOVE_RECURSE
  "CMakeFiles/bench_privacy.dir/bench_privacy.cc.o"
  "CMakeFiles/bench_privacy.dir/bench_privacy.cc.o.d"
  "bench_privacy"
  "bench_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
