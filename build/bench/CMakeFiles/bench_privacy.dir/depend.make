# Empty dependencies file for bench_privacy.
# This may be replaced when dependencies are built.
