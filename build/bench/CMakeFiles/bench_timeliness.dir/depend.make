# Empty dependencies file for bench_timeliness.
# This may be replaced when dependencies are built.
