# Empty dependencies file for bench_interpretation.
# This may be replaced when dependencies are built.
