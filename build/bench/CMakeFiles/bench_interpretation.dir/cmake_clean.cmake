file(REMOVE_RECURSE
  "CMakeFiles/bench_interpretation.dir/bench_interpretation.cc.o"
  "CMakeFiles/bench_interpretation.dir/bench_interpretation.cc.o.d"
  "bench_interpretation"
  "bench_interpretation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interpretation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
