# Empty compiler generated dependencies file for bench_crowdsource.
# This may be replaced when dependencies are built.
