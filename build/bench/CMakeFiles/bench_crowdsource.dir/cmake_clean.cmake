file(REMOVE_RECURSE
  "CMakeFiles/bench_crowdsource.dir/bench_crowdsource.cc.o"
  "CMakeFiles/bench_crowdsource.dir/bench_crowdsource.cc.o.d"
  "bench_crowdsource"
  "bench_crowdsource.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crowdsource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
