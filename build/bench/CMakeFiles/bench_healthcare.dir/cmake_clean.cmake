file(REMOVE_RECURSE
  "CMakeFiles/bench_healthcare.dir/bench_healthcare.cc.o"
  "CMakeFiles/bench_healthcare.dir/bench_healthcare.cc.o.d"
  "bench_healthcare"
  "bench_healthcare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_healthcare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
