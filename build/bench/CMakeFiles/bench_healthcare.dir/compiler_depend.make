# Empty compiler generated dependencies file for bench_healthcare.
# This may be replaced when dependencies are built.
