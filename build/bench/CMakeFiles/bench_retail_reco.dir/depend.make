# Empty dependencies file for bench_retail_reco.
# This may be replaced when dependencies are built.
