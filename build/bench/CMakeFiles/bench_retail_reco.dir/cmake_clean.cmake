file(REMOVE_RECURSE
  "CMakeFiles/bench_retail_reco.dir/bench_retail_reco.cc.o"
  "CMakeFiles/bench_retail_reco.dir/bench_retail_reco.cc.o.d"
  "bench_retail_reco"
  "bench_retail_reco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_retail_reco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
