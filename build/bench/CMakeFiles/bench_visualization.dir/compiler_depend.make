# Empty compiler generated dependencies file for bench_visualization.
# This may be replaced when dependencies are built.
