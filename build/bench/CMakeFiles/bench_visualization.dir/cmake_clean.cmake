file(REMOVE_RECURSE
  "CMakeFiles/bench_visualization.dir/bench_visualization.cc.o"
  "CMakeFiles/bench_visualization.dir/bench_visualization.cc.o.d"
  "bench_visualization"
  "bench_visualization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_visualization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
