file(REMOVE_RECURSE
  "CMakeFiles/bench_stream_engine.dir/bench_stream_engine.cc.o"
  "CMakeFiles/bench_stream_engine.dir/bench_stream_engine.cc.o.d"
  "bench_stream_engine"
  "bench_stream_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stream_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
