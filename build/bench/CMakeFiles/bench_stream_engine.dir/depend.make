# Empty dependencies file for bench_stream_engine.
# This may be replaced when dependencies are built.
