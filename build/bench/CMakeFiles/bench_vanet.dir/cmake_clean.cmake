file(REMOVE_RECURSE
  "CMakeFiles/bench_vanet.dir/bench_vanet.cc.o"
  "CMakeFiles/bench_vanet.dir/bench_vanet.cc.o.d"
  "bench_vanet"
  "bench_vanet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vanet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
