# Empty dependencies file for bench_vanet.
# This may be replaced when dependencies are built.
