# Empty compiler generated dependencies file for bench_offload.
# This may be replaced when dependencies are built.
