file(REMOVE_RECURSE
  "CMakeFiles/bench_offload.dir/bench_offload.cc.o"
  "CMakeFiles/bench_offload.dir/bench_offload.cc.o.d"
  "bench_offload"
  "bench_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
