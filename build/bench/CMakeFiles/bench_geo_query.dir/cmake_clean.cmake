file(REMOVE_RECURSE
  "CMakeFiles/bench_geo_query.dir/bench_geo_query.cc.o"
  "CMakeFiles/bench_geo_query.dir/bench_geo_query.cc.o.d"
  "bench_geo_query"
  "bench_geo_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_geo_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
