# Empty compiler generated dependencies file for bench_geo_query.
# This may be replaced when dependencies are built.
