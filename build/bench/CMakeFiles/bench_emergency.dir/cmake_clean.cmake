file(REMOVE_RECURSE
  "CMakeFiles/bench_emergency.dir/bench_emergency.cc.o"
  "CMakeFiles/bench_emergency.dir/bench_emergency.cc.o.d"
  "bench_emergency"
  "bench_emergency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_emergency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
