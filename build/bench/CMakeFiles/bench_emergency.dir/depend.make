# Empty dependencies file for bench_emergency.
# This may be replaced when dependencies are built.
