file(REMOVE_RECURSE
  "CMakeFiles/bench_security.dir/bench_security.cc.o"
  "CMakeFiles/bench_security.dir/bench_security.cc.o.d"
  "bench_security"
  "bench_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
