# Empty compiler generated dependencies file for bench_security.
# This may be replaced when dependencies are built.
