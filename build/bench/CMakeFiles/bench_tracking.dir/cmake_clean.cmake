file(REMOVE_RECURSE
  "CMakeFiles/bench_tracking.dir/bench_tracking.cc.o"
  "CMakeFiles/bench_tracking.dir/bench_tracking.cc.o.d"
  "bench_tracking"
  "bench_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
