# Empty dependencies file for bench_tracking.
# This may be replaced when dependencies are built.
