
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_tracking.cc" "bench/CMakeFiles/bench_tracking.dir/bench_tracking.cc.o" "gcc" "bench/CMakeFiles/bench_tracking.dir/bench_tracking.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenarios/CMakeFiles/arbd_scenarios.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/arbd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ar/CMakeFiles/arbd_ar.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/arbd_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/CMakeFiles/arbd_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/arbd_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/privacy/CMakeFiles/arbd_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/arbd_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/offload/CMakeFiles/arbd_offload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/arbd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
