# Empty compiler generated dependencies file for bench_interaction.
# This may be replaced when dependencies are built.
