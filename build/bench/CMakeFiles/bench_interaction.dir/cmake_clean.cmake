file(REMOVE_RECURSE
  "CMakeFiles/bench_interaction.dir/bench_interaction.cc.o"
  "CMakeFiles/bench_interaction.dir/bench_interaction.cc.o.d"
  "bench_interaction"
  "bench_interaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
