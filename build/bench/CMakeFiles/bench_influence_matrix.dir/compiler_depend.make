# Empty compiler generated dependencies file for bench_influence_matrix.
# This may be replaced when dependencies are built.
