file(REMOVE_RECURSE
  "CMakeFiles/bench_influence_matrix.dir/bench_influence_matrix.cc.o"
  "CMakeFiles/bench_influence_matrix.dir/bench_influence_matrix.cc.o.d"
  "bench_influence_matrix"
  "bench_influence_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_influence_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
