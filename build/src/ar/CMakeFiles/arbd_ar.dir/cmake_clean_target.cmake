file(REMOVE_RECURSE
  "libarbd_ar.a"
)
