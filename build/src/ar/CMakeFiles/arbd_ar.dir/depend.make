# Empty dependencies file for arbd_ar.
# This may be replaced when dependencies are built.
