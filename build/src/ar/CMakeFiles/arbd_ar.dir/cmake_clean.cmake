file(REMOVE_RECURSE
  "CMakeFiles/arbd_ar.dir/arml.cc.o"
  "CMakeFiles/arbd_ar.dir/arml.cc.o.d"
  "CMakeFiles/arbd_ar.dir/content.cc.o"
  "CMakeFiles/arbd_ar.dir/content.cc.o.d"
  "CMakeFiles/arbd_ar.dir/frustum.cc.o"
  "CMakeFiles/arbd_ar.dir/frustum.cc.o.d"
  "CMakeFiles/arbd_ar.dir/interaction.cc.o"
  "CMakeFiles/arbd_ar.dir/interaction.cc.o.d"
  "CMakeFiles/arbd_ar.dir/layout.cc.o"
  "CMakeFiles/arbd_ar.dir/layout.cc.o.d"
  "CMakeFiles/arbd_ar.dir/occlusion.cc.o"
  "CMakeFiles/arbd_ar.dir/occlusion.cc.o.d"
  "CMakeFiles/arbd_ar.dir/registration.cc.o"
  "CMakeFiles/arbd_ar.dir/registration.cc.o.d"
  "CMakeFiles/arbd_ar.dir/scene.cc.o"
  "CMakeFiles/arbd_ar.dir/scene.cc.o.d"
  "CMakeFiles/arbd_ar.dir/tracker.cc.o"
  "CMakeFiles/arbd_ar.dir/tracker.cc.o.d"
  "libarbd_ar.a"
  "libarbd_ar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbd_ar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
