
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ar/arml.cc" "src/ar/CMakeFiles/arbd_ar.dir/arml.cc.o" "gcc" "src/ar/CMakeFiles/arbd_ar.dir/arml.cc.o.d"
  "/root/repo/src/ar/content.cc" "src/ar/CMakeFiles/arbd_ar.dir/content.cc.o" "gcc" "src/ar/CMakeFiles/arbd_ar.dir/content.cc.o.d"
  "/root/repo/src/ar/frustum.cc" "src/ar/CMakeFiles/arbd_ar.dir/frustum.cc.o" "gcc" "src/ar/CMakeFiles/arbd_ar.dir/frustum.cc.o.d"
  "/root/repo/src/ar/interaction.cc" "src/ar/CMakeFiles/arbd_ar.dir/interaction.cc.o" "gcc" "src/ar/CMakeFiles/arbd_ar.dir/interaction.cc.o.d"
  "/root/repo/src/ar/layout.cc" "src/ar/CMakeFiles/arbd_ar.dir/layout.cc.o" "gcc" "src/ar/CMakeFiles/arbd_ar.dir/layout.cc.o.d"
  "/root/repo/src/ar/occlusion.cc" "src/ar/CMakeFiles/arbd_ar.dir/occlusion.cc.o" "gcc" "src/ar/CMakeFiles/arbd_ar.dir/occlusion.cc.o.d"
  "/root/repo/src/ar/registration.cc" "src/ar/CMakeFiles/arbd_ar.dir/registration.cc.o" "gcc" "src/ar/CMakeFiles/arbd_ar.dir/registration.cc.o.d"
  "/root/repo/src/ar/scene.cc" "src/ar/CMakeFiles/arbd_ar.dir/scene.cc.o" "gcc" "src/ar/CMakeFiles/arbd_ar.dir/scene.cc.o.d"
  "/root/repo/src/ar/tracker.cc" "src/ar/CMakeFiles/arbd_ar.dir/tracker.cc.o" "gcc" "src/ar/CMakeFiles/arbd_ar.dir/tracker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/arbd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/arbd_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/arbd_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/arbd_stream.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
