# Empty dependencies file for arbd_common.
# This may be replaced when dependencies are built.
