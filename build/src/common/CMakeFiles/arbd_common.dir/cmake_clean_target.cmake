file(REMOVE_RECURSE
  "libarbd_common.a"
)
