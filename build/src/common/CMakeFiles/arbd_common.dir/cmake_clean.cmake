file(REMOVE_RECURSE
  "CMakeFiles/arbd_common.dir/clock.cc.o"
  "CMakeFiles/arbd_common.dir/clock.cc.o.d"
  "CMakeFiles/arbd_common.dir/log.cc.o"
  "CMakeFiles/arbd_common.dir/log.cc.o.d"
  "CMakeFiles/arbd_common.dir/metrics.cc.o"
  "CMakeFiles/arbd_common.dir/metrics.cc.o.d"
  "CMakeFiles/arbd_common.dir/serialize.cc.o"
  "CMakeFiles/arbd_common.dir/serialize.cc.o.d"
  "libarbd_common.a"
  "libarbd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
