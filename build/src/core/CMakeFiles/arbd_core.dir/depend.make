# Empty dependencies file for arbd_core.
# This may be replaced when dependencies are built.
