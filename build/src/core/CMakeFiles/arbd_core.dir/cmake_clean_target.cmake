file(REMOVE_RECURSE
  "libarbd_core.a"
)
