
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/context.cc" "src/core/CMakeFiles/arbd_core.dir/context.cc.o" "gcc" "src/core/CMakeFiles/arbd_core.dir/context.cc.o.d"
  "/root/repo/src/core/interpretation.cc" "src/core/CMakeFiles/arbd_core.dir/interpretation.cc.o" "gcc" "src/core/CMakeFiles/arbd_core.dir/interpretation.cc.o.d"
  "/root/repo/src/core/platform.cc" "src/core/CMakeFiles/arbd_core.dir/platform.cc.o" "gcc" "src/core/CMakeFiles/arbd_core.dir/platform.cc.o.d"
  "/root/repo/src/core/privacy_guard.cc" "src/core/CMakeFiles/arbd_core.dir/privacy_guard.cc.o" "gcc" "src/core/CMakeFiles/arbd_core.dir/privacy_guard.cc.o.d"
  "/root/repo/src/core/session.cc" "src/core/CMakeFiles/arbd_core.dir/session.cc.o" "gcc" "src/core/CMakeFiles/arbd_core.dir/session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/arbd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/arbd_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/arbd_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/arbd_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/ar/CMakeFiles/arbd_ar.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/CMakeFiles/arbd_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/privacy/CMakeFiles/arbd_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/offload/CMakeFiles/arbd_offload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
