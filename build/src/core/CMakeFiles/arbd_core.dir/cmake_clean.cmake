file(REMOVE_RECURSE
  "CMakeFiles/arbd_core.dir/context.cc.o"
  "CMakeFiles/arbd_core.dir/context.cc.o.d"
  "CMakeFiles/arbd_core.dir/interpretation.cc.o"
  "CMakeFiles/arbd_core.dir/interpretation.cc.o.d"
  "CMakeFiles/arbd_core.dir/platform.cc.o"
  "CMakeFiles/arbd_core.dir/platform.cc.o.d"
  "CMakeFiles/arbd_core.dir/privacy_guard.cc.o"
  "CMakeFiles/arbd_core.dir/privacy_guard.cc.o.d"
  "CMakeFiles/arbd_core.dir/session.cc.o"
  "CMakeFiles/arbd_core.dir/session.cc.o.d"
  "libarbd_core.a"
  "libarbd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
