file(REMOVE_RECURSE
  "CMakeFiles/arbd_offload.dir/executor.cc.o"
  "CMakeFiles/arbd_offload.dir/executor.cc.o.d"
  "CMakeFiles/arbd_offload.dir/network.cc.o"
  "CMakeFiles/arbd_offload.dir/network.cc.o.d"
  "CMakeFiles/arbd_offload.dir/scheduler.cc.o"
  "CMakeFiles/arbd_offload.dir/scheduler.cc.o.d"
  "libarbd_offload.a"
  "libarbd_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbd_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
