# Empty compiler generated dependencies file for arbd_offload.
# This may be replaced when dependencies are built.
