file(REMOVE_RECURSE
  "libarbd_offload.a"
)
