file(REMOVE_RECURSE
  "CMakeFiles/arbd_sensors.dir/models.cc.o"
  "CMakeFiles/arbd_sensors.dir/models.cc.o.d"
  "CMakeFiles/arbd_sensors.dir/rig.cc.o"
  "CMakeFiles/arbd_sensors.dir/rig.cc.o.d"
  "CMakeFiles/arbd_sensors.dir/trajectory.cc.o"
  "CMakeFiles/arbd_sensors.dir/trajectory.cc.o.d"
  "libarbd_sensors.a"
  "libarbd_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbd_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
