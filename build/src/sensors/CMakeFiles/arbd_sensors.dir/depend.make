# Empty dependencies file for arbd_sensors.
# This may be replaced when dependencies are built.
