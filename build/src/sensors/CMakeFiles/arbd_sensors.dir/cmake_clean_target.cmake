file(REMOVE_RECURSE
  "libarbd_sensors.a"
)
