
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensors/models.cc" "src/sensors/CMakeFiles/arbd_sensors.dir/models.cc.o" "gcc" "src/sensors/CMakeFiles/arbd_sensors.dir/models.cc.o.d"
  "/root/repo/src/sensors/rig.cc" "src/sensors/CMakeFiles/arbd_sensors.dir/rig.cc.o" "gcc" "src/sensors/CMakeFiles/arbd_sensors.dir/rig.cc.o.d"
  "/root/repo/src/sensors/trajectory.cc" "src/sensors/CMakeFiles/arbd_sensors.dir/trajectory.cc.o" "gcc" "src/sensors/CMakeFiles/arbd_sensors.dir/trajectory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/arbd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/arbd_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
