# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("stream")
subdirs("geo")
subdirs("sensors")
subdirs("ar")
subdirs("analytics")
subdirs("privacy")
subdirs("offload")
subdirs("core")
subdirs("scenarios")
