
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytics/join.cc" "src/analytics/CMakeFiles/arbd_analytics.dir/join.cc.o" "gcc" "src/analytics/CMakeFiles/arbd_analytics.dir/join.cc.o.d"
  "/root/repo/src/analytics/recommend.cc" "src/analytics/CMakeFiles/arbd_analytics.dir/recommend.cc.o" "gcc" "src/analytics/CMakeFiles/arbd_analytics.dir/recommend.cc.o.d"
  "/root/repo/src/analytics/sketches.cc" "src/analytics/CMakeFiles/arbd_analytics.dir/sketches.cc.o" "gcc" "src/analytics/CMakeFiles/arbd_analytics.dir/sketches.cc.o.d"
  "/root/repo/src/analytics/stats.cc" "src/analytics/CMakeFiles/arbd_analytics.dir/stats.cc.o" "gcc" "src/analytics/CMakeFiles/arbd_analytics.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/arbd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/arbd_stream.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
