# Empty compiler generated dependencies file for arbd_analytics.
# This may be replaced when dependencies are built.
