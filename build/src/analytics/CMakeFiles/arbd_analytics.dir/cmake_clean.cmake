file(REMOVE_RECURSE
  "CMakeFiles/arbd_analytics.dir/join.cc.o"
  "CMakeFiles/arbd_analytics.dir/join.cc.o.d"
  "CMakeFiles/arbd_analytics.dir/recommend.cc.o"
  "CMakeFiles/arbd_analytics.dir/recommend.cc.o.d"
  "CMakeFiles/arbd_analytics.dir/sketches.cc.o"
  "CMakeFiles/arbd_analytics.dir/sketches.cc.o.d"
  "CMakeFiles/arbd_analytics.dir/stats.cc.o"
  "CMakeFiles/arbd_analytics.dir/stats.cc.o.d"
  "libarbd_analytics.a"
  "libarbd_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbd_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
