file(REMOVE_RECURSE
  "libarbd_analytics.a"
)
