
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/privacy/attack.cc" "src/privacy/CMakeFiles/arbd_privacy.dir/attack.cc.o" "gcc" "src/privacy/CMakeFiles/arbd_privacy.dir/attack.cc.o.d"
  "/root/repo/src/privacy/cloak.cc" "src/privacy/CMakeFiles/arbd_privacy.dir/cloak.cc.o" "gcc" "src/privacy/CMakeFiles/arbd_privacy.dir/cloak.cc.o.d"
  "/root/repo/src/privacy/dp_query.cc" "src/privacy/CMakeFiles/arbd_privacy.dir/dp_query.cc.o" "gcc" "src/privacy/CMakeFiles/arbd_privacy.dir/dp_query.cc.o.d"
  "/root/repo/src/privacy/mechanisms.cc" "src/privacy/CMakeFiles/arbd_privacy.dir/mechanisms.cc.o" "gcc" "src/privacy/CMakeFiles/arbd_privacy.dir/mechanisms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/arbd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/arbd_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
