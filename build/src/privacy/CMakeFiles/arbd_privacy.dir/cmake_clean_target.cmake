file(REMOVE_RECURSE
  "libarbd_privacy.a"
)
