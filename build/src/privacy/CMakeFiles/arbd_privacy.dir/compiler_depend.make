# Empty compiler generated dependencies file for arbd_privacy.
# This may be replaced when dependencies are built.
