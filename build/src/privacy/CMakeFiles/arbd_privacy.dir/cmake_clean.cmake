file(REMOVE_RECURSE
  "CMakeFiles/arbd_privacy.dir/attack.cc.o"
  "CMakeFiles/arbd_privacy.dir/attack.cc.o.d"
  "CMakeFiles/arbd_privacy.dir/cloak.cc.o"
  "CMakeFiles/arbd_privacy.dir/cloak.cc.o.d"
  "CMakeFiles/arbd_privacy.dir/dp_query.cc.o"
  "CMakeFiles/arbd_privacy.dir/dp_query.cc.o.d"
  "CMakeFiles/arbd_privacy.dir/mechanisms.cc.o"
  "CMakeFiles/arbd_privacy.dir/mechanisms.cc.o.d"
  "libarbd_privacy.a"
  "libarbd_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbd_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
