file(REMOVE_RECURSE
  "CMakeFiles/arbd_stream.dir/consumer.cc.o"
  "CMakeFiles/arbd_stream.dir/consumer.cc.o.d"
  "CMakeFiles/arbd_stream.dir/dataflow.cc.o"
  "CMakeFiles/arbd_stream.dir/dataflow.cc.o.d"
  "CMakeFiles/arbd_stream.dir/log.cc.o"
  "CMakeFiles/arbd_stream.dir/log.cc.o.d"
  "CMakeFiles/arbd_stream.dir/record.cc.o"
  "CMakeFiles/arbd_stream.dir/record.cc.o.d"
  "CMakeFiles/arbd_stream.dir/recovery.cc.o"
  "CMakeFiles/arbd_stream.dir/recovery.cc.o.d"
  "CMakeFiles/arbd_stream.dir/table.cc.o"
  "CMakeFiles/arbd_stream.dir/table.cc.o.d"
  "libarbd_stream.a"
  "libarbd_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbd_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
