
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/consumer.cc" "src/stream/CMakeFiles/arbd_stream.dir/consumer.cc.o" "gcc" "src/stream/CMakeFiles/arbd_stream.dir/consumer.cc.o.d"
  "/root/repo/src/stream/dataflow.cc" "src/stream/CMakeFiles/arbd_stream.dir/dataflow.cc.o" "gcc" "src/stream/CMakeFiles/arbd_stream.dir/dataflow.cc.o.d"
  "/root/repo/src/stream/log.cc" "src/stream/CMakeFiles/arbd_stream.dir/log.cc.o" "gcc" "src/stream/CMakeFiles/arbd_stream.dir/log.cc.o.d"
  "/root/repo/src/stream/record.cc" "src/stream/CMakeFiles/arbd_stream.dir/record.cc.o" "gcc" "src/stream/CMakeFiles/arbd_stream.dir/record.cc.o.d"
  "/root/repo/src/stream/recovery.cc" "src/stream/CMakeFiles/arbd_stream.dir/recovery.cc.o" "gcc" "src/stream/CMakeFiles/arbd_stream.dir/recovery.cc.o.d"
  "/root/repo/src/stream/table.cc" "src/stream/CMakeFiles/arbd_stream.dir/table.cc.o" "gcc" "src/stream/CMakeFiles/arbd_stream.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/arbd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
