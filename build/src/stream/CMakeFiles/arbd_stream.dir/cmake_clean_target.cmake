file(REMOVE_RECURSE
  "libarbd_stream.a"
)
