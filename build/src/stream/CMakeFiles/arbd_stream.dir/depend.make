# Empty dependencies file for arbd_stream.
# This may be replaced when dependencies are built.
