file(REMOVE_RECURSE
  "libarbd_geo.a"
)
