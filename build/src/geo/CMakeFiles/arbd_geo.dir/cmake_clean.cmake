file(REMOVE_RECURSE
  "CMakeFiles/arbd_geo.dir/city.cc.o"
  "CMakeFiles/arbd_geo.dir/city.cc.o.d"
  "CMakeFiles/arbd_geo.dir/crowdsource.cc.o"
  "CMakeFiles/arbd_geo.dir/crowdsource.cc.o.d"
  "CMakeFiles/arbd_geo.dir/geohash.cc.o"
  "CMakeFiles/arbd_geo.dir/geohash.cc.o.d"
  "CMakeFiles/arbd_geo.dir/latlon.cc.o"
  "CMakeFiles/arbd_geo.dir/latlon.cc.o.d"
  "CMakeFiles/arbd_geo.dir/poi.cc.o"
  "CMakeFiles/arbd_geo.dir/poi.cc.o.d"
  "CMakeFiles/arbd_geo.dir/quadtree.cc.o"
  "CMakeFiles/arbd_geo.dir/quadtree.cc.o.d"
  "CMakeFiles/arbd_geo.dir/route.cc.o"
  "CMakeFiles/arbd_geo.dir/route.cc.o.d"
  "libarbd_geo.a"
  "libarbd_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbd_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
