
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/city.cc" "src/geo/CMakeFiles/arbd_geo.dir/city.cc.o" "gcc" "src/geo/CMakeFiles/arbd_geo.dir/city.cc.o.d"
  "/root/repo/src/geo/crowdsource.cc" "src/geo/CMakeFiles/arbd_geo.dir/crowdsource.cc.o" "gcc" "src/geo/CMakeFiles/arbd_geo.dir/crowdsource.cc.o.d"
  "/root/repo/src/geo/geohash.cc" "src/geo/CMakeFiles/arbd_geo.dir/geohash.cc.o" "gcc" "src/geo/CMakeFiles/arbd_geo.dir/geohash.cc.o.d"
  "/root/repo/src/geo/latlon.cc" "src/geo/CMakeFiles/arbd_geo.dir/latlon.cc.o" "gcc" "src/geo/CMakeFiles/arbd_geo.dir/latlon.cc.o.d"
  "/root/repo/src/geo/poi.cc" "src/geo/CMakeFiles/arbd_geo.dir/poi.cc.o" "gcc" "src/geo/CMakeFiles/arbd_geo.dir/poi.cc.o.d"
  "/root/repo/src/geo/quadtree.cc" "src/geo/CMakeFiles/arbd_geo.dir/quadtree.cc.o" "gcc" "src/geo/CMakeFiles/arbd_geo.dir/quadtree.cc.o.d"
  "/root/repo/src/geo/route.cc" "src/geo/CMakeFiles/arbd_geo.dir/route.cc.o" "gcc" "src/geo/CMakeFiles/arbd_geo.dir/route.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/arbd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
