# Empty compiler generated dependencies file for arbd_geo.
# This may be replaced when dependencies are built.
