file(REMOVE_RECURSE
  "CMakeFiles/arbd_scenarios.dir/emergency.cc.o"
  "CMakeFiles/arbd_scenarios.dir/emergency.cc.o.d"
  "CMakeFiles/arbd_scenarios.dir/healthcare.cc.o"
  "CMakeFiles/arbd_scenarios.dir/healthcare.cc.o.d"
  "CMakeFiles/arbd_scenarios.dir/retail.cc.o"
  "CMakeFiles/arbd_scenarios.dir/retail.cc.o.d"
  "CMakeFiles/arbd_scenarios.dir/security.cc.o"
  "CMakeFiles/arbd_scenarios.dir/security.cc.o.d"
  "CMakeFiles/arbd_scenarios.dir/tourism.cc.o"
  "CMakeFiles/arbd_scenarios.dir/tourism.cc.o.d"
  "CMakeFiles/arbd_scenarios.dir/transport.cc.o"
  "CMakeFiles/arbd_scenarios.dir/transport.cc.o.d"
  "libarbd_scenarios.a"
  "libarbd_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arbd_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
