file(REMOVE_RECURSE
  "libarbd_scenarios.a"
)
