# Empty dependencies file for arbd_scenarios.
# This may be replaced when dependencies are built.
