file(REMOVE_RECURSE
  "CMakeFiles/retail_assistant.dir/retail_assistant.cpp.o"
  "CMakeFiles/retail_assistant.dir/retail_assistant.cpp.o.d"
  "retail_assistant"
  "retail_assistant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retail_assistant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
