# Empty compiler generated dependencies file for retail_assistant.
# This may be replaced when dependencies are built.
