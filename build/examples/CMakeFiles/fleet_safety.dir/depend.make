# Empty dependencies file for fleet_safety.
# This may be replaced when dependencies are built.
