file(REMOVE_RECURSE
  "CMakeFiles/fleet_safety.dir/fleet_safety.cpp.o"
  "CMakeFiles/fleet_safety.dir/fleet_safety.cpp.o.d"
  "fleet_safety"
  "fleet_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
