# Empty compiler generated dependencies file for field_inspection.
# This may be replaced when dependencies are built.
