file(REMOVE_RECURSE
  "CMakeFiles/field_inspection.dir/field_inspection.cpp.o"
  "CMakeFiles/field_inspection.dir/field_inspection.cpp.o.d"
  "field_inspection"
  "field_inspection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/field_inspection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
