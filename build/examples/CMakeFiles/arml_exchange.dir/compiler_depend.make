# Empty compiler generated dependencies file for arml_exchange.
# This may be replaced when dependencies are built.
