file(REMOVE_RECURSE
  "CMakeFiles/arml_exchange.dir/arml_exchange.cpp.o"
  "CMakeFiles/arml_exchange.dir/arml_exchange.cpp.o.d"
  "arml_exchange"
  "arml_exchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arml_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
