file(REMOVE_RECURSE
  "CMakeFiles/city_tour_guide.dir/city_tour_guide.cpp.o"
  "CMakeFiles/city_tour_guide.dir/city_tour_guide.cpp.o.d"
  "city_tour_guide"
  "city_tour_guide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_tour_guide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
